#!/usr/bin/env bash
# Offline CI for the mehpt workspace: format, build, docs, test, and a
# smoke run of the mehpt-lab experiment runner. No network access required
# — the workspace has no crates-io dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo doc --no-deps (deny warnings)"
# --lib: the mehpt-lab *binary* and the mehpt-lab *library* would collide
# on target/doc/mehpt_lab; library docs are the ones that matter.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --lib --quiet

echo "==> cargo test -q"
cargo test -q

echo "==> mehpt-lab table1 --jobs 2 --quick (smoke)"
./target/release/mehpt-lab table1 --jobs 2 --quick --out target/lab-ci >/dev/null

echo "==> determinism: --jobs 1 and --jobs 4 must emit identical reports"
./target/release/mehpt-lab run --preset fig7 --seeds 3 --jobs 1 --quick \
    --max-accesses 20000 --out target/lab-ci-j1 >/dev/null 2>&1
./target/release/mehpt-lab run --preset fig7 --seeds 3 --jobs 4 --quick \
    --max-accesses 20000 --out target/lab-ci-j4 >/dev/null 2>&1
./target/release/mehpt-lab diff \
    target/lab-ci-j1/fig7/report.json target/lab-ci-j4/fig7/report.json
cmp target/lab-ci-j1/fig7/report.csv target/lab-ci-j4/fig7/report.csv

# A faulted sweep exits 1 (failed cells in the report) — that exact code,
# not 0 (fault silently skipped) and not ≥2 (crash), is the contract.
expect_failed_cells() {
    local status=0
    "$@" >/dev/null 2>&1 || status=$?
    if [ "$status" -ne 1 ]; then
        echo "expected exit 1 (failed cells) from: $*  (got $status)" >&2
        exit 1
    fi
}

echo "==> fault injection: panicking cells must not break determinism"
expect_failed_cells ./target/release/mehpt-lab fig7 --fault 'panic:@2' \
    --seeds 2 --jobs 4 --quick --max-accesses 20000 --out target/lab-ci-fault-a
expect_failed_cells ./target/release/mehpt-lab fig7 --fault 'panic:@2' \
    --seeds 2 --jobs 1 --quick --max-accesses 20000 --out target/lab-ci-fault-b
./target/release/mehpt-lab diff \
    target/lab-ci-fault-a/fig7/report.json target/lab-ci-fault-b/fig7/report.json

echo "==> watchdog: a hung cell times out, the sweep still completes"
expect_failed_cells ./target/release/mehpt-lab fig7 --fault 'hang:gups-mehpt' \
    --timeout 2 --frag 0.7 --seeds 2 --jobs 4 --quick --max-accesses 20000 \
    --out target/lab-ci-hang-a
expect_failed_cells ./target/release/mehpt-lab fig7 --fault 'hang:gups-mehpt' \
    --timeout 2 --frag 0.7 --seeds 2 --jobs 1 --quick --max-accesses 20000 \
    --out target/lab-ci-hang-b
./target/release/mehpt-lab diff \
    target/lab-ci-hang-a/fig7/report.json target/lab-ci-hang-b/fig7/report.json
grep -q '"timed_out": 1' target/lab-ci-hang-a/fig7/report.json

echo "==> deterministic retry: a transient fault heals, a persistent one exhausts"
# Plain rule: fires on attempt 0 only, so one retry turns the sweep clean.
./target/release/mehpt-lab fig7 --fault 'panic:gups-mehpt' --retries 1 \
    --frag 0.7 --seeds 2 --jobs 4 --quick --max-accesses 20000 \
    --out target/lab-ci-retry >/dev/null 2>&1
grep -q '"attempt": 1' target/lab-ci-retry/fig7/report.json
# Persistent rule (kind*): every attempt faults; the cell stays failed.
expect_failed_cells ./target/release/mehpt-lab fig7 --fault 'panic*:gups-mehpt' \
    --retries 1 --frag 0.7 --seeds 2 --jobs 4 --quick --max-accesses 20000 \
    --out target/lab-ci-retry-exhaust
grep -q '"failed": 1' target/lab-ci-retry-exhaust/fig7/report.json

echo "==> kill/resume: a SIGKILLed sweep resumes to a byte-identical report"
rm -rf target/lab-ci-kill target/lab-ci-kill-clean
KILL_FLAGS=(fig7 --fault 'hang:gups-mehpt' --timeout 2 --frag 0.7 --seeds 2 \
    --quick --max-accesses 20000)
expect_failed_cells ./target/release/mehpt-lab "${KILL_FLAGS[@]}" --jobs 1 \
    --out target/lab-ci-kill-clean
./target/release/mehpt-lab "${KILL_FLAGS[@]}" --jobs 4 \
    --out target/lab-ci-kill >/dev/null 2>&1 &
victim=$!
# Wait until the journal holds finished work (magic+header is ~100 bytes),
# then SIGKILL mid-run. The injected hang keeps the victim alive >= 2s.
for _ in $(seq 1 600); do
    size=$(stat -c %s target/lab-ci-kill/sweep.journal 2>/dev/null || echo 0)
    [ "$size" -gt 256 ] && break
    kill -0 "$victim" 2>/dev/null || break
    sleep 0.05
done
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
expect_failed_cells ./target/release/mehpt-lab "${KILL_FLAGS[@]}" --jobs 4 \
    --resume --out target/lab-ci-kill
cmp target/lab-ci-kill-clean/fig7/report.json target/lab-ci-kill/fig7/report.json
cmp target/lab-ci-kill-clean/fig7/report.csv target/lab-ci-kill/fig7/report.csv
./target/release/mehpt-lab diff \
    target/lab-ci-kill-clean/fig7/report.json target/lab-ci-kill/fig7/report.json

echo "==> corrupt journal: a flipped byte is detected, truncated and survived"
# Flip one byte past the header region of the (complete) journal, then
# resume: the reader must salvage the intact prefix, re-run the rest, and
# still land on the byte-identical report.
printf '\xff' | dd of=target/lab-ci-kill/sweep.journal bs=1 seek=300 \
    count=1 conv=notrunc status=none
expect_failed_cells ./target/release/mehpt-lab "${KILL_FLAGS[@]}" --jobs 4 \
    --resume --out target/lab-ci-kill
cmp target/lab-ci-kill-clean/fig7/report.json target/lab-ci-kill/fig7/report.json

echo "==> exit-code contract: diff on a truncated report exits 3"
head -c 200 target/lab-ci-kill-clean/fig7/report.json > target/lab-ci-kill/torn.json
status=0
./target/release/mehpt-lab diff target/lab-ci-kill/torn.json \
    target/lab-ci-kill-clean/fig7/report.json >/dev/null 2>&1 || status=$?
if [ "$status" -ne 3 ]; then
    echo "expected exit 3 (I/O or parse error) from diff on a torn report (got $status)" >&2
    exit 1
fi

echo "CI OK"
