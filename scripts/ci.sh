#!/usr/bin/env bash
# Offline CI for the mehpt workspace: format, build, docs, test, and a
# smoke run of the mehpt-lab experiment runner. No network access required
# — the workspace has no crates-io dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo doc --no-deps (deny warnings)"
# --lib: the mehpt-lab *binary* and the mehpt-lab *library* would collide
# on target/doc/mehpt_lab; library docs are the ones that matter.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --lib --quiet

echo "==> cargo test -q"
cargo test -q

echo "==> mehpt-lab table1 --jobs 2 --quick (smoke)"
./target/release/mehpt-lab table1 --jobs 2 --quick --out target/lab-ci >/dev/null

echo "==> determinism: --jobs 1 and --jobs 4 must emit identical reports"
./target/release/mehpt-lab run --preset fig7 --seeds 3 --jobs 1 --quick \
    --max-accesses 20000 --out target/lab-ci-j1 >/dev/null 2>&1
./target/release/mehpt-lab run --preset fig7 --seeds 3 --jobs 4 --quick \
    --max-accesses 20000 --out target/lab-ci-j4 >/dev/null 2>&1
./target/release/mehpt-lab diff \
    target/lab-ci-j1/fig7/report.json target/lab-ci-j4/fig7/report.json
cmp target/lab-ci-j1/fig7/report.csv target/lab-ci-j4/fig7/report.csv

# A faulted sweep exits 1 (failed cells in the report) — that exact code,
# not 0 (fault silently skipped) and not ≥2 (crash), is the contract.
expect_failed_cells() {
    local status=0
    "$@" >/dev/null 2>&1 || status=$?
    if [ "$status" -ne 1 ]; then
        echo "expected exit 1 (failed cells) from: $*  (got $status)" >&2
        exit 1
    fi
}

echo "==> fault injection: panicking cells must not break determinism"
expect_failed_cells ./target/release/mehpt-lab fig7 --fault 'panic:@2' \
    --seeds 2 --jobs 4 --quick --max-accesses 20000 --out target/lab-ci-fault-a
expect_failed_cells ./target/release/mehpt-lab fig7 --fault 'panic:@2' \
    --seeds 2 --jobs 1 --quick --max-accesses 20000 --out target/lab-ci-fault-b
./target/release/mehpt-lab diff \
    target/lab-ci-fault-a/fig7/report.json target/lab-ci-fault-b/fig7/report.json

echo "==> watchdog: a hung cell times out, the sweep still completes"
expect_failed_cells ./target/release/mehpt-lab fig7 --fault 'hang:gups-mehpt' \
    --timeout 2 --frag 0.7 --seeds 2 --jobs 4 --quick --max-accesses 20000 \
    --out target/lab-ci-hang-a
expect_failed_cells ./target/release/mehpt-lab fig7 --fault 'hang:gups-mehpt' \
    --timeout 2 --frag 0.7 --seeds 2 --jobs 1 --quick --max-accesses 20000 \
    --out target/lab-ci-hang-b
./target/release/mehpt-lab diff \
    target/lab-ci-hang-a/fig7/report.json target/lab-ci-hang-b/fig7/report.json
grep -q '"timed_out": 1' target/lab-ci-hang-a/fig7/report.json

echo "CI OK"
