//! # mehpt — Memory-Efficient Hashed Page Tables
//!
//! A from-scratch Rust reproduction of *Memory-Efficient Hashed Page
//! Tables* (Stojkovic, Mantri, Skarlatos, Xu, Torrellas — HPCA 2023),
//! including every substrate the paper depends on: the ECPT baseline
//! (Elastic Cuckoo Page Tables), an x86-64 radix page table with page-walk
//! caches, a physical-memory allocator with fragmentation modeling and
//! compaction, a TLB hierarchy, synthetic versions of the paper's eleven
//! workloads, and a trace-driven translation simulator that regenerates
//! every table and figure of the evaluation.
//!
//! This crate is a facade: it re-exports the workspace crates as modules.
//! Depend on the individual crates directly if you only need one layer.
//!
//! ## The paper in one paragraph
//!
//! Hashed page tables translate a virtual address with conceptually one
//! memory access, but state-of-the-art designs (ECPT) store each hash-table
//! way in *contiguous* physical memory — up to 64MB per way — which on a
//! fragmented machine is slow to allocate (120M cycles at 0.7 FMFI) or
//! impossible (the run dies above 0.7). ME-HPT fixes this with four
//! techniques: a small MMU-resident **L2P table** breaks ways into
//! discontiguous chunks; **dynamically-changing chunk sizes** keep small
//! processes cheap and large processes mappable; **in-place resizing**
//! makes the new table share the old one's memory (one extra hash-key bit;
//! ~half the entries never move); and **per-way resizing** grows one way at
//! a time. Contiguity needs drop ~92% (64MB → 1MB for the worst workloads)
//! and performance improves over both ECPT and radix tables.
//!
//! ## Quickstart
//!
//! ```
//! use mehpt::core::MeHpt;
//! use mehpt::mem::{AllocTag, PhysMem};
//! use mehpt::types::{PageSize, Ppn, Vpn, GIB, MIB};
//!
//! // A machine with 1GB of physical memory.
//! let mut mem = PhysMem::new(GIB);
//! let mut pt = MeHpt::new(&mut mem)?;
//!
//! // Map 100k pages: the table grows to megabytes...
//! for i in 0..100_000u64 {
//!     pt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut mem)?;
//! }
//! assert!(pt.memory_bytes() > 4 * MIB);
//! // ...but no single allocation ever exceeded one 1MB chunk.
//! assert_eq!(mem.stats().tag(AllocTag::PageTable).max_contiguous_bytes, MIB);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Architecture
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | addresses, page sizes, deterministic RNG |
//! | [`mem`] | buddy allocator, FMFI fragmentation, compaction, alloc costs |
//! | [`hash`] | generic elastic cuckoo tables (all four techniques), level hashing |
//! | [`tlb`] | set-associative caches, TLB hierarchy, DRAM latency model |
//! | [`radix`] | x86-64 4-level radix page table + page-walk caches |
//! | [`ecpt`] | the ECPT baseline: clustered entries, CWT/CWC, cuckoo walker |
//! | [`core`] | ME-HPT: L2P table, chunk ladder, in-place + per-way resizing |
//! | [`sim`] | the trace-driven translation simulator |
//! | [`workloads`] | the eleven calibrated synthetic workloads |
//! | [`lab`] | parallel, deterministic experiment runner (`mehpt-lab`) |
//!
//! See `DESIGN.md` for the full system inventory and the per-experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mehpt_core as core;
pub use mehpt_ecpt as ecpt;
pub use mehpt_hash as hash;
pub use mehpt_lab as lab;
pub use mehpt_mem as mem;
pub use mehpt_radix as radix;
pub use mehpt_sim as sim;
pub use mehpt_tlb as tlb;
pub use mehpt_types as types;
pub use mehpt_workloads as workloads;
