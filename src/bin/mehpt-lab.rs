//! `mehpt-lab` — parallel, deterministic experiment runner.
//!
//! All logic lives in [`mehpt_lab::cli`]; this shim parses `std::env::args`
//! and maps errors to the documented exit codes (2 = usage error).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mehpt_lab::cli::parse_command(&args) {
        Ok(parsed) => std::process::exit(mehpt_lab::cli::run_command(&parsed)),
        Err(msg) if msg.is_empty() => print!("{}", mehpt_lab::cli::USAGE),
        Err(msg) => {
            eprintln!("mehpt-lab: {msg}");
            eprintln!("try `mehpt-lab --help`");
            std::process::exit(2);
        }
    }
}
