//! `mehpt` — command-line driver for the translation simulator.
//!
//! ```text
//! mehpt apps                                      list the built-in workloads
//! mehpt simulate --app gups --pt mehpt [--thp]    run one simulation
//!                [--scale 0.1] [--frag 0.7] [--mem-gb 64]
//! mehpt compare  --app bfs [--thp] [--scale 0.1]  radix vs ECPT vs ME-HPT
//! mehpt record   --app bfs --scale 0.01 --out t.trace   export a trace file
//! mehpt replay   --trace t.trace --pt radix       replay a recorded trace
//! ```

use std::process::ExitCode;

use mehpt::sim::{PtKind, SimConfig, SimReport, Simulator};
use mehpt::types::{ByteSize, GIB};
use mehpt::workloads::{App, FileTrace, Workload, WorkloadCfg};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "apps" => cmd_apps(),
        "simulate" => cmd_simulate(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "record" => cmd_record(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
mehpt — trace-driven page-table simulator (HPCA'23 ME-HPT reproduction)

USAGE:
  mehpt apps
  mehpt simulate --app <name> --pt <radix|ecpt|mehpt> [--thp]
                 [--scale <f>] [--frag <f>] [--mem-gb <n>] [--nodes <n>]
  mehpt compare  --app <name> [--thp] [--scale <f>]
  mehpt record   --app <name> --out <file> [--scale <f>] [--nodes <n>]
  mehpt replay   --trace <file> --pt <radix|ecpt|mehpt> [--thp] [--frag <f>]";

/// Tiny flag parser: `--key value` pairs plus boolean flags.
struct Flags<'a>(&'a [String]);

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {key}: {v:?}")),
        }
    }
}

fn find_app(name: &str) -> Result<App, String> {
    App::all()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown app {name:?}; try `mehpt apps`"))
}

fn parse_kind(s: &str) -> Result<PtKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "radix" => Ok(PtKind::Radix),
        "ecpt" => Ok(PtKind::Ecpt),
        "mehpt" | "me-hpt" => Ok(PtKind::MeHpt),
        other => Err(format!("unknown page table {other:?} (radix|ecpt|mehpt)")),
    }
}

fn build_workload(flags: &Flags) -> Result<Workload, String> {
    let app = find_app(flags.get("--app").ok_or("--app is required")?)?;
    let cfg = WorkloadCfg {
        scale: flags.parse("--scale", 1.0)?,
        seed: flags.parse("--seed", 42u64)?,
        graph_nodes: flags.parse("--nodes", 1_000_000u64)?,
    };
    Ok(app.build(&cfg))
}

fn build_config(flags: &Flags, kind: PtKind) -> Result<SimConfig, String> {
    let mut cfg = SimConfig::paper(kind, flags.has("--thp"));
    cfg.fragmentation = flags.parse("--frag", 0.7)?;
    cfg.mem_bytes = flags.parse("--mem-gb", 64u64)? * GIB;
    Ok(cfg)
}

fn cmd_apps() -> Result<(), String> {
    println!("{:<10} {:>10} {}", "name", "data", "kind");
    for app in App::all() {
        let wl = app.build(&WorkloadCfg {
            scale: 0.001,
            ..WorkloadCfg::default()
        });
        println!(
            "{:<10} {:>10} {}",
            app.name(),
            ByteSize(wl.nominal_data_bytes()).to_string(),
            if app.is_graph() {
                "graph analytics (GraphBIG)"
            } else {
                "memory-intensive benchmark"
            }
        );
    }
    Ok(())
}

fn print_report(r: &SimReport) {
    println!("app:                {}", r.app);
    println!(
        "page table:         {} (THP {})",
        r.kind.label(),
        if r.thp { "on" } else { "off" }
    );
    println!("accesses:           {}", r.accesses);
    println!("total cycles:       {}", r.total_cycles);
    println!(
        "  base/translation/fault/alloc/pt-maintenance: {} / {} / {} / {} / {}",
        r.base_cycles, r.translation_cycles, r.fault_cycles, r.alloc_cycles, r.os_pt_cycles
    );
    println!(
        "page faults:        {} ({} x 4KB, {} x 2MB)",
        r.faults, r.pages_4k, r.pages_2m
    );
    println!(
        "walks:              {} (mean {:.1} cycles, {:.2} accesses)",
        r.walks, r.mean_walk_cycles, r.mean_walk_accesses
    );
    println!("TLB miss rate:      {:.4}", r.tlb_miss_rate);
    println!(
        "PT memory:          {} final, {} peak",
        ByteSize(r.pt_final_bytes),
        ByteSize(r.pt_peak_bytes)
    );
    println!("PT max contiguous:  {}", ByteSize(r.pt_max_contiguous));
    if r.kind == PtKind::MeHpt {
        println!("L2P entries used:   {}", r.l2p_entries_used);
        println!("chunk switches:     {}", r.chunk_switches);
    }
    if let Some(msg) = &r.aborted {
        println!("ABORTED:            {msg}");
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let kind = parse_kind(flags.get("--pt").ok_or("--pt is required")?)?;
    let wl = build_workload(&flags)?;
    let cfg = build_config(&flags, kind)?;
    let report = Simulator::run(wl, cfg);
    print_report(&report);
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    println!(
        "{:<8} {:>14} {:>12} {:>12} {:>12} {:>8}",
        "design", "cycles", "walk cyc", "PT peak", "contig", "speedup"
    );
    let mut base = None;
    for kind in [PtKind::Radix, PtKind::Ecpt, PtKind::MeHpt] {
        let wl = build_workload(&flags)?;
        let cfg = build_config(&flags, kind)?;
        let r = Simulator::run(wl, cfg);
        let cpa = r.total_cycles as f64 / r.accesses.max(1) as f64;
        let speedup = *base.get_or_insert(cpa) / cpa;
        println!(
            "{:<8} {:>14} {:>12.0} {:>12} {:>12} {:>7.2}x{}",
            kind.label(),
            r.total_cycles,
            r.mean_walk_cycles,
            ByteSize(r.pt_peak_bytes).to_string(),
            ByteSize(r.pt_max_contiguous).to_string(),
            speedup,
            r.aborted
                .as_deref()
                .map(|m| format!("  ABORTED: {m}"))
                .unwrap_or_default()
        );
    }
    Ok(())
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let out = flags.get("--out").ok_or("--out is required")?;
    let wl = build_workload(&flags)?;
    let regions = wl.regions().to_vec();
    let accesses: Vec<_> = wl.collect();
    let trace = FileTrace::from_parts(regions, accesses);
    let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
    trace
        .write_to(std::io::BufWriter::new(file))
        .map_err(|e| e.to_string())?;
    println!("wrote {} accesses to {out}", trace.accesses().len());
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let path = flags.get("--trace").ok_or("--trace is required")?;
    let kind = parse_kind(flags.get("--pt").ok_or("--pt is required")?)?;
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let trace = FileTrace::parse(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
    let wl = trace.into_workload(path);
    let cfg = build_config(&flags, kind)?;
    let report = Simulator::run(wl, cfg);
    print_report(&report);
    Ok(())
}
