//! Workspace-level integration tests: the three page-table organizations
//! must agree functionally on identical workloads, and the simulator's
//! accounting must be internally consistent.

use mehpt::core::MeHpt;
use mehpt::ecpt::Ecpt;
use mehpt::mem::{AllocCostModel, PhysMem};
use mehpt::radix::RadixPageTable;
use mehpt::sim::{PtKind, SimConfig, SimReport, Simulator};
use mehpt::types::rng::Xoshiro256;
use mehpt::types::{PageSize, Ppn, VirtAddr, Vpn, GIB};
use mehpt::workloads::{App, WorkloadCfg};

fn mem() -> PhysMem {
    PhysMem::with_cost_model(GIB, AllocCostModel::zero_cost())
}

/// All three organizations store and return exactly the same translations.
#[test]
fn all_page_tables_agree_functionally() {
    let mut m1 = mem();
    let mut m2 = mem();
    let mut m3 = mem();
    let mut radix = RadixPageTable::new(&mut m1).unwrap();
    let mut ecpt = Ecpt::new(&mut m2).unwrap();
    let mut mehpt = MeHpt::new(&mut m3).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(99);
    let mut mappings = Vec::new();
    for i in 0..30_000u64 {
        let vpn = Vpn(rng.next_below(1 << 24));
        let ppn = Ppn(i);
        // Skip duplicate VPNs (radix rejects remaps via `map`).
        if radix.translate(vpn.base_addr(PageSize::Base4K)).is_some() {
            continue;
        }
        radix.map(vpn, PageSize::Base4K, ppn, &mut m1).unwrap();
        ecpt.map(vpn, PageSize::Base4K, ppn, &mut m2).unwrap();
        mehpt.map(vpn, PageSize::Base4K, ppn, &mut m3).unwrap();
        mappings.push((vpn, ppn));
    }
    for &(vpn, ppn) in &mappings {
        let va = vpn.base_addr(PageSize::Base4K) + 123;
        let expected = Some((ppn, PageSize::Base4K));
        assert_eq!(radix.translate(va), expected, "radix at {vpn}");
        assert_eq!(ecpt.translate(va), expected, "ecpt at {vpn}");
        assert_eq!(mehpt.translate(va), expected, "mehpt at {vpn}");
    }
    // Unmapped addresses agree too.
    for _ in 0..1000 {
        let va = VirtAddr::new(rng.next_below(1 << 40) | (1 << 45));
        assert_eq!(radix.translate(va), None);
        assert_eq!(ecpt.translate(va), None);
        assert_eq!(mehpt.translate(va), None);
    }
}

fn small_run(kind: PtKind, thp: bool) -> SimReport {
    let wl = App::Mummer.build(&WorkloadCfg {
        scale: 0.01,
        ..WorkloadCfg::default()
    });
    let mut cfg = SimConfig::paper(kind, thp);
    cfg.mem_bytes = 2 * GIB;
    Simulator::run(wl, cfg)
}

/// Cycle components must sum to the total.
#[test]
fn sim_accounting_is_consistent() {
    for kind in [PtKind::Radix, PtKind::Ecpt, PtKind::MeHpt] {
        let r = small_run(kind, false);
        assert!(r.aborted.is_none());
        let parts =
            r.base_cycles + r.translation_cycles + r.fault_cycles + r.alloc_cycles + r.os_pt_cycles;
        assert_eq!(parts, r.total_cycles, "{kind:?}: components must sum");
        assert!(r.faults <= r.accesses);
        assert!(r.walks >= r.faults, "every fault implies a walk");
        assert!(r.pages_4k > 0);
    }
}

/// The same workload, same config, twice: bit-identical reports.
#[test]
fn sim_runs_are_reproducible() {
    let a = small_run(PtKind::MeHpt, true);
    let b = small_run(PtKind::MeHpt, true);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.pt_peak_bytes, b.pt_peak_bytes);
    assert_eq!(a.kicks_histogram, b.kicks_histogram);
}

/// THP maps the eligible region with huge pages and shrinks the 4KB table.
#[test]
fn thp_changes_page_size_mix_not_correctness() {
    let plain = small_run(PtKind::MeHpt, false);
    let thp = small_run(PtKind::MeHpt, true);
    assert_eq!(plain.pages_2m, 0);
    assert!(
        thp.pages_2m > 0,
        "MUMmer's reference region is THP-eligible"
    );
    assert!(thp.pages_4k < plain.pages_4k);
    // Fewer faults overall: one 2MB fault replaces 512 4KB faults.
    assert!(thp.faults < plain.faults);
}

/// Identical access counts across kinds on the same workload (no aborts).
#[test]
fn kinds_simulate_the_same_trace() {
    let radix = small_run(PtKind::Radix, false);
    let ecpt = small_run(PtKind::Ecpt, false);
    let mehpt = small_run(PtKind::MeHpt, false);
    assert_eq!(radix.accesses, ecpt.accesses);
    assert_eq!(ecpt.accesses, mehpt.accesses);
    // Same pages mapped by the end.
    assert_eq!(radix.pages_4k, ecpt.pages_4k);
    assert_eq!(ecpt.pages_4k, mehpt.pages_4k);
}

/// The facade re-exports compose: build everything through `mehpt::*`.
#[test]
fn facade_paths_work_end_to_end() {
    let mut m = mehpt::mem::PhysMem::new(64 << 20);
    let mut pt = mehpt::core::MeHpt::new(&mut m).unwrap();
    let va = mehpt::types::VirtAddr::new(0xabc_d000);
    pt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(5), &mut m)
        .unwrap();
    let mut walker = mehpt::ecpt::EcptWalker::paper_default();
    let mut dram = mehpt::tlb::MemoryModel::paper_default();
    let walk = walker.walk(&pt, va, &mut dram);
    assert_eq!(walk.translation, Some((Ppn(5), PageSize::Base4K)));
}
