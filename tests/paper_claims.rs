//! End-to-end checks of the paper's qualitative claims at test-friendly
//! scale. The benchmark harness reproduces the quantitative versions; these
//! tests pin the *orderings* that must hold at any scale where the
//! mechanisms engage.

use mehpt::sim::{PtKind, SimConfig, SimReport, Simulator};
use mehpt::types::GIB;
use mehpt::workloads::{App, WorkloadCfg};

fn run_scaled(app: App, kind: PtKind, thp: bool, scale: f64) -> SimReport {
    let wl = app.build(&WorkloadCfg {
        scale,
        ..WorkloadCfg::default()
    });
    let mut cfg = SimConfig::paper(kind, thp);
    cfg.mem_bytes = 8 * GIB;
    Simulator::run(wl, cfg)
}

/// Claim 1 (abstract): ME-HPT reduces the contiguous memory allocation
/// needs of HPTs — at every scale where ways outgrow one chunk.
#[test]
fn mehpt_contiguity_below_ecpt_on_every_demanding_app() {
    for app in [App::Gups, App::Bfs, App::Tc] {
        let ecpt = run_scaled(app, PtKind::Ecpt, false, 0.05);
        let mehpt = run_scaled(app, PtKind::MeHpt, false, 0.05);
        assert!(
            mehpt.pt_max_contiguous <= ecpt.pt_max_contiguous,
            "{}: {} vs {}",
            app.name(),
            mehpt.pt_max_contiguous,
            ecpt.pt_max_contiguous
        );
    }
}

/// Claim 2 (Section IV-C): in-place resizing keeps peak page-table memory
/// below the out-of-place baseline's old+new.
#[test]
fn mehpt_peak_memory_below_ecpt() {
    let ecpt = run_scaled(App::Bfs, PtKind::Ecpt, false, 0.05);
    let mehpt = run_scaled(App::Bfs, PtKind::MeHpt, false, 0.05);
    assert!(
        (mehpt.pt_peak_bytes as f64) < 0.9 * ecpt.pt_peak_bytes as f64,
        "mehpt {} vs ecpt {}",
        mehpt.pt_peak_bytes,
        ecpt.pt_peak_bytes
    );
}

/// Claim 3 (Figure 13): about half the entries stay in place per in-place
/// upsize; the ECPT baseline moves all of them.
#[test]
fn moved_fraction_half_vs_all() {
    let ecpt = run_scaled(App::Bfs, PtKind::Ecpt, false, 0.03);
    let mehpt = run_scaled(App::Bfs, PtKind::MeHpt, false, 0.03);
    assert_eq!(ecpt.moved_fraction_4k, 1.0);
    assert!(
        (0.35..0.75).contains(&mehpt.moved_fraction_4k),
        "moved fraction {}",
        mehpt.moved_fraction_4k
    );
}

/// Claim 4 (Figure 16): most inserts need no cuckoo re-insertion.
#[test]
fn kick_distribution_dominated_by_zero() {
    let r = run_scaled(App::Gups, PtKind::MeHpt, false, 0.03);
    let total: u64 = r.kicks_histogram.iter().sum();
    let zero = *r.kicks_histogram.first().unwrap_or(&0);
    assert!(
        zero as f64 / total as f64 > 0.55,
        "P(0) = {}",
        zero as f64 / total as f64
    );
    assert!(r.mean_kicks() < 1.2, "mean kicks {}", r.mean_kicks());
}

/// Claim 5 (Section II-B): HPT walks beat radix walks once the footprint
/// overflows the radix page-walk caches.
#[test]
fn hpt_translation_beats_radix_at_scale() {
    let radix = run_scaled(App::Gups, PtKind::Radix, false, 0.05);
    let mehpt = run_scaled(App::Gups, PtKind::MeHpt, false, 0.05);
    assert!(
        mehpt.mean_walk_cycles < radix.mean_walk_cycles,
        "mehpt {} vs radix {}",
        mehpt.mean_walk_cycles,
        radix.mean_walk_cycles
    );
    assert!(
        mehpt.translation_cycles < radix.translation_cycles,
        "translation cycles"
    );
}

/// Claim 6 (Table I): radix allocates page-table memory 4KB at a time.
#[test]
fn radix_contiguity_is_one_page() {
    let radix = run_scaled(App::Bfs, PtKind::Radix, false, 0.02);
    assert_eq!(radix.pt_max_contiguous, 4096);
}

/// Claim 7 (Figure 11/12 mechanics): per-way resizing keeps ME-HPT way
/// sizes within 2x of each other and spreads upsizes across ways.
#[test]
fn way_balance_and_upsize_spread() {
    let r = run_scaled(App::Bfs, PtKind::MeHpt, false, 0.05);
    let min = *r.way_sizes_4k.iter().min().unwrap();
    let max = *r.way_sizes_4k.iter().max().unwrap();
    assert!(max <= 2 * min, "ways {:?}", r.way_sizes_4k);
    let umin = *r.upsizes_per_way_4k.iter().min().unwrap();
    let umax = *r.upsizes_per_way_4k.iter().max().unwrap();
    assert!(umax - umin <= 2, "upsizes {:?}", r.upsizes_per_way_4k);
}

/// Claim 8 (Section VII-B): with THP, GUPS stops using its 4KB tables.
#[test]
fn gups_thp_never_grows_4k_tables() {
    let r = run_scaled(App::Gups, PtKind::MeHpt, true, 0.02);
    assert!(r.pages_2m > 0);
    assert_eq!(
        r.upsizes_per_way_4k.iter().sum::<u64>(),
        0,
        "4KB tables must not upsize under THP"
    );
}
