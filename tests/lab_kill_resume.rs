//! The headline crash-safety guarantee, end-to-end: a sweep SIGKILLed
//! mid-run and completed with `--resume` produces a `report.json` /
//! `report.csv` **byte-identical** to an uninterrupted run — across the
//! `--jobs` and `--seeds` axes.
//!
//! Each run injects a deterministic hang (`--fault hang:gups-mehpt`)
//! under a 1-second watchdog, which guarantees the process is still alive
//! while its healthy cells finish and journal — the window where the kill
//! lands. Even when scheduling noise lets the sweep finish before the
//! kill, the assertion holds: resume over a *complete* journal is the
//! byte-identical no-op case.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_mehpt-lab");

/// Flags shared by every run of one matrix configuration; only `--jobs`
/// and the output directory vary between the clean and resumed runs.
fn base_args(seeds: u32, out: &Path) -> Vec<String> {
    [
        "fig7",
        "--quick",
        "--frag",
        "0.5",
        "--max-accesses",
        "2000",
        "--fault",
        "hang:gups-mehpt",
        "--timeout",
        "1",
        "--seeds",
        &seeds.to_string(),
        "--out",
        &out.display().to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mehpt-kill-resume-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_reports(out: &Path) -> (Vec<u8>, Vec<u8>) {
    let json = std::fs::read(out.join("fig7/report.json")).expect("report.json exists");
    let csv = std::fs::read(out.join("fig7/report.csv")).expect("report.csv exists");
    (json, csv)
}

/// Runs the sweep to completion and asserts the expected exit code (1:
/// the hang-faulted cell times out). Returns captured stderr.
fn run_to_completion(args: Vec<String>) -> String {
    let output = Command::new(BIN)
        .args(&args)
        .stdout(Stdio::null())
        .output()
        .expect("spawn mehpt-lab");
    assert_eq!(
        output.status.code(),
        Some(1),
        "a hang-faulted sweep exits 1 (timed-out cell); stderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// Starts the sweep, waits until the journal holds at least one result
/// record past the header, then SIGKILLs the process mid-run.
fn run_and_kill(args: Vec<String>, journal: &Path) {
    let mut child = Command::new(BIN)
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mehpt-lab");
    // Magic (8) + header frame (~90) is written immediately; a grown file
    // means at least one replicate result landed. The injected hang holds
    // the process open for >= 1s, so the poll has a generous window.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(meta) = std::fs::metadata(journal) {
            if meta.len() > 256 {
                break;
            }
        }
        if child.try_wait().expect("poll child").is_some() {
            // Lost the race: the sweep finished first. Resume over the
            // complete journal still exercises the byte-identity claim.
            return;
        }
        assert!(Instant::now() < deadline, "journal never grew; hung test?");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL mid-run");
    let _ = child.wait();
}

fn kill_resume_case(jobs: u32, seeds: u32) {
    let name = format!("j{jobs}s{seeds}");
    let clean_out = tmp_dir(&format!("{name}-clean"));
    let killed_out = tmp_dir(&format!("{name}-killed"));

    // The reference: an uninterrupted single-threaded run.
    let mut clean_args = base_args(seeds, &clean_out);
    clean_args.extend(["--jobs".into(), "1".into()]);
    run_to_completion(clean_args);

    // The victim: same sweep at the requested parallelism, killed once
    // the journal holds finished work, then completed with --resume.
    let mut killed_args = base_args(seeds, &killed_out);
    killed_args.extend(["--jobs".into(), jobs.to_string()]);
    run_and_kill(killed_args.clone(), &killed_out.join("sweep.journal"));
    let mut resume_args = killed_args;
    resume_args.push("--resume".into());
    let stderr = run_to_completion(resume_args);
    assert!(
        stderr.contains("restored") && stderr.contains("from journal"),
        "--resume must report what it replayed; stderr:\n{stderr}"
    );

    let (clean_json, clean_csv) = read_reports(&clean_out);
    let (resumed_json, resumed_csv) = read_reports(&killed_out);
    assert_eq!(
        clean_json, resumed_json,
        "jobs={jobs} seeds={seeds}: resumed report.json must be \
         byte-identical to the uninterrupted run"
    );
    assert_eq!(
        clean_csv, resumed_csv,
        "jobs={jobs} seeds={seeds}: resumed report.csv must be \
         byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&clean_out);
    let _ = std::fs::remove_dir_all(&killed_out);
}

#[test]
fn killed_then_resumed_sweep_is_byte_identical_jobs_1() {
    kill_resume_case(1, 1);
}

#[test]
fn killed_then_resumed_sweep_is_byte_identical_jobs_4() {
    kill_resume_case(4, 1);
}

#[test]
fn killed_then_resumed_sweep_is_byte_identical_jobs_1_seeds_3() {
    kill_resume_case(1, 3);
}

#[test]
fn killed_then_resumed_sweep_is_byte_identical_jobs_4_seeds_3() {
    kill_resume_case(4, 3);
}

#[test]
fn incremental_seed_growth_reuses_journaled_replicates() {
    // The incremental re-run satellite: a completed --seeds 1 sweep,
    // resumed at --seeds 3, restores the old replicates (fingerprints
    // stay valid without a fault plan: seeds is deliberately outside the
    // hash) and runs only the new ones — byte-identical to a clean
    // --seeds 3 run. No fault plan here, so no timeout and exit 0.
    let strip = |args: Vec<String>| -> Vec<String> {
        // Drop "--fault hang:gups-mehpt --timeout 1" from the shared args.
        let mut out = Vec::new();
        let mut skip = false;
        for a in args {
            if skip {
                skip = false;
                continue;
            }
            if a == "--fault" || a == "--timeout" {
                skip = true;
                continue;
            }
            out.push(a);
        }
        out
    };
    let run_ok = |args: &[String]| {
        let output = Command::new(BIN)
            .args(args)
            .stdout(Stdio::null())
            .output()
            .expect("spawn mehpt-lab");
        assert_eq!(
            output.status.code(),
            Some(0),
            "stderr:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stderr).into_owned()
    };

    let grown_out = tmp_dir("grow-seeds");
    let clean_out = tmp_dir("grow-clean");
    run_ok(&strip(base_args(1, &grown_out)));
    let stderr = {
        let mut args = strip(base_args(3, &grown_out));
        args.push("--resume".into());
        run_ok(&args)
    };
    assert!(
        stderr.contains("restored") && !stderr.contains("restored 0 replicate"),
        "growing --seeds must reuse the journaled replicates; stderr:\n{stderr}"
    );
    run_ok(&strip(base_args(3, &clean_out)));
    assert_eq!(
        read_reports(&grown_out).0,
        read_reports(&clean_out).0,
        "a seeds-grown resume must serialize exactly like a clean --seeds 3 run"
    );
    let _ = std::fs::remove_dir_all(&grown_out);
    let _ = std::fs::remove_dir_all(&clean_out);
}
