/// Whether a resize grew or shrank a way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResizeKind {
    /// The way doubled.
    Upsize,
    /// The way halved.
    Downsize,
}

/// A completed resize of one way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResizeEvent {
    /// Which way resized.
    pub way: usize,
    /// Upsize or downsize.
    pub kind: ResizeKind,
    /// Way capacity (entries) before.
    pub from_entries: usize,
    /// Way capacity (entries) after.
    pub to_entries: usize,
    /// Entries that physically changed location during migration.
    pub moved: u64,
    /// Entries that stayed in place (only possible with in-place resizing).
    pub kept: u64,
}

impl ResizeEvent {
    /// The fraction of migrated entries that physically moved.
    ///
    /// The paper's Figure 13: with in-place resizing this is ≈ 0.5 for an
    /// upsize; with out-of-place resizing it is 1.0.
    pub fn moved_fraction(&self) -> f64 {
        let total = self.moved + self.kept;
        if total == 0 {
            return 0.0;
        }
        self.moved as f64 / total as f64
    }
}

/// Statistics collected by an
/// [`ElasticCuckooTable`](crate::ElasticCuckooTable).
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    /// Histogram of cuckoo re-insertions: `kicks_histogram[n]` counts the
    /// inserts/rehashes that needed exactly `n` re-insertions (Figure 16).
    pub kicks_histogram: Vec<u64>,
    /// Completed resizes, in order.
    pub resizes: Vec<ResizeEvent>,
    /// Bytes currently occupied by the table arrays.
    pub current_bytes: u64,
    /// High-water mark of `current_bytes` (out-of-place resizing pushes
    /// this to `old + new`; in-place resizing keeps it at `max(old, new)`).
    pub peak_bytes: u64,
    /// Largest single contiguous array ever allocated (one way).
    pub max_contiguous_bytes: u64,
    /// Total inserts served.
    pub inserts: u64,
    /// Total removes served.
    pub removes: u64,
}

impl TableStats {
    pub(crate) fn record_kicks(&mut self, kicks: usize) {
        if self.kicks_histogram.len() <= kicks {
            self.kicks_histogram.resize(kicks + 1, 0);
        }
        self.kicks_histogram[kicks] += 1;
    }

    pub(crate) fn set_bytes(&mut self, current: u64) {
        self.current_bytes = current;
        self.peak_bytes = self.peak_bytes.max(current);
    }

    /// Number of upsizes completed by each way.
    pub fn upsizes_per_way(&self, ways: usize) -> Vec<u64> {
        let mut counts = vec![0u64; ways];
        for e in &self.resizes {
            if e.kind == ResizeKind::Upsize {
                counts[e.way] += 1;
            }
        }
        counts
    }

    /// Number of downsizes completed by each way.
    pub fn downsizes_per_way(&self, ways: usize) -> Vec<u64> {
        let mut counts = vec![0u64; ways];
        for e in &self.resizes {
            if e.kind == ResizeKind::Downsize {
                counts[e.way] += 1;
            }
        }
        counts
    }

    /// Mean number of cuckoo re-insertions per insert or rehash (Figure 16
    /// reports ≈ 0.7 on average, with P(0) ≈ 0.64).
    pub fn mean_kicks(&self) -> f64 {
        let total: u64 = self.kicks_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .kicks_histogram
            .iter()
            .enumerate()
            .map(|(n, &c)| n as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Mean fraction of entries physically moved per upsize (Figure 13).
    pub fn mean_upsize_moved_fraction(&self) -> f64 {
        let ups: Vec<&ResizeEvent> = self
            .resizes
            .iter()
            .filter(|e| e.kind == ResizeKind::Upsize && e.moved + e.kept > 0)
            .collect();
        if ups.is_empty() {
            return 0.0;
        }
        ups.iter().map(|e| e.moved_fraction()).sum::<f64>() / ups.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kicks_histogram_grows_on_demand() {
        let mut s = TableStats::default();
        s.record_kicks(0);
        s.record_kicks(3);
        s.record_kicks(0);
        assert_eq!(s.kicks_histogram, vec![2, 0, 0, 1]);
        assert!((s.mean_kicks() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn peak_bytes_is_monotone() {
        let mut s = TableStats::default();
        s.set_bytes(100);
        s.set_bytes(50);
        assert_eq!(s.current_bytes, 50);
        assert_eq!(s.peak_bytes, 100);
    }

    #[test]
    fn per_way_resize_counts() {
        let mut s = TableStats::default();
        for way in [0, 0, 1] {
            s.resizes.push(ResizeEvent {
                way,
                kind: ResizeKind::Upsize,
                from_entries: 128,
                to_entries: 256,
                moved: 60,
                kept: 68,
            });
        }
        s.resizes.push(ResizeEvent {
            way: 2,
            kind: ResizeKind::Downsize,
            from_entries: 256,
            to_entries: 128,
            moved: 10,
            kept: 0,
        });
        assert_eq!(s.upsizes_per_way(3), vec![2, 1, 0]);
        assert_eq!(s.downsizes_per_way(3), vec![0, 0, 1]);
        assert!((s.mean_upsize_moved_fraction() - 60.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn moved_fraction_of_empty_resize_is_zero() {
        let e = ResizeEvent {
            way: 0,
            kind: ResizeKind::Upsize,
            from_entries: 128,
            to_entries: 256,
            moved: 0,
            kept: 0,
        };
        assert_eq!(e.moved_fraction(), 0.0);
    }
}
