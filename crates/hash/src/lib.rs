//! Elastic cuckoo hashing — the generic algorithmic core of ME-HPT.
//!
//! Section VIII of the paper points out that the four ME-HPT techniques
//! "are generically applicable to many of today's hash table designs and use
//! cases, beyond HPTs": set-associative directories, memory indices and
//! key-value stores. This crate is that generic library:
//!
//! * [`ElasticCuckooTable`] — a W-way cuckoo hash table that resizes
//!   gradually while serving operations (Elastic Cuckoo Hashing, the ECPT
//!   substrate), with configurable
//!   [`ResizeMode`] (**out-of-place** as in the ECPT baseline, or the
//!   paper's **in-place** resizing that reuses the old table's memory) and
//!   [`WaySizing`] (**all-way** doubling, or the paper's **per-way**
//!   resizing with weighted-random insertion).
//! * [`HashFamily`] — the per-way CRC-based hash functions (Table III: CRC,
//!   2-cycle latency), decorrelated with a nonlinear finalizer.
//! * [`LevelHashTable`] — a faithful-enough Level Hashing implementation
//!   (Zuo et al., OSDI'18), the only other hashing scheme with a form of
//!   in-place resizing, used by the Section IX comparison benchmark.
//!
//! The page-table crates (`mehpt-ecpt`, `mehpt-core`) implement the same
//! algorithms specialized for translation entries, physical-memory chunks
//! and hardware walkers; this crate is the application-agnostic form with
//! exhaustive unit and property tests of the algorithmic invariants.
//!
//! # Examples
//!
//! ```
//! use mehpt_hash::{Config, ElasticCuckooTable, ResizeMode, WaySizing};
//!
//! let config = Config {
//!     resize_mode: ResizeMode::InPlace,
//!     sizing: WaySizing::PerWay,
//!     ..Config::default()
//! };
//! let mut table = ElasticCuckooTable::new(config);
//! for i in 0..10_000u64 {
//!     table.insert(i, i * 2);
//! }
//! assert_eq!(table.get(&4321), Some(&8642));
//! assert_eq!(table.len(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunked;
mod config;
mod crc;
mod level;
mod stats;
mod table;

pub use chunked::ChunkedVec;
pub use config::{Config, ConfigError, ResizeMode, WaySizing};
pub use crc::{crc64, Crc64Hasher, HashFamily};
pub use level::{LevelHashTable, LevelStats};
pub use stats::{ResizeEvent, ResizeKind, TableStats};
pub use table::ElasticCuckooTable;
