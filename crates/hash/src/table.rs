use std::hash::Hash;
use std::mem;

use mehpt_types::rng::Xoshiro256;

use crate::stats::{ResizeEvent, ResizeKind, TableStats};
use crate::{Config, HashFamily, ResizeMode, WaySizing};

type Slot<K, V> = Option<(K, V)>;

/// Where a hash key resolves within a way, given its resize state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    /// Index into the way's current (live/new) array.
    Cur(usize),
    /// Index into the way's old array (out-of-place resize only).
    Old(usize),
}

/// The in-flight resize of one way.
#[derive(Clone, Debug)]
struct Resize {
    old_len: usize,
    rehash_ptr: usize,
    kind: ResizeKind,
    mode: ResizeMode,
    moved: u64,
    kept: u64,
}

#[derive(Clone, Debug)]
struct Way<K, V> {
    /// The current array. For an out-of-place resize this is the *new*
    /// table; for an in-place upsize it is the grown array; for an in-place
    /// downsize it is still the old-sized array until migration completes.
    slots: Vec<Slot<K, V>>,
    /// The old table during an out-of-place resize; empty otherwise.
    old_slots: Vec<Slot<K, V>>,
    /// The logical capacity in entries (what occupancy is measured against).
    logical_len: usize,
    resize: Option<Resize>,
    occupied: usize,
}

impl<K, V> Way<K, V> {
    fn new(len: usize) -> Way<K, V> {
        Way {
            slots: (0..len).map(|_| None).collect(),
            old_slots: Vec::new(),
            logical_len: len,
            resize: None,
            occupied: 0,
        }
    }

    /// Resolves hash key `h` to a slot location, honoring the paper's
    /// rehash-pointer rule: keys whose old-table index is at or above the
    /// rehash pointer are still in the live region of the old table;
    /// below it, the key lives in the new table (indexed with one more or
    /// one fewer bit of the same hash value).
    fn locate(&self, h: u64) -> Loc {
        match &self.resize {
            None => Loc::Cur(h as usize & (self.logical_len - 1)),
            Some(r) => {
                let old_idx = h as usize & (r.old_len - 1);
                if old_idx >= r.rehash_ptr {
                    match r.mode {
                        ResizeMode::OutOfPlace => Loc::Old(old_idx),
                        ResizeMode::InPlace => Loc::Cur(old_idx),
                    }
                } else {
                    Loc::Cur(h as usize & (self.logical_len - 1))
                }
            }
        }
    }

    fn slot(&self, loc: Loc) -> &Slot<K, V> {
        match loc {
            Loc::Cur(i) => &self.slots[i],
            Loc::Old(i) => &self.old_slots[i],
        }
    }

    fn slot_mut(&mut self, loc: Loc) -> &mut Slot<K, V> {
        match loc {
            Loc::Cur(i) => &mut self.slots[i],
            Loc::Old(i) => &mut self.old_slots[i],
        }
    }

    fn physical_bytes(&self, slot_bytes: usize) -> u64 {
        ((self.slots.len() + self.old_slots.len()) * slot_bytes) as u64
    }

    fn is_resizing(&self) -> bool {
        self.resize.is_some()
    }
}

/// A W-way elastic cuckoo hash table.
///
/// This is Elastic Cuckoo Hashing (the substrate of ECPT, Section II-B)
/// extended with the paper's two memory-reduction techniques in their
/// generic form:
///
/// * **in-place resizing** ([`ResizeMode::InPlace`], Section IV-C) — the new
///   table shares the old table's memory; upsizing indexes with one extra
///   hash-key bit, so ≈50% of migrated entries do not move at all;
/// * **per-way resizing** ([`WaySizing::PerWay`], Section IV-D) — one way
///   resizes at a time, with weighted-random insertion proportional to
///   per-way free slots and a balance gate that keeps every way within 2× of
///   every other.
///
/// Resizing is *gradual*: each insert (or remove) migrates a bounded number
/// of entries, so no operation ever stops the world. Lookups always probe
/// exactly W locations.
///
/// # Examples
///
/// ```
/// use mehpt_hash::{Config, ElasticCuckooTable};
///
/// let mut table: ElasticCuckooTable<u64, &str> =
///     ElasticCuckooTable::new(Config::mehpt());
/// table.insert(1, "one");
/// assert_eq!(table.remove(&1), Some("one"));
/// assert!(table.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct ElasticCuckooTable<K, V> {
    ways: Vec<Way<K, V>>,
    family: HashFamily,
    cfg: Config,
    rng: Xoshiro256,
    len: usize,
    stats: TableStats,
}

impl<K: Hash + Eq, V> ElasticCuckooTable<K, V> {
    /// Creates an empty table from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`Config::validate`] to
    /// check fallibly first.
    pub fn new(cfg: Config) -> ElasticCuckooTable<K, V> {
        if let Err(e) = cfg.validate() {
            panic!("invalid ElasticCuckooTable config: {e}");
        }
        let ways = (0..cfg.ways)
            .map(|_| Way::new(cfg.initial_entries_per_way))
            .collect();
        let family = HashFamily::new(cfg.ways, cfg.seed);
        let rng = Xoshiro256::seed_from_u64(cfg.seed ^ 0xc0ff_ee00);
        let mut table = ElasticCuckooTable {
            ways,
            family,
            cfg,
            rng,
            len: 0,
            stats: TableStats::default(),
        };
        table.refresh_bytes();
        let initial: u64 = (table.slot_bytes() * table.cfg.initial_entries_per_way) as u64;
        table.stats.max_contiguous_bytes = initial;
        table
    }

    fn slot_bytes(&self) -> usize {
        mem::size_of::<Slot<K, V>>()
    }

    /// The number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total logical capacity in entries across ways.
    pub fn capacity(&self) -> usize {
        self.ways.iter().map(|w| w.logical_len).sum()
    }

    /// The logical capacity of each way, in entries.
    pub fn way_capacities(&self) -> Vec<usize> {
        self.ways.iter().map(|w| w.logical_len).collect()
    }

    /// The number of live entries in each way.
    pub fn way_occupancies(&self) -> Vec<usize> {
        self.ways.iter().map(|w| w.occupied).collect()
    }

    /// Current occupancy as a fraction of capacity.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Whether any way has a resize in flight.
    pub fn is_resizing(&self) -> bool {
        self.ways.iter().any(Way::is_resizing)
    }

    /// Collected statistics (resize events, kick histogram, memory marks).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Bytes currently occupied by the table arrays.
    pub fn memory_bytes(&self) -> u64 {
        let sb = self.slot_bytes();
        self.ways.iter().map(|w| w.physical_bytes(sb)).sum()
    }

    /// Looks up `key`, probing each way once.
    pub fn get(&self, key: &K) -> Option<&V> {
        for way in 0..self.ways.len() {
            let h = self.family.hash(way, key);
            let loc = self.ways[way].locate(h);
            if let Some((k, v)) = self.ways[way].slot(loc).as_ref() {
                if k == key {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Looks up `key` and returns a mutable reference to its value.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        for way in 0..self.ways.len() {
            let h = self.family.hash(way, key);
            let loc = self.ways[way].locate(h);
            if let Some((k, _)) = self.ways[way].slot(loc).as_ref() {
                if k == key {
                    let (_, v) = self.ways[way].slot_mut(loc).as_mut().unwrap();
                    return Some(v);
                }
            }
        }
        None
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`; returns the previous value if the key was
    /// already present.
    ///
    /// An insert may trigger a gradual resize (per the 0.6/0.2 occupancy
    /// thresholds) and performs a bounded amount of migration work on
    /// behalf of any in-flight resize, exactly like the OS piggybacking
    /// rehashes on page-table inserts in the paper.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.stats.inserts += 1;
        if let Some(v) = self.get_mut(&key) {
            return Some(mem::replace(v, value));
        }
        self.maybe_trigger_resizes(1);
        self.migration_step();
        let start_way = self.choose_insert_way();
        let kicks = self.place(start_way, key, value);
        self.len += 1;
        self.stats.record_kicks(kicks);
        None
    }

    /// Removes `key`, returning its value.
    ///
    /// Removes also advance in-flight migrations and may trigger a
    /// downsize.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.stats.removes += 1;
        let mut found = None;
        for way in 0..self.ways.len() {
            let h = self.family.hash(way, key);
            let loc = self.ways[way].locate(h);
            if let Some((k, _)) = self.ways[way].slot(loc).as_ref() {
                if k == key {
                    let (_, v) = self.ways[way].slot_mut(loc).take().unwrap();
                    self.ways[way].occupied -= 1;
                    self.len -= 1;
                    found = Some(v);
                    break;
                }
            }
        }
        if found.is_some() {
            self.maybe_trigger_resizes(0);
            self.migration_step();
        }
        found
    }

    /// Iterates over all live entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.ways.iter().flat_map(|w| {
            w.slots
                .iter()
                .chain(w.old_slots.iter())
                .filter_map(|s| s.as_ref().map(|(k, v)| (k, v)))
        })
    }

    // ---- insertion and cuckoo displacement ----

    /// Chooses the way a fresh insert starts in.
    fn choose_insert_way(&mut self) -> usize {
        match self.cfg.sizing {
            WaySizing::AllWay => self.rng.next_index(self.ways.len()),
            WaySizing::PerWay => {
                // Weighted random insertion (Section IV-D): weight i is the
                // way's free-slot count, forced to zero when the way is
                // already larger than another way and at its upsize
                // threshold.
                let min_len = self.ways.iter().map(|w| w.logical_len).min().unwrap();
                let weights: Vec<u64> = self
                    .ways
                    .iter()
                    .map(|w| {
                        let free = w.logical_len.saturating_sub(w.occupied) as u64;
                        let at_threshold =
                            w.occupied as f64 >= self.cfg.upsize_threshold * w.logical_len as f64;
                        if w.logical_len > min_len && at_threshold {
                            0
                        } else {
                            free
                        }
                    })
                    .collect();
                let total: u64 = weights.iter().sum();
                if total == 0 {
                    return self.rng.next_index(self.ways.len());
                }
                let mut r = self.rng.next_below(total);
                for (i, w) in weights.iter().enumerate() {
                    if r < *w {
                        return i;
                    }
                    r -= w;
                }
                unreachable!("weighted choice must land in a bucket")
            }
        }
    }

    /// Places an entry starting at `way`, cuckoo-kicking as needed.
    /// Returns the number of re-insertions (kicks) performed.
    fn place(&mut self, way: usize, key: K, value: V) -> usize {
        let mut way = way;
        let mut entry = (key, value);
        let mut kicks = 0;
        let mut forced_upsizes = 0;
        loop {
            let h = self.family.hash(way, &entry.0);
            let loc = self.ways[way].locate(h);
            let slot = self.ways[way].slot_mut(loc);
            match slot {
                None => {
                    *slot = Some(entry);
                    self.ways[way].occupied += 1;
                    return kicks;
                }
                Some(_) => {
                    // Evict the occupant and retry it in a different way.
                    let victim = mem::replace(slot, Some(entry)).unwrap();
                    entry = victim;
                    kicks += 1;
                    if kicks % self.cfg.max_kicks == 0 {
                        forced_upsizes += 1;
                        assert!(
                            forced_upsizes < 16,
                            "cuckoo insertion cannot converge; table pathologically full"
                        );
                        self.force_upsize();
                    }
                    way = self.other_way(way);
                }
            }
        }
    }

    /// A uniformly random way different from `not`.
    fn other_way(&mut self, not: usize) -> usize {
        let pick = self.rng.next_index(self.ways.len() - 1);
        if pick >= not {
            pick + 1
        } else {
            pick
        }
    }

    // ---- resize triggering ----

    fn maybe_trigger_resizes(&mut self, about_to_insert: usize) {
        match self.cfg.sizing {
            WaySizing::AllWay => {
                if self.ways.iter().any(Way::is_resizing) {
                    return;
                }
                let cap = self.capacity();
                let len = self.len + about_to_insert;
                if len as f64 > self.cfg.upsize_threshold * cap as f64 {
                    for w in 0..self.ways.len() {
                        self.start_resize(w, ResizeKind::Upsize);
                    }
                } else if (len as f64) < self.cfg.downsize_threshold * cap as f64
                    && self.ways[0].logical_len > self.cfg.initial_entries_per_way
                {
                    for w in 0..self.ways.len() {
                        self.start_resize(w, ResizeKind::Downsize);
                    }
                }
            }
            WaySizing::PerWay => {
                // One way at a time.
                if self.ways.iter().any(Way::is_resizing) {
                    return;
                }
                let lens: Vec<usize> = self.ways.iter().map(|w| w.logical_len).collect();
                let min_len = *lens.iter().min().unwrap();
                let max_len = *lens.iter().max().unwrap();
                for w in 0..self.ways.len() {
                    let way = &self.ways[w];
                    let up =
                        way.occupied as f64 >= self.cfg.upsize_threshold * way.logical_len as f64;
                    // The candidate way must not already be larger than
                    // another way (upsize) or smaller than another
                    // (downsize) — Section IV-D's balance gate.
                    if up && way.logical_len <= min_len {
                        self.start_resize(w, ResizeKind::Upsize);
                        return;
                    }
                    let down = (way.occupied as f64)
                        < self.cfg.downsize_threshold * way.logical_len as f64;
                    if down
                        && way.logical_len >= max_len
                        && way.logical_len > self.cfg.initial_entries_per_way
                    {
                        self.start_resize(w, ResizeKind::Downsize);
                        return;
                    }
                }
            }
        }
    }

    /// Starts an upsize immediately (kick-overflow pressure valve).
    fn force_upsize(&mut self) {
        match self.cfg.sizing {
            WaySizing::AllWay => {
                for w in 0..self.ways.len() {
                    self.finish_resize_now(w);
                }
                for w in 0..self.ways.len() {
                    self.start_resize(w, ResizeKind::Upsize);
                }
            }
            WaySizing::PerWay => {
                // Grow the fullest among the smallest ways.
                let min_len = self.ways.iter().map(|w| w.logical_len).min().unwrap();
                let w = (0..self.ways.len())
                    .filter(|&w| self.ways[w].logical_len == min_len)
                    .max_by_key(|&w| self.ways[w].occupied)
                    .unwrap();
                self.finish_resize_now(w);
                self.start_resize(w, ResizeKind::Upsize);
            }
        }
    }

    fn start_resize(&mut self, w: usize, kind: ResizeKind) {
        debug_assert!(!self.ways[w].is_resizing());
        let old_len = self.ways[w].logical_len;
        let new_len = match kind {
            ResizeKind::Upsize => old_len * 2,
            ResizeKind::Downsize => old_len / 2,
        };
        let mode = self.cfg.resize_mode;
        {
            let way = &mut self.ways[w];
            match (mode, kind) {
                (ResizeMode::InPlace, ResizeKind::Upsize) => {
                    // The old table becomes the lower half of the new one.
                    way.slots.resize_with(new_len, || None);
                }
                (ResizeMode::InPlace, ResizeKind::Downsize) => {
                    // The array shrinks only after migration completes.
                }
                (ResizeMode::OutOfPlace, _) => {
                    let new: Vec<Slot<K, V>> = (0..new_len).map(|_| None).collect();
                    way.old_slots = mem::replace(&mut way.slots, new);
                }
            }
            way.logical_len = new_len;
            way.resize = Some(Resize {
                old_len,
                rehash_ptr: 0,
                kind,
                mode,
                moved: 0,
                kept: 0,
            });
        }
        // A new contiguous array was (conceptually) allocated for
        // out-of-place resizes and — in this flat-array model — for in-place
        // upsizes too; the chunked page-table implementation in
        // `mehpt-core` is what removes the contiguity requirement.
        let contiguous = (new_len * self.slot_bytes()) as u64;
        if matches!(mode, ResizeMode::OutOfPlace) {
            self.stats.max_contiguous_bytes = self.stats.max_contiguous_bytes.max(contiguous);
        }
        self.refresh_bytes();
    }

    // ---- migration ----

    /// Advances every in-flight resize by the configured migration quota.
    fn migration_step(&mut self) {
        for w in 0..self.ways.len() {
            for _ in 0..self.cfg.migrate_per_insert {
                if !self.ways[w].is_resizing() {
                    break;
                }
                self.migrate_one(w);
            }
        }
    }

    /// Synchronously completes an in-flight resize of way `w`.
    fn finish_resize_now(&mut self, w: usize) {
        while self.ways[w].is_resizing() {
            self.migrate_one(w);
        }
    }

    /// Migrates the entry under way `w`'s rehash pointer, finishing the
    /// resize when the pointer reaches the end of the old table.
    fn migrate_one(&mut self, w: usize) {
        let Some(r) = self.ways[w].resize.as_mut() else {
            return;
        };
        if r.rehash_ptr >= r.old_len {
            self.complete_resize(w);
            return;
        }
        let idx = r.rehash_ptr;
        r.rehash_ptr += 1;
        let mode = r.mode;
        let taken = match mode {
            ResizeMode::OutOfPlace => self.ways[w].old_slots[idx].take(),
            ResizeMode::InPlace => self.ways[w].slots[idx].take(),
        };
        let Some((k, v)) = taken else {
            return;
        };
        // Re-home the entry in the new table of the same way (paper: "takes
        // the element pointed to by Pi, inserts it into way i of the new
        // HPT").
        let h = self.family.hash(w, &k);
        let new_idx = h as usize & (self.ways[w].logical_len - 1);
        let stays = matches!(mode, ResizeMode::InPlace) && new_idx == idx;
        {
            let r = self.ways[w].resize.as_mut().unwrap();
            if stays {
                r.kept += 1;
            } else {
                r.moved += 1;
            }
        }
        let dst = &mut self.ways[w].slots[new_idx];
        match dst {
            None => {
                *dst = Some((k, v));
                // occupancy of the way is unchanged: same way, new region.
                self.stats.record_kicks(0);
            }
            Some(_) => {
                // Slot taken (an entry inserted during resizing, or — in a
                // downsize — a not-yet-migrated live entry). Our entry
                // claims the slot; the occupant is cuckooed into a
                // different way, per Section IV-C.
                let victim = mem::replace(dst, Some((k, v))).unwrap();
                self.ways[w].occupied -= 1;
                let other = self.other_way(w);
                let kicks = self.place(other, victim.0, victim.1);
                self.stats.record_kicks(kicks + 1);
            }
        }
    }

    /// Finalizes a completed migration: reclaims the old table and records
    /// the resize event.
    fn complete_resize(&mut self, w: usize) {
        let r = self.ways[w].resize.take().expect("resize must be active");
        debug_assert!(r.rehash_ptr >= r.old_len);
        match (r.mode, r.kind) {
            (ResizeMode::OutOfPlace, _) => {
                debug_assert!(
                    self.ways[w].old_slots.iter().all(Option::is_none),
                    "old table must be fully migrated"
                );
                self.ways[w].old_slots = Vec::new();
            }
            (ResizeMode::InPlace, ResizeKind::Downsize) => {
                let new_len = self.ways[w].logical_len;
                debug_assert!(
                    self.ways[w].slots[new_len..].iter().all(Option::is_none),
                    "upper half must be empty after downsize migration"
                );
                self.ways[w].slots.truncate(new_len);
                self.ways[w].slots.shrink_to_fit();
            }
            (ResizeMode::InPlace, ResizeKind::Upsize) => {}
        }
        self.stats.resizes.push(ResizeEvent {
            way: w,
            kind: r.kind,
            from_entries: r.old_len,
            to_entries: self.ways[w].logical_len,
            moved: r.moved,
            kept: r.kept,
        });
        self.refresh_bytes();
    }

    fn refresh_bytes(&mut self) {
        let sb = self.slot_bytes();
        let bytes = self.ways.iter().map(|w| w.physical_bytes(sb)).sum();
        self.stats.set_bytes(bytes);
    }

    /// Checks structural invariants; test helper.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let counted: usize = self.ways.iter().map(|w| w.occupied).sum();
        assert_eq!(counted, self.len, "per-way occupancy does not sum to len");
        let physical = self.iter().count();
        assert_eq!(physical, self.len, "physical entries do not match len");
        for way in &self.ways {
            assert!(way.logical_len.is_power_of_two());
            if let Some(r) = &way.resize {
                assert!(r.rehash_ptr <= r.old_len);
            } else {
                assert!(way.old_slots.is_empty());
                assert_eq!(way.slots.len(), way.logical_len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configs() -> Vec<(&'static str, Config)> {
        vec![
            ("oop-allway", Config::ecpt_baseline()),
            (
                "inplace-allway",
                Config {
                    resize_mode: ResizeMode::InPlace,
                    ..Config::default()
                },
            ),
            (
                "oop-perway",
                Config {
                    sizing: WaySizing::PerWay,
                    ..Config::default()
                },
            ),
            ("inplace-perway", Config::mehpt()),
        ]
    }

    #[test]
    fn insert_get_remove_roundtrip_all_configs() {
        for (name, cfg) in configs() {
            let mut t = ElasticCuckooTable::new(cfg);
            for i in 0..5_000u64 {
                assert_eq!(t.insert(i, i + 1), None, "{name}: fresh insert");
            }
            t.check_invariants();
            for i in 0..5_000u64 {
                assert_eq!(t.get(&i), Some(&(i + 1)), "{name}: get({i})");
            }
            assert_eq!(t.get(&9999), None);
            for i in 0..5_000u64 {
                assert_eq!(t.remove(&i), Some(i + 1), "{name}: remove({i})");
            }
            assert!(t.is_empty(), "{name}");
            t.check_invariants();
        }
    }

    #[test]
    fn insert_replaces_existing_value() {
        let mut t = ElasticCuckooTable::new(Config::default());
        assert_eq!(t.insert(7u64, "a"), None);
        assert_eq!(t.insert(7, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&7), Some(&"b"));
    }

    #[test]
    fn occupancy_never_exceeds_upsize_threshold_for_long() {
        for (name, cfg) in configs() {
            let mut t = ElasticCuckooTable::new(cfg);
            for i in 0..20_000u64 {
                t.insert(i, ());
                // Slack above the trigger: resizing is gradual, so the load
                // can transiently exceed 0.6, but never by much.
                assert!(
                    t.load_factor() < 0.75,
                    "{name}: load factor {} at i={i}",
                    t.load_factor()
                );
            }
        }
    }

    #[test]
    fn upsizes_happen_and_grow_capacity() {
        let mut t = ElasticCuckooTable::new(Config::ecpt_baseline());
        let initial_cap = t.capacity();
        for i in 0..10_000u64 {
            t.insert(i, ());
        }
        assert!(t.capacity() > initial_cap * 8);
        assert!(!t.stats().resizes.is_empty());
    }

    #[test]
    fn downsizes_shrink_capacity() {
        let mut t = ElasticCuckooTable::new(Config::mehpt());
        for i in 0..10_000u64 {
            t.insert(i, ());
        }
        let grown = t.capacity();
        for i in 0..10_000u64 {
            t.remove(&i);
        }
        // Removes trigger gradual downsizes; push them along.
        for i in 0..12_000u64 {
            t.insert(100_000 + i, ());
            t.remove(&(100_000 + i));
        }
        assert!(
            t.capacity() < grown / 2,
            "capacity {} did not shrink from {grown}",
            t.capacity()
        );
        t.check_invariants();
    }

    #[test]
    fn inplace_upsize_keeps_roughly_half_in_place() {
        // Figure 13: the fraction of entries moved per in-place upsize ≈ 0.5.
        let mut t = ElasticCuckooTable::new(Config {
            resize_mode: ResizeMode::InPlace,
            ..Config::default()
        });
        for i in 0..200_000u64 {
            t.insert(i, ());
        }
        let f = t.stats().mean_upsize_moved_fraction();
        assert!((0.4..0.6).contains(&f), "moved fraction {f}");
    }

    #[test]
    fn out_of_place_upsize_moves_everything() {
        let mut t = ElasticCuckooTable::new(Config::ecpt_baseline());
        for i in 0..50_000u64 {
            t.insert(i, ());
        }
        let f = t.stats().mean_upsize_moved_fraction();
        assert_eq!(f, 1.0, "out-of-place migration always moves entries");
    }

    #[test]
    fn inplace_peak_memory_below_out_of_place() {
        // Section IV-C: out-of-place resizing holds old + new (1.5× the new
        // table); in-place holds max(old, new).
        let run = |mode| {
            let mut t = ElasticCuckooTable::new(Config {
                resize_mode: mode,
                ..Config::default()
            });
            for i in 0..100_000u64 {
                t.insert(i, ());
            }
            t.stats().peak_bytes
        };
        let oop = run(ResizeMode::OutOfPlace);
        let inp = run(ResizeMode::InPlace);
        assert!(
            (inp as f64) < 0.8 * oop as f64,
            "in-place peak {inp} not clearly below out-of-place peak {oop}"
        );
    }

    #[test]
    fn per_way_resizing_keeps_ways_within_double() {
        let mut t = ElasticCuckooTable::new(Config::mehpt());
        for i in 0..300_000u64 {
            t.insert(i, ());
            if i % 8192 == 0 {
                let caps = t.way_capacities();
                let min = *caps.iter().min().unwrap();
                let max = *caps.iter().max().unwrap();
                assert!(max <= 2 * min, "way imbalance beyond 2x: {caps:?} at i={i}");
            }
        }
    }

    #[test]
    fn per_way_resizes_one_way_at_a_time() {
        let mut t = ElasticCuckooTable::new(Config::mehpt());
        for i in 0..100_000u64 {
            t.insert(i, ());
            let resizing = t.ways.iter().filter(|w| w.is_resizing()).count();
            assert!(resizing <= 1, "{resizing} ways resizing at once");
        }
    }

    #[test]
    fn all_way_resizes_all_ways_together() {
        let mut t: ElasticCuckooTable<u64, ()> = ElasticCuckooTable::new(Config::ecpt_baseline());
        let mut saw_full_resize = false;
        for i in 0..10_000u64 {
            t.insert(i, ());
            let resizing = t.ways.iter().filter(|w| w.is_resizing()).count();
            if resizing > 0 {
                assert_eq!(resizing, t.ways.len(), "all ways must resize together");
                saw_full_resize = true;
            }
        }
        assert!(saw_full_resize);
    }

    #[test]
    fn kick_histogram_mostly_zero_at_paper_occupancy() {
        // Figure 16: P(no re-insertion) ≈ 0.64 at ECPT's occupancy bounds.
        let mut t = ElasticCuckooTable::new(Config::mehpt());
        for i in 0..100_000u64 {
            t.insert(i, ());
        }
        let hist = &t.stats().kicks_histogram;
        let total: u64 = hist.iter().sum();
        let zero_frac = hist[0] as f64 / total as f64;
        assert!(zero_frac > 0.5, "P(0 kicks) = {zero_frac}");
        let mean = t.stats().mean_kicks();
        assert!(mean < 1.5, "mean kicks {mean}");
    }

    #[test]
    fn lookups_correct_during_resizes() {
        // Interleave inserts and lookups so many lookups hit mid-resize.
        for (name, cfg) in configs() {
            let mut t = ElasticCuckooTable::new(cfg);
            for i in 0..30_000u64 {
                t.insert(i, i);
                if i % 7 == 0 {
                    let probe = i / 2;
                    assert_eq!(t.get(&probe), Some(&probe), "{name} at i={i}");
                }
            }
        }
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut t = ElasticCuckooTable::new(Config::mehpt());
        for i in 0..10_000u64 {
            t.insert(i, ());
        }
        let mut keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 10_000);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = ElasticCuckooTable::new(Config::default());
        t.insert(1u64, 10);
        *t.get_mut(&1).unwrap() += 5;
        assert_eq!(t.get(&1), Some(&15));
        assert_eq!(t.get_mut(&2), None);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut t = ElasticCuckooTable::new(Config::mehpt());
            for i in 0..50_000u64 {
                t.insert(i, ());
            }
            (
                t.way_capacities(),
                t.stats().resizes.len(),
                t.stats().kicks_histogram.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "invalid ElasticCuckooTable config")]
    fn invalid_config_panics() {
        let _ = ElasticCuckooTable::<u64, ()>::new(Config {
            ways: 1,
            ..Config::default()
        });
    }
}
