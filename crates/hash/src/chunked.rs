use core::ops::{Index, IndexMut};

/// A growable slot array stored as fixed-size chunks — the generic form of
/// the paper's L2P technique (Section VIII: "directories can be
/// disaggregated with one level of indirection using our L2P table
/// technique").
///
/// A contiguous `Vec` of N slots needs one N-slot allocation; a
/// `ChunkedVec` never allocates more than one chunk at a time, so the
/// *maximum contiguous allocation* of a growing table is capped at the
/// chunk size — exactly what the L2P table does for HPT ways.
///
/// Indexing translates exactly like the hardware (Figure 2b): chunk
/// `i / chunk_len` (a shift when `chunk_len` is a power of two), offset
/// `i % chunk_len` (a mask).
///
/// # Examples
///
/// ```
/// use mehpt_hash::ChunkedVec;
///
/// let mut v: ChunkedVec<u32> = ChunkedVec::new(8);
/// v.resize_with(20, || 0);
/// v[17] = 42;
/// assert_eq!(v[17], 42);
/// assert_eq!(v.len(), 20);
/// assert_eq!(v.chunk_count(), 3); // ceil(20 / 8)
/// ```
#[derive(Clone, Debug)]
pub struct ChunkedVec<T> {
    chunks: Vec<Box<[T]>>,
    chunk_len: usize,
    len: usize,
}

impl<T> ChunkedVec<T> {
    /// Creates an empty array with the given chunk length (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is not a positive power of two.
    pub fn new(chunk_len: usize) -> ChunkedVec<T> {
        assert!(
            chunk_len.is_power_of_two(),
            "chunk length must be a power of two"
        );
        ChunkedVec {
            chunks: Vec::new(),
            chunk_len,
            len: 0,
        }
    }

    /// The number of live slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slots exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots per chunk.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Chunks currently allocated.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Grows or shrinks to `new_len` slots, filling new slots with `f` and
    /// allocating/freeing whole chunks as needed. The largest single
    /// allocation is always one chunk.
    pub fn resize_with<F: FnMut() -> T>(&mut self, new_len: usize, mut f: F) {
        let needed = new_len.div_ceil(self.chunk_len);
        while self.chunks.len() < needed {
            let chunk: Box<[T]> = (0..self.chunk_len).map(|_| f()).collect();
            self.chunks.push(chunk);
        }
        self.chunks.truncate(needed);
        // Reset slots revealed by growth within the last partial chunk.
        if new_len > self.len {
            for i in self.len..new_len.min(self.chunks.len() * self.chunk_len) {
                let (c, o) = (i / self.chunk_len, i % self.chunk_len);
                // Slots in freshly allocated chunks are already f()-filled;
                // only previously truncated-but-kept tail slots need reset.
                // Overwriting both cases keeps the invariant simple.
                self.chunks[c][o] = f();
            }
        }
        self.len = new_len;
    }

    /// Shrinks to `new_len` (keeps existing values in the surviving range).
    ///
    /// # Panics
    ///
    /// Panics if `new_len > len`.
    pub fn truncate(&mut self, new_len: usize) {
        assert!(new_len <= self.len);
        self.len = new_len;
        self.chunks
            .truncate(new_len.div_ceil(self.chunk_len).max(0));
    }

    /// Iterates over the live slots.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter()).take(self.len)
    }
}

impl<T> Index<usize> for ChunkedVec<T> {
    type Output = T;

    fn index(&self, i: usize) -> &T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        &self.chunks[i / self.chunk_len][i % self.chunk_len]
    }
}

impl<T> IndexMut<usize> for ChunkedVec<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        &mut self.chunks[i / self.chunk_len][i % self.chunk_len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_one_chunk_at_a_time() {
        let mut v: ChunkedVec<u64> = ChunkedVec::new(4);
        v.resize_with(1, || 7);
        assert_eq!(v.chunk_count(), 1);
        v.resize_with(9, || 7);
        assert_eq!(v.chunk_count(), 3);
        assert_eq!(v.len(), 9);
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn index_round_trips() {
        let mut v: ChunkedVec<usize> = ChunkedVec::new(8);
        v.resize_with(100, || 0);
        for i in 0..100 {
            v[i] = i * 3;
        }
        for i in 0..100 {
            assert_eq!(v[i], i * 3);
        }
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected.len(), 100);
        assert_eq!(collected[99], 297);
    }

    #[test]
    fn truncate_frees_whole_chunks() {
        let mut v: ChunkedVec<u8> = ChunkedVec::new(4);
        v.resize_with(16, || 1);
        assert_eq!(v.chunk_count(), 4);
        v.truncate(5);
        assert_eq!(v.len(), 5);
        assert_eq!(v.chunk_count(), 2);
        assert_eq!(v[4], 1);
    }

    #[test]
    fn regrow_after_truncate_resets_slots() {
        let mut v: ChunkedVec<u8> = ChunkedVec::new(4);
        v.resize_with(8, || 9);
        v[6] = 42;
        v.truncate(5);
        v.resize_with(8, || 0);
        assert_eq!(v[6], 0, "revealed slot must be re-initialized");
        assert_eq!(v[4], 9, "kept slot must survive");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut v: ChunkedVec<u8> = ChunkedVec::new(4);
        v.resize_with(3, || 0);
        let _ = v[3];
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_chunk_len_panics() {
        let _: ChunkedVec<u8> = ChunkedVec::new(3);
    }
}
