use core::fmt;

/// How a table (or way) grows and shrinks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ResizeMode {
    /// The ECPT baseline (Section II-B): allocate a fresh table of the new
    /// size and gradually migrate entries; old and new coexist until the
    /// migration finishes, so peak memory is `old + new`.
    #[default]
    OutOfPlace,
    /// The paper's contribution (Section IV-C): the new table shares the
    /// old table's memory. Upsizing consumes one extra bit of the same hash
    /// key, so each migrated entry either stays in place or moves to the
    /// same offset in the new upper half; peak memory is `max(old, new)`.
    InPlace,
}

/// Which ways participate in a resize.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WaySizing {
    /// The ECPT baseline: all W ways double (or halve) together.
    #[default]
    AllWay,
    /// The paper's per-way resizing (Section IV-D): one way resizes at a
    /// time, gated so no way grows beyond double another, with
    /// weighted-random insertion proportional to per-way free slots.
    PerWay,
}

/// Configuration of an [`ElasticCuckooTable`](crate::ElasticCuckooTable).
///
/// The defaults are the paper's parameters (Table III): 3 ways, 128 initial
/// entries per way, upsize above 0.6 occupancy, downsize below 0.2.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Number of ways (hash functions). At least 2.
    pub ways: usize,
    /// Entries per way at creation (a power of two). Also the floor below
    /// which downsizing stops.
    pub initial_entries_per_way: usize,
    /// Occupancy fraction above which an upsize is triggered.
    pub upsize_threshold: f64,
    /// Occupancy fraction below which a downsize is triggered.
    pub downsize_threshold: f64,
    /// Out-of-place (ECPT baseline) or in-place (ME-HPT) resizing.
    pub resize_mode: ResizeMode,
    /// All-way (ECPT baseline) or per-way (ME-HPT) resizing.
    pub sizing: WaySizing,
    /// Entries migrated from each resizing way per insert ("the OS uses the
    /// opportunity to rehash one element"; 2 guarantees a resize finishes
    /// before the next one triggers).
    pub migrate_per_insert: usize,
    /// Maximum cuckoo kicks before an insert forces an upsize.
    pub max_kicks: usize,
    /// Seed for the hash family and the random way choice.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            ways: 3,
            initial_entries_per_way: 128,
            upsize_threshold: 0.6,
            downsize_threshold: 0.2,
            resize_mode: ResizeMode::OutOfPlace,
            sizing: WaySizing::AllWay,
            migrate_per_insert: 2,
            max_kicks: 32,
            seed: 0xec97,
        }
    }
}

impl Config {
    /// The ECPT-baseline configuration: out-of-place, all-way resizing.
    pub fn ecpt_baseline() -> Config {
        Config::default()
    }

    /// The ME-HPT configuration: in-place, per-way resizing.
    pub fn mehpt() -> Config {
        Config {
            resize_mode: ResizeMode::InPlace,
            sizing: WaySizing::PerWay,
            ..Config::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ways < 2 {
            return Err(ConfigError::TooFewWays(self.ways));
        }
        if !self.initial_entries_per_way.is_power_of_two() {
            return Err(ConfigError::InitialSizeNotPowerOfTwo(
                self.initial_entries_per_way,
            ));
        }
        if !(0.0..1.0).contains(&self.upsize_threshold)
            || !(0.0..1.0).contains(&self.downsize_threshold)
            || self.downsize_threshold >= self.upsize_threshold
        {
            return Err(ConfigError::BadThresholds {
                upsize: self.upsize_threshold,
                downsize: self.downsize_threshold,
            });
        }
        if self.migrate_per_insert == 0 {
            return Err(ConfigError::ZeroMigrationRate);
        }
        Ok(())
    }
}

/// An invalid [`Config`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// Cuckoo hashing needs at least two ways.
    TooFewWays(usize),
    /// Way sizes must be powers of two (in-place resizing consumes hash-key
    /// bits one at a time).
    InitialSizeNotPowerOfTwo(usize),
    /// Thresholds must satisfy `0 ≤ downsize < upsize < 1`.
    BadThresholds {
        /// The configured upsize threshold.
        upsize: f64,
        /// The configured downsize threshold.
        downsize: f64,
    },
    /// At least one entry must migrate per insert or resizes never finish.
    ZeroMigrationRate,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::TooFewWays(w) => {
                write!(f, "cuckoo hashing needs at least 2 ways, got {w}")
            }
            ConfigError::InitialSizeNotPowerOfTwo(n) => {
                write!(f, "initial entries per way must be a power of two, got {n}")
            }
            ConfigError::BadThresholds { upsize, downsize } => write!(
                f,
                "thresholds must satisfy 0 <= downsize < upsize < 1, got downsize {downsize} and upsize {upsize}"
            ),
            ConfigError::ZeroMigrationRate => {
                write!(f, "migrate_per_insert must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_table_iii() {
        let c = Config::default();
        c.validate().unwrap();
        assert_eq!(c.ways, 3);
        assert_eq!(c.initial_entries_per_way, 128);
        assert_eq!(c.upsize_threshold, 0.6);
        assert_eq!(c.downsize_threshold, 0.2);
    }

    #[test]
    fn presets_differ_in_techniques() {
        let ecpt = Config::ecpt_baseline();
        let mehpt = Config::mehpt();
        assert_eq!(ecpt.resize_mode, ResizeMode::OutOfPlace);
        assert_eq!(ecpt.sizing, WaySizing::AllWay);
        assert_eq!(mehpt.resize_mode, ResizeMode::InPlace);
        assert_eq!(mehpt.sizing, WaySizing::PerWay);
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = Config {
            ways: 1,
            ..Config::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::TooFewWays(1)));
        c.ways = 3;
        c.initial_entries_per_way = 100;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InitialSizeNotPowerOfTwo(100))
        ));
        c.initial_entries_per_way = 128;
        c.downsize_threshold = 0.7;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadThresholds { .. })
        ));
        c.downsize_threshold = 0.2;
        c.migrate_per_insert = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMigrationRate));
    }

    #[test]
    fn errors_display() {
        assert!(ConfigError::TooFewWays(1).to_string().contains("2 ways"));
        assert!(ConfigError::ZeroMigrationRate
            .to_string()
            .contains("at least 1"));
    }
}
