use std::hash::{Hash, Hasher};

/// The CRC-64/ECMA-182 polynomial (normal form).
const CRC64_POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// Computes the 256-entry CRC-64 lookup table at first use.
fn crc64_table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u64; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ CRC64_POLY
                } else {
                    crc << 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// Computes the CRC-64/ECMA checksum of `bytes` starting from `init`.
///
/// This is the hash primitive the modeled MMU implements in hardware
/// (Table III: "Hash functions: CRC, latency 2 cycles").
///
/// # Examples
///
/// ```
/// use mehpt_hash::crc64;
///
/// assert_ne!(crc64(0, b"abc"), crc64(0, b"abd"));
/// assert_ne!(crc64(0, b"abc"), crc64(1, b"abc"));
/// ```
pub fn crc64(init: u64, bytes: &[u8]) -> u64 {
    let table = crc64_table();
    let mut crc = init;
    for &b in bytes {
        crc = table[(((crc >> 56) as u8) ^ b) as usize] ^ (crc << 8);
    }
    crc
}

/// A [`Hasher`] computing CRC-64 with a nonlinear finalizer.
///
/// CRC is linear over GF(2): two hash functions that differ only in their
/// initial value would collide on exactly the same key pairs, which would
/// make the ways of a cuckoo table collide together and defeat the purpose
/// of multiple hash functions. The splitmix64 finalizer applied in
/// [`Hasher::finish`] breaks that linearity while keeping the hardware cost
/// model (a couple of cycles) realistic.
#[derive(Clone, Debug)]
pub struct Crc64Hasher {
    state: u64,
}

impl Crc64Hasher {
    /// Creates a hasher starting from the given initial CRC value.
    pub fn new(init: u64) -> Crc64Hasher {
        Crc64Hasher { state: init }
    }
}

impl Hasher for Crc64Hasher {
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: decorrelates CRC's linear structure.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        self.state = crc64(self.state, bytes);
    }
}

/// A family of per-way hash functions for a W-way cuckoo table.
///
/// Way `i` hashes with CRC-64 from a distinct initial value and a distinct
/// nonlinear finalizer input, so the ways behave as independent functions.
///
/// # Examples
///
/// ```
/// use mehpt_hash::HashFamily;
///
/// let family = HashFamily::new(3, 42);
/// let h0 = family.hash(0, &123u64);
/// let h1 = family.hash(1, &123u64);
/// assert_ne!(h0, h1);
/// ```
#[derive(Clone, Debug)]
pub struct HashFamily {
    inits: Vec<u64>,
}

impl HashFamily {
    /// Creates a family of `ways` hash functions derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`.
    pub fn new(ways: usize, seed: u64) -> HashFamily {
        assert!(ways > 0, "hash family needs at least one way");
        let mut state = seed ^ 0x6a09_e667_f3bc_c908;
        let inits = (0..ways)
            .map(|_| mehpt_types::rng::splitmix64(&mut state))
            .collect();
        HashFamily { inits }
    }

    /// The number of ways (hash functions) in the family.
    pub fn ways(&self) -> usize {
        self.inits.len()
    }

    /// Hashes `key` with way `way`'s function, returning a full 64-bit key.
    ///
    /// Table indices are produced by masking low bits of this value; an
    /// in-place resize consumes one more (or one fewer) bit of the same
    /// value, which is what makes the paper's in-place rehash work.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn hash<K: Hash + ?Sized>(&self, way: usize, key: &K) -> u64 {
        let mut hasher = Crc64Hasher::new(self.inits[way]);
        key.hash(&mut hasher);
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_distinguishes_inputs() {
        assert_ne!(crc64(0, b"hello"), crc64(0, b"hellp"));
        assert_ne!(crc64(0, b"a"), crc64(0, b"ab"));
    }

    #[test]
    fn crc_depends_on_init() {
        assert_ne!(crc64(1, b"x"), crc64(2, b"x"));
    }

    #[test]
    fn hasher_is_deterministic() {
        let h = |k: u64| {
            let mut hasher = Crc64Hasher::new(7);
            k.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(99), h(99));
        assert_ne!(h(99), h(100));
    }

    #[test]
    fn family_ways_decorrelated() {
        // The ways must not collide on the same pairs: check that keys
        // colliding in the low bits of way 0 do not also collide in way 1.
        let family = HashFamily::new(2, 1);
        let mask = 0xff;
        let mut joint_collisions = 0;
        let mut w0_collisions = 0;
        for a in 0..2000u64 {
            let b = a + 5000;
            if family.hash(0, &a) & mask == family.hash(0, &b) & mask {
                w0_collisions += 1;
                if family.hash(1, &a) & mask == family.hash(1, &b) & mask {
                    joint_collisions += 1;
                }
            }
        }
        assert!(w0_collisions > 0, "test needs some way-0 collisions");
        // If ways were linear shifts of each other, every way-0 collision
        // would also be a way-1 collision.
        assert!(
            joint_collisions * 16 <= w0_collisions,
            "{joint_collisions}/{w0_collisions} joint collisions — ways correlated"
        );
    }

    #[test]
    fn low_bits_look_uniform() {
        let family = HashFamily::new(1, 3);
        let mut buckets = [0u32; 16];
        for k in 0..16_000u64 {
            buckets[(family.hash(0, &k) & 0xf) as usize] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn seeds_produce_different_families() {
        let f1 = HashFamily::new(1, 1);
        let f2 = HashFamily::new(1, 2);
        assert_ne!(f1.hash(0, &42u64), f2.hash(0, &42u64));
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        HashFamily::new(0, 0);
    }
}
