use std::hash::Hash;

use crate::HashFamily;

const SLOTS_PER_BUCKET: usize = 4;

type Bucket<K, V> = [Option<(K, V)>; SLOTS_PER_BUCKET];

/// Statistics collected by a [`LevelHashTable`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Bucket probes performed across all lookups.
    pub probes: u64,
    /// Lookups served.
    pub lookups: u64,
    /// Resizes performed.
    pub resizes: u64,
    /// Entries rehashed (moved) during resizes.
    pub moved: u64,
    /// Entries that stayed in place during resizes (the old top level
    /// becoming the new bottom level without movement).
    pub kept: u64,
}

impl LevelStats {
    /// Mean bucket probes per lookup (the paper's Section IX: level hashing
    /// "trades more memory accesses (4 per lookup) for less entry moves").
    pub fn probes_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.probes as f64 / self.lookups as f64
    }

    /// Fraction of entries moved per resize (paper: "only 1/3 of the old
    /// table entries are moved").
    pub fn moved_fraction(&self) -> f64 {
        let total = self.moved + self.kept;
        if total == 0 {
            return 0.0;
        }
        self.moved as f64 / total as f64
    }
}

/// A Level Hashing table (Zuo et al., OSDI'18) for the Section IX
/// comparison.
///
/// Two bucketized levels: a top level of `N` buckets and a bottom level of
/// `N/2` buckets, with two hash functions. Every key has four candidate
/// buckets (two per level, 4 slots each). Resizing allocates a new top
/// level of `2N` buckets, demotes the old top level to be the new bottom
/// level *without moving it*, and rehashes only the old bottom level's
/// entries — about one third of the table.
///
/// Contrast with ME-HPT's in-place cuckoo resizing: level hashing needs up
/// to 4 bucket probes per lookup but moves only 1/3 of entries per resize;
/// in-place cuckoo resizing needs W probes (3) and moves ~1/2. The
/// `levelhash` benchmark reproduces exactly this trade-off.
///
/// # Examples
///
/// ```
/// use mehpt_hash::LevelHashTable;
///
/// let mut t = LevelHashTable::new(64, 7);
/// for i in 0..1000u64 {
///     t.insert(i, i);
/// }
/// assert_eq!(t.get(&500), Some(&500));
/// ```
#[derive(Clone, Debug)]
pub struct LevelHashTable<K, V> {
    top: Vec<Bucket<K, V>>,
    bottom: Vec<Bucket<K, V>>,
    family: HashFamily,
    len: usize,
    stats: LevelStats,
}

impl<K: Hash + Eq, V> LevelHashTable<K, V> {
    /// Creates a table with `top_buckets` buckets in the top level (a power
    /// of two ≥ 2) and half that in the bottom level.
    ///
    /// # Panics
    ///
    /// Panics if `top_buckets` is not a power of two or is smaller than 2.
    pub fn new(top_buckets: usize, seed: u64) -> LevelHashTable<K, V> {
        assert!(
            top_buckets.is_power_of_two() && top_buckets >= 2,
            "top_buckets must be a power of two of at least 2"
        );
        LevelHashTable {
            top: (0..top_buckets).map(|_| Bucket::default()).collect(),
            bottom: (0..top_buckets / 2).map(|_| Bucket::default()).collect(),
            family: HashFamily::new(2, seed),
            len: 0,
            stats: LevelStats::default(),
        }
    }

    /// The number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        (self.top.len() + self.bottom.len()) * SLOTS_PER_BUCKET
    }

    /// Collected statistics.
    pub fn stats(&self) -> &LevelStats {
        &self.stats
    }

    fn bucket_indices(&self, key: &K) -> [usize; 2] {
        [
            self.family.hash(0, key) as usize,
            self.family.hash(1, key) as usize,
        ]
    }

    /// Looks up `key`, probing up to four buckets.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.stats.lookups += 1;
        let hashes = self.bucket_indices(key);
        let mut probes = 0u64;
        let mut found: Option<(bool, usize, usize)> = None;
        'search: for (level_is_top, buckets) in [(true, &self.top), (false, &self.bottom)] {
            for h in hashes {
                let b = h & (buckets.len() - 1);
                probes += 1;
                for (s, slot) in buckets[b].iter().enumerate() {
                    if let Some((k, _)) = slot {
                        if k == key {
                            found = Some((level_is_top, b, s));
                            break 'search;
                        }
                    }
                }
            }
        }
        self.stats.probes += probes;
        found.map(move |(is_top, b, s)| {
            let bucket = if is_top {
                &self.top[b]
            } else {
                &self.bottom[b]
            };
            &bucket[s].as_ref().unwrap().1
        })
    }

    /// Inserts `key → value`; returns the previous value if present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        // Update in place if present.
        let hashes = self.bucket_indices(&key);
        for is_top in [true, false] {
            let buckets = if is_top {
                &mut self.top
            } else {
                &mut self.bottom
            };
            let mask = buckets.len() - 1;
            for h in hashes {
                for slot in buckets[h & mask].iter_mut() {
                    if let Some((k, v)) = slot {
                        if *k == key {
                            return Some(std::mem::replace(v, value));
                        }
                    }
                }
            }
        }
        let mut entry = (key, value);
        loop {
            match self.try_place(entry) {
                Ok(()) => {
                    self.len += 1;
                    return None;
                }
                Err(e) => {
                    entry = e;
                    self.resize();
                }
            }
        }
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let hashes = self.bucket_indices(key);
        for is_top in [true, false] {
            let buckets = if is_top {
                &mut self.top
            } else {
                &mut self.bottom
            };
            let mask = buckets.len() - 1;
            for h in hashes {
                for slot in buckets[h & mask].iter_mut() {
                    if let Some((k, _)) = slot {
                        if k == key {
                            let (_, v) = slot.take().unwrap();
                            self.len -= 1;
                            return Some(v);
                        }
                    }
                }
            }
        }
        None
    }

    /// Tries to place an entry into one of its four candidate buckets,
    /// with one level-hashing "movement" attempt before giving up.
    fn try_place(&mut self, entry: (K, V)) -> Result<(), (K, V)> {
        let hashes = self.bucket_indices(&entry.0);
        // Top level first (level hashing keeps the top level primary).
        for is_top in [true, false] {
            let buckets = if is_top {
                &mut self.top
            } else {
                &mut self.bottom
            };
            let mask = buckets.len() - 1;
            for h in hashes {
                if let Some(slot) = buckets[h & mask].iter_mut().find(|s| s.is_none()) {
                    *slot = Some(entry);
                    return Ok(());
                }
            }
        }
        // Movement: try to relocate one occupant of a candidate top bucket
        // to its alternate top bucket.
        let mask = self.top.len() - 1;
        for h in hashes {
            let b = h & mask;
            for s in 0..SLOTS_PER_BUCKET {
                let Some((ok, _)) = self.top[b][s].as_ref() else {
                    continue;
                };
                let alt = self
                    .bucket_indices(ok)
                    .into_iter()
                    .map(|oh| oh & mask)
                    .find(|&ob| ob != b);
                if let Some(alt) = alt {
                    if let Some(free) =
                        (0..SLOTS_PER_BUCKET).find(|&fs| self.top[alt][fs].is_none())
                    {
                        let moved = self.top[b][s].take();
                        self.top[alt][free] = moved;
                        self.top[b][s] = Some(entry);
                        return Ok(());
                    }
                }
            }
        }
        Err(entry)
    }

    /// Expands the table: new top = 2N buckets, old top becomes the new
    /// bottom (no movement), old bottom entries (≈ one third of the table)
    /// are rehashed into the new structure.
    fn resize(&mut self) {
        let new_top_len = self.top.len() * 2;
        let old_bottom = std::mem::replace(
            &mut self.bottom,
            std::mem::replace(
                &mut self.top,
                (0..new_top_len).map(|_| Bucket::default()).collect(),
            ),
        );
        self.stats.resizes += 1;
        self.stats.kept += self.bottom.iter().flatten().filter(|s| s.is_some()).count() as u64;
        for bucket in old_bottom {
            for slot in bucket {
                if let Some(entry) = slot {
                    self.stats.moved += 1;
                    self.len -= 1;
                    // Re-insert via the normal path (cannot recurse into
                    // resize in practice: the new table has ample space).
                    let (k, v) = entry;
                    self.insert(k, v);
                }
            }
        }
    }

    /// Current memory footprint in bytes (slot storage).
    pub fn memory_bytes(&self) -> u64 {
        let slot = std::mem::size_of::<Option<(K, V)>>();
        ((self.top.len() + self.bottom.len()) * SLOTS_PER_BUCKET * slot) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t = LevelHashTable::new(16, 1);
        for i in 0..2000u64 {
            assert_eq!(t.insert(i, i * 3), None);
        }
        for i in 0..2000u64 {
            assert_eq!(t.get(&i), Some(&(i * 3)), "get({i})");
        }
        assert_eq!(t.get(&99999), None);
        for i in 0..2000u64 {
            assert_eq!(t.remove(&i), Some(i * 3));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn insert_replaces() {
        let mut t = LevelHashTable::new(4, 2);
        assert_eq!(t.insert(5u64, 'a'), None);
        assert_eq!(t.insert(5, 'b'), Some('a'));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lookup_needs_up_to_four_probes() {
        let mut t = LevelHashTable::new(64, 3);
        for i in 0..3000u64 {
            t.insert(i, ());
        }
        for i in 0..3000u64 {
            t.get(&i);
        }
        let ppl = t.stats().probes_per_lookup();
        assert!(ppl > 1.0 && ppl <= 4.0, "probes per lookup {ppl}");
    }

    #[test]
    fn resize_moves_about_one_third() {
        let mut t = LevelHashTable::new(16, 4);
        for i in 0..20_000u64 {
            t.insert(i, ());
        }
        assert!(t.stats().resizes > 0);
        let f = t.stats().moved_fraction();
        assert!((0.2..0.45).contains(&f), "moved fraction {f}");
    }

    #[test]
    fn capacity_grows_under_load() {
        let mut t = LevelHashTable::new(4, 5);
        let c0 = t.capacity();
        for i in 0..5000u64 {
            t.insert(i, ());
        }
        assert!(t.capacity() > c0 * 8);
        assert_eq!(t.len(), 5000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bucket_count_panics() {
        let _ = LevelHashTable::<u64, ()>::new(3, 0);
    }
}
