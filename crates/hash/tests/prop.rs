//! Property tests: the elastic cuckoo table must behave exactly like a
//! `HashMap` under arbitrary operation sequences, in every combination of
//! the paper's resize techniques, including mid-resize states.

use std::collections::HashMap;

use mehpt_hash::{Config, ElasticCuckooTable, LevelHashTable, ResizeMode, WaySizing};
use mehpt_types::proptest_lite::{check, Gen};

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn gen_op(g: &mut Gen) -> Op {
    match g.weighted(&[3, 1, 1]) {
        0 => Op::Insert(g.u16(), g.u32()),
        1 => Op::Remove(g.u16()),
        _ => Op::Get(g.u16()),
    }
}

fn gen_ops(g: &mut Gen, max_len: usize) -> Vec<Op> {
    g.vec_of(max_len, gen_op)
}

fn config(mode: ResizeMode, sizing: WaySizing) -> Config {
    Config {
        resize_mode: mode,
        sizing,
        // Small initial table so resizes happen constantly under the
        // harness's modest input sizes.
        initial_entries_per_way: 8,
        ..Config::default()
    }
}

fn check_against_model(cfg: Config, ops: Vec<Op>) {
    let mut table = ElasticCuckooTable::new(cfg);
    let mut model: HashMap<u16, u32> = HashMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                assert_eq!(table.insert(k, v), model.insert(k, v));
            }
            Op::Remove(k) => {
                assert_eq!(table.remove(&k), model.remove(&k));
            }
            Op::Get(k) => {
                assert_eq!(table.get(&k), model.get(&k));
            }
        }
        assert_eq!(table.len(), model.len());
    }
    table.check_invariants();
    // Every model entry must be findable, and iteration must match exactly.
    for (k, v) in &model {
        assert_eq!(table.get(k), Some(v));
    }
    let mut table_entries: Vec<(u16, u32)> = table.iter().map(|(k, v)| (*k, *v)).collect();
    let mut model_entries: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    table_entries.sort_unstable();
    model_entries.sort_unstable();
    assert_eq!(table_entries, model_entries);
}

#[test]
fn oop_allway_matches_hashmap() {
    check("oop_allway_matches_hashmap", 64, |g| {
        let ops = gen_ops(g, 800);
        check_against_model(config(ResizeMode::OutOfPlace, WaySizing::AllWay), ops);
    });
}

#[test]
fn inplace_allway_matches_hashmap() {
    check("inplace_allway_matches_hashmap", 64, |g| {
        let ops = gen_ops(g, 800);
        check_against_model(config(ResizeMode::InPlace, WaySizing::AllWay), ops);
    });
}

#[test]
fn oop_perway_matches_hashmap() {
    check("oop_perway_matches_hashmap", 64, |g| {
        let ops = gen_ops(g, 800);
        check_against_model(config(ResizeMode::OutOfPlace, WaySizing::PerWay), ops);
    });
}

#[test]
fn inplace_perway_matches_hashmap() {
    check("inplace_perway_matches_hashmap", 64, |g| {
        let ops = gen_ops(g, 800);
        check_against_model(config(ResizeMode::InPlace, WaySizing::PerWay), ops);
    });
}

#[test]
fn level_hash_matches_hashmap() {
    check("level_hash_matches_hashmap", 64, |g| {
        let ops = gen_ops(g, 800);
        let mut table = LevelHashTable::new(4, 99);
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    assert_eq!(table.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    assert_eq!(table.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    assert_eq!(table.get(&k), model.get(&k));
                }
            }
            assert_eq!(table.len(), model.len());
        }
    });
}

#[test]
fn way_balance_invariant_holds_under_any_workload() {
    check("way_balance_invariant_holds_under_any_workload", 64, |g| {
        // Section IV-D: "a way will never be more than double (or less than
        // half) the size of another way."
        let ops = gen_ops(g, 1500);
        let mut table = ElasticCuckooTable::new(config(ResizeMode::InPlace, WaySizing::PerWay));
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    table.insert(k, v);
                }
                Op::Remove(k) => {
                    table.remove(&k);
                }
                Op::Get(k) => {
                    table.get(&k);
                }
            }
            let caps = table.way_capacities();
            let min = *caps.iter().min().unwrap();
            let max = *caps.iter().max().unwrap();
            assert!(max <= 2 * min, "imbalanced ways: {caps:?}");
        }
    });
}

#[test]
fn load_factor_bounded_under_any_workload() {
    check("load_factor_bounded_under_any_workload", 64, |g| {
        let ops = gen_ops(g, 1500);
        for cfg in [
            config(ResizeMode::OutOfPlace, WaySizing::AllWay),
            config(ResizeMode::InPlace, WaySizing::PerWay),
        ] {
            let mut table = ElasticCuckooTable::new(cfg);
            for op in &ops {
                match op {
                    Op::Insert(k, v) => {
                        table.insert(*k, *v);
                    }
                    Op::Remove(k) => {
                        table.remove(k);
                    }
                    Op::Get(k) => {
                        table.get(k);
                    }
                }
                assert!(
                    table.load_factor() <= 0.85,
                    "load factor {}",
                    table.load_factor()
                );
            }
        }
    });
}
