//! Property tests: the elastic cuckoo table must behave exactly like a
//! `HashMap` under arbitrary operation sequences, in every combination of
//! the paper's resize techniques, including mid-resize states.

use std::collections::HashMap;

use mehpt_hash::{Config, ElasticCuckooTable, LevelHashTable, ResizeMode, WaySizing};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => any::<u16>().prop_map(Op::Remove),
        1 => any::<u16>().prop_map(Op::Get),
    ]
}

fn config(mode: ResizeMode, sizing: WaySizing) -> Config {
    Config {
        resize_mode: mode,
        sizing,
        // Small initial table so resizes happen constantly under proptest's
        // modest input sizes.
        initial_entries_per_way: 8,
        ..Config::default()
    }
}

fn check_against_model(cfg: Config, ops: Vec<Op>) {
    let mut table = ElasticCuckooTable::new(cfg);
    let mut model: HashMap<u16, u32> = HashMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                assert_eq!(table.insert(k, v), model.insert(k, v));
            }
            Op::Remove(k) => {
                assert_eq!(table.remove(&k), model.remove(&k));
            }
            Op::Get(k) => {
                assert_eq!(table.get(&k), model.get(&k));
            }
        }
        assert_eq!(table.len(), model.len());
    }
    table.check_invariants();
    // Every model entry must be findable, and iteration must match exactly.
    for (k, v) in &model {
        assert_eq!(table.get(k), Some(v));
    }
    let mut table_entries: Vec<(u16, u32)> = table.iter().map(|(k, v)| (*k, *v)).collect();
    let mut model_entries: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    table_entries.sort_unstable();
    model_entries.sort_unstable();
    assert_eq!(table_entries, model_entries);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn oop_allway_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 0..800)) {
        check_against_model(config(ResizeMode::OutOfPlace, WaySizing::AllWay), ops);
    }

    #[test]
    fn inplace_allway_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 0..800)) {
        check_against_model(config(ResizeMode::InPlace, WaySizing::AllWay), ops);
    }

    #[test]
    fn oop_perway_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 0..800)) {
        check_against_model(config(ResizeMode::OutOfPlace, WaySizing::PerWay), ops);
    }

    #[test]
    fn inplace_perway_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 0..800)) {
        check_against_model(config(ResizeMode::InPlace, WaySizing::PerWay), ops);
    }

    #[test]
    fn level_hash_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 0..800)) {
        let mut table = LevelHashTable::new(4, 99);
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(table.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(table.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(table.get(&k), model.get(&k));
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
    }

    #[test]
    fn way_balance_invariant_holds_under_any_workload(
        ops in proptest::collection::vec(op_strategy(), 0..1500)
    ) {
        // Section IV-D: "a way will never be more than double (or less than
        // half) the size of another way."
        let mut table = ElasticCuckooTable::new(config(ResizeMode::InPlace, WaySizing::PerWay));
        for op in ops {
            match op {
                Op::Insert(k, v) => { table.insert(k, v); }
                Op::Remove(k) => { table.remove(&k); }
                Op::Get(k) => { table.get(&k); }
            }
            let caps = table.way_capacities();
            let min = *caps.iter().min().unwrap();
            let max = *caps.iter().max().unwrap();
            prop_assert!(max <= 2 * min, "imbalanced ways: {:?}", caps);
        }
    }

    #[test]
    fn load_factor_bounded_under_any_workload(
        ops in proptest::collection::vec(op_strategy(), 0..1500)
    ) {
        for cfg in [
            config(ResizeMode::OutOfPlace, WaySizing::AllWay),
            config(ResizeMode::InPlace, WaySizing::PerWay),
        ] {
            let mut table = ElasticCuckooTable::new(cfg);
            for op in &ops {
                match op {
                    Op::Insert(k, v) => { table.insert(*k, *v); }
                    Op::Remove(k) => { table.remove(k); }
                    Op::Get(k) => { table.get(k); }
                }
                prop_assert!(table.load_factor() <= 0.85,
                    "load factor {}", table.load_factor());
            }
        }
    }
}
