use mehpt_mem::{AllocTag, Fragmenter, PhysMem};
use mehpt_tlb::{MemoryModel, TlbHierarchy};
use mehpt_types::rng::Xoshiro256;
use mehpt_workloads::Workload;

use crate::runner::ProcState;
use crate::{SimConfig, SimReport};

/// Configuration of a multiprogrammed run.
#[derive(Clone, Debug)]
pub struct MultiConfig {
    /// The per-process simulation configuration (page-table kind, THP,
    /// cost constants). Memory size and fragmentation apply machine-wide.
    pub base: SimConfig,
    /// Accesses per scheduling slice before the next process runs.
    pub time_slice: u64,
    /// Fixed OS cost of a context switch (register state, scheduler).
    pub switch_cycles: u64,
    /// Cycles per 8 bytes of L2P state saved + restored on a switch
    /// (ME-HPT only; Section V-C).
    pub l2p_qword_cycles: u64,
}

impl MultiConfig {
    /// Paper-flavored defaults: 50K-access slices, 1000-cycle switches.
    pub fn paper(base: SimConfig) -> MultiConfig {
        MultiConfig {
            base,
            time_slice: 50_000,
            switch_cycles: 1_000,
            l2p_qword_cycles: 4,
        }
    }
}

/// The outcome of a multiprogrammed run.
#[derive(Clone, Debug)]
pub struct MultiReport {
    /// Per-process reports (same shape as single-process runs).
    pub processes: Vec<SimReport>,
    /// Context switches performed.
    pub switches: u64,
    /// Cycles spent switching (including L2P save/restore).
    pub switch_cycles: u64,
    /// Peak page-table memory across *all* processes simultaneously —
    /// the multiprogrammed pressure the paper warns about (Section IV-C:
    /// "there may potentially be several HPT resizings occurring
    /// concurrently, consuming substantial memory").
    pub peak_pt_bytes: u64,
    /// Largest contiguous page-table allocation machine-wide.
    pub max_contiguous: u64,
}

impl MultiReport {
    /// Total cycles across processes plus switching.
    pub fn total_cycles(&self) -> u64 {
        self.processes.iter().map(|p| p.total_cycles).sum::<u64>() + self.switch_cycles
    }
}

/// Runs several workloads round-robin on one core with a shared TLB and
/// shared physical memory — each process with its own page table of the
/// configured kind.
///
/// On every context switch the TLB and the incoming/outgoing process's
/// walker caches are flushed, and (for ME-HPT) the L2P table's live
/// entries are saved and restored at `l2p_qword_cycles` per 8 bytes.
///
/// # Panics
///
/// Panics if `workloads` is empty or the initial page tables cannot be
/// allocated.
pub fn run_multi(workloads: Vec<Workload>, cfg: MultiConfig) -> MultiReport {
    assert!(!workloads.is_empty(), "need at least one workload");
    let mut mem = PhysMem::new(cfg.base.mem_bytes);
    let mut rng = Xoshiro256::seed_from_u64(cfg.base.seed);
    let _ballast = Fragmenter::fragment(&mut mem, cfg.base.fragmentation, &mut rng);
    let mut tlb = TlbHierarchy::paper_default();
    let mut dram = MemoryModel::paper_default();
    let mut procs: Vec<ProcState> = workloads
        .into_iter()
        .map(|wl| ProcState::new(wl, &cfg.base, &mut mem))
        .collect();

    let mut switches = 0u64;
    let mut switch_cycles_total = 0u64;
    let mut peak_pt = 0u64;
    loop {
        let mut any_ran = false;
        for proc in procs.iter_mut() {
            if proc.finished() {
                continue;
            }
            // Context switch in: flush shared translation state and pay
            // the switch + L2P restore bill.
            tlb.flush();
            proc.flush_walker();
            let l2p_bytes = (proc.l2p_entries_used() as u64 * 33).div_ceil(8);
            let cost = cfg.switch_cycles + 2 * cfg.l2p_qword_cycles * l2p_bytes.div_ceil(8);
            switches += 1;
            switch_cycles_total += cost;
            for _ in 0..cfg.time_slice {
                if !proc.step(&cfg.base, &mut mem, &mut tlb, &mut dram) {
                    break;
                }
            }
            any_ran = true;
            peak_pt = peak_pt.max(mem.stats().tag(AllocTag::PageTable).current_bytes);
        }
        if !any_ran {
            break;
        }
    }
    let max_contiguous = mem.stats().tag(AllocTag::PageTable).max_contiguous_bytes;
    peak_pt = peak_pt.max(mem.stats().tag(AllocTag::PageTable).peak_bytes);
    let processes = procs
        .into_iter()
        .map(|p| p.into_report(&cfg.base, &mem))
        .collect();
    MultiReport {
        processes,
        switches,
        switch_cycles: switch_cycles_total,
        peak_pt_bytes: peak_pt,
        max_contiguous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PtKind;
    use mehpt_types::GIB;
    use mehpt_workloads::{App, WorkloadCfg};

    fn wl(app: App) -> Workload {
        app.build(&WorkloadCfg {
            scale: 0.005,
            ..WorkloadCfg::default()
        })
    }

    fn cfg(kind: PtKind) -> MultiConfig {
        let mut base = SimConfig::paper(kind, false);
        base.mem_bytes = 2 * GIB;
        MultiConfig::paper(base)
    }

    #[test]
    fn two_processes_complete_and_account() {
        let r = run_multi(vec![wl(App::Mummer), wl(App::Tc)], cfg(PtKind::MeHpt));
        assert_eq!(r.processes.len(), 2);
        for p in &r.processes {
            assert!(p.aborted.is_none(), "{:?}", p.aborted);
            assert!(p.accesses > 0);
            assert!(p.faults > 0);
        }
        assert!(r.switches >= 2);
        assert!(r.switch_cycles > 0);
        assert!(r.peak_pt_bytes > 0);
        assert!(r.total_cycles() > r.switch_cycles);
    }

    #[test]
    fn multiprogrammed_peak_exceeds_any_single_process() {
        let r = run_multi(
            vec![wl(App::Bfs), wl(App::Pr), wl(App::Cc)],
            cfg(PtKind::MeHpt),
        );
        let max_single = r.processes.iter().map(|p| p.pt_peak_bytes).max().unwrap();
        assert!(
            r.peak_pt_bytes > max_single,
            "combined {} vs single {}",
            r.peak_pt_bytes,
            max_single
        );
    }

    #[test]
    fn mehpt_contiguity_holds_under_multiprogramming() {
        let ecpt = run_multi(vec![wl(App::Bfs), wl(App::Pr)], cfg(PtKind::Ecpt));
        let mehpt = run_multi(vec![wl(App::Bfs), wl(App::Pr)], cfg(PtKind::MeHpt));
        assert!(
            mehpt.max_contiguous <= ecpt.max_contiguous,
            "mehpt {} vs ecpt {}",
            mehpt.max_contiguous,
            ecpt.max_contiguous
        );
    }

    #[test]
    fn deterministic() {
        let a = run_multi(vec![wl(App::Mummer), wl(App::Tc)], cfg(PtKind::Ecpt));
        let b = run_multi(vec![wl(App::Mummer), wl(App::Tc)], cfg(PtKind::Ecpt));
        assert_eq!(a.total_cycles(), b.total_cycles());
        assert_eq!(a.switches, b.switches);
    }
}
