use std::collections::{HashMap, HashSet};

use mehpt_core::MeHpt;
use mehpt_ecpt::{Ecpt, EcptWalker};
use mehpt_hash::ResizeKind;
use mehpt_mem::{AllocTag, Fragmenter, PhysMem};
use mehpt_radix::{RadixPageTable, RadixWalker};
use mehpt_tlb::{MemoryModel, TlbHierarchy};
use mehpt_types::rng::Xoshiro256;
use mehpt_types::{PageSize, Ppn, VirtAddr};
use mehpt_workloads::{Region, Workload};

use crate::{PtKind, SimConfig, SimReport};

/// The page table under simulation, with its hardware walker.
enum Pt {
    Radix {
        table: RadixPageTable,
        walker: RadixWalker,
    },
    Ecpt {
        table: Ecpt,
        walker: EcptWalker,
    },
    MeHpt {
        table: MeHpt,
        walker: EcptWalker,
    },
}

impl Pt {
    /// A timed walk; returns (cycles, memory accesses).
    fn walk(&mut self, va: VirtAddr, dram: &mut MemoryModel) -> (u64, u32) {
        match self {
            Pt::Radix { table, walker } => {
                let r = walker.walk(table, va, dram);
                (r.cycles, r.memory_accesses)
            }
            Pt::Ecpt { table, walker } => {
                let r = walker.walk(table, va, dram);
                (r.cycles, r.memory_accesses)
            }
            Pt::MeHpt { table, walker } => {
                let r = walker.walk(table, va, dram);
                (r.cycles, r.memory_accesses)
            }
        }
    }

    /// Maps a page; returns `(kicks, migrated_entries)` for OS costing.
    ///
    /// The walker's CWC entries mirror the CWT; they only need a shootdown
    /// when the region's page-size *mask* changes (the first mapping of a
    /// size in a region), not on every insert.
    fn map(
        &mut self,
        va: VirtAddr,
        ps: PageSize,
        ppn: Ppn,
        mem: &mut PhysMem,
    ) -> Result<(u32, u32), String> {
        let vpn = va.vpn(ps);
        match self {
            Pt::Radix { table, .. } => table
                .map(vpn, ps, ppn, mem)
                .map(|()| (0, 0))
                .map_err(|e| e.to_string()),
            Pt::Ecpt { table, walker } => {
                let masks = (table.pud_mask(va), table.pmd_mask(va));
                let report = table.map(vpn, ps, ppn, mem).map_err(|e| e.to_string())?;
                if masks != (table.pud_mask(va), table.pmd_mask(va)) {
                    walker.invalidate_region(va);
                }
                Ok((report.kicks, report.migrated))
            }
            Pt::MeHpt { table, walker } => {
                use mehpt_ecpt::HptView;
                let masks = (HptView::pud_mask(table, va), HptView::pmd_mask(table, va));
                let report = table.map(vpn, ps, ppn, mem).map_err(|e| e.to_string())?;
                if masks != (HptView::pud_mask(table, va), HptView::pmd_mask(table, va)) {
                    walker.invalidate_region(va);
                }
                Ok((report.kicks, report.migrated))
            }
        }
    }

    /// Rewrites the PPN of an existing mapping (compaction migrated the
    /// data page).
    fn remap(&mut self, va: VirtAddr, ps: PageSize, ppn: Ppn, mem: &mut PhysMem) {
        let vpn = va.vpn(ps);
        match self {
            Pt::Radix { table, .. } => {
                let ok = table.remap(vpn, ps, ppn);
                debug_assert!(ok, "relocated frame had no mapping");
            }
            Pt::Ecpt { table, .. } => {
                // `map` on an existing VPN updates the translation in place.
                let _ = table.map(vpn, ps, ppn, mem);
            }
            Pt::MeHpt { table, .. } => {
                let _ = table.map(vpn, ps, ppn, mem);
            }
        }
    }

    fn flush_walker(&mut self) {
        match self {
            Pt::Radix { walker, .. } => walker.flush(),
            Pt::Ecpt { walker, .. } | Pt::MeHpt { walker, .. } => walker.flush(),
        }
    }

    fn bytes(&self) -> u64 {
        match self {
            Pt::Radix { table, .. } => table.memory_bytes(),
            Pt::Ecpt { table, .. } => table.memory_bytes(),
            Pt::MeHpt { table, .. } => table.memory_bytes(),
        }
    }
}

#[derive(Default)]
struct Counters {
    accesses: u64,
    total: u64,
    base: u64,
    translation: u64,
    fault: u64,
    alloc: u64,
    os_pt: u64,
    faults: u64,
    pages_4k: u64,
    pages_2m: u64,
    pt_peak: u64,
}

/// One simulated process: its page table, walker, OS bookkeeping and
/// counters. Used directly by [`Simulator::run`] and round-robin by
/// [`run_multi`](crate::run_multi).
pub(crate) struct ProcState {
    workload: Workload,
    pt: Pt,
    regions: Vec<Region>,
    huge_failed: HashSet<u64>,
    /// Owner of each data frame (start frame of the page's block), so
    /// compaction-driven page migrations can be applied to the page table
    /// and TLB.
    frame_owner: HashMap<u64, (VirtAddr, PageSize)>,
    /// The OS's own view of what is mapped, at 4KB and 2MB granularity.
    mapped_4k: HashSet<u64>,
    mapped_2m: HashSet<u64>,
    /// One-entry translation micro-cache (mappings are only ever added in
    /// these traces, so entries never go stale; remaps keep the page size).
    last: Option<(u64, PageSize)>,
    counters: Counters,
    aborted: Option<String>,
    done: bool,
}

impl ProcState {
    pub(crate) fn new(workload: Workload, cfg: &SimConfig, mem: &mut PhysMem) -> ProcState {
        let pt = match cfg.kind {
            PtKind::Radix => Pt::Radix {
                table: RadixPageTable::new(mem).expect("initial radix root"),
                walker: RadixWalker::paper_default(),
            },
            PtKind::Ecpt => Pt::Ecpt {
                table: Ecpt::new(mem).expect("ECPT process state"),
                walker: EcptWalker::paper_default(),
            },
            PtKind::MeHpt => Pt::MeHpt {
                table: MeHpt::with_config(cfg.mehpt.clone(), mem).expect("ME-HPT process state"),
                walker: EcptWalker::paper_default(),
            },
        };
        let regions = workload.regions().to_vec();
        ProcState {
            workload,
            pt,
            regions,
            huge_failed: HashSet::new(),
            frame_owner: HashMap::new(),
            mapped_4k: HashSet::new(),
            mapped_2m: HashSet::new(),
            last: None,
            counters: Counters::default(),
            aborted: None,
            done: false,
        }
    }

    pub(crate) fn finished(&self) -> bool {
        self.done
    }

    pub(crate) fn flush_walker(&mut self) {
        self.pt.flush_walker();
    }

    pub(crate) fn l2p_entries_used(&self) -> usize {
        match &self.pt {
            Pt::MeHpt { table, .. } => table.l2p_entries_used(),
            _ => 0,
        }
    }

    /// Simulates one memory access. Returns `false` when the trace is
    /// exhausted or the run aborted.
    pub(crate) fn step(
        &mut self,
        cfg: &SimConfig,
        mem: &mut PhysMem,
        tlb: &mut TlbHierarchy,
        dram: &mut MemoryModel,
    ) -> bool {
        if self.done {
            return false;
        }
        let Some(va) = self.workload.next() else {
            self.done = true;
            return false;
        };
        let c = &mut self.counters;
        c.accesses += 1;
        c.total += cfg.base_access_cycles;
        c.base += cfg.base_access_cycles;

        let page4k = va.0 >> 12;
        let mapped = match self.last {
            Some((p, ps)) if p == page4k => Some(ps),
            _ if self.mapped_4k.contains(&page4k) => Some(PageSize::Base4K),
            _ if self.mapped_2m.contains(&(va.0 >> 21)) => Some(PageSize::Huge2M),
            _ => None,
        };
        if let Some(ps) = mapped {
            self.last = Some((page4k, ps));
            let out = tlb.lookup(va, ps);
            c.translation += out.cycles();
            c.total += out.cycles();
            if out.is_miss() {
                let (wc, _) = self.pt.walk(va, dram);
                c.translation += wc;
                c.total += wc;
                tlb.fill(va.vpn(ps), ps);
            }
            return true;
        }

        // ---- page fault ----
        c.faults += 1;
        let out = tlb.lookup(va, PageSize::Base4K);
        let (wc, _) = self.pt.walk(va, dram); // the walk that faults
        c.translation += out.cycles() + wc;
        c.total += out.cycles() + wc;
        c.total += cfg.page_fault_cycles;
        c.fault += cfg.page_fault_cycles;

        let alloc_before = mem.stats().total_alloc_cycles();
        let thp_ok = cfg.thp
            && self
                .regions
                .iter()
                .find(|r| r.contains(va))
                .is_some_and(|r| r.thp_eligible);
        let mut chosen: Option<(PageSize, Ppn)> = None;
        if thp_ok && !self.huge_failed.contains(&(va.0 >> 21)) {
            match mem.alloc(PageSize::Huge2M.bytes(), AllocTag::Data) {
                Ok(chunk) => {
                    chosen = Some((
                        PageSize::Huge2M,
                        Ppn(chunk.base().0 >> PageSize::Huge2M.shift()),
                    ));
                }
                Err(_) => {
                    // Fall back to 4KB for this region permanently, like a
                    // failed khugepaged attempt.
                    self.huge_failed.insert(va.0 >> 21);
                }
            }
        }
        if chosen.is_none() {
            match mem.alloc(PageSize::Base4K.bytes(), AllocTag::Data) {
                Ok(chunk) => {
                    chosen = Some((
                        PageSize::Base4K,
                        Ppn(chunk.base().0 >> PageSize::Base4K.shift()),
                    ));
                }
                Err(e) => {
                    self.aborted = Some(format!("data allocation failed: {e}"));
                    self.done = true;
                    return false;
                }
            }
        }
        let (ps, ppn) = chosen.expect("a frame was allocated");
        match self.pt.map(va, ps, ppn, mem) {
            Ok((kicks, migrated)) => {
                let os = cfg.insert_cycles
                    + kicks as u64 * cfg.kick_cycles
                    + migrated as u64 * cfg.migrate_entry_cycles;
                c.os_pt += os;
                c.total += os;
            }
            Err(e) => {
                // The paper's ECPT failure mode: a contiguous way could not
                // be allocated; the run cannot finish.
                self.aborted = Some(format!("page-table insertion failed: {e}"));
                self.done = true;
                return false;
            }
        }
        match ps {
            PageSize::Base4K => {
                c.pages_4k += 1;
                self.mapped_4k.insert(page4k);
            }
            PageSize::Huge2M => {
                c.pages_2m += 1;
                self.mapped_2m.insert(va.0 >> 21);
            }
            PageSize::Giant1G => {}
        }
        self.frame_owner
            .insert((ppn.0 << ps.shift()) >> 12, (va.page_base(ps), ps));
        // Compaction (triggered by this fault's data or page-table
        // allocations) may have migrated data pages: rewrite their
        // translations and shoot down stale TLB entries. The cycle cost of
        // the moves is part of the calibrated allocation cost.
        for (old_frame, new_frame, tag) in mem.take_relocations() {
            if tag != AllocTag::Data {
                continue;
            }
            let Some((page_va, mps)) = self.frame_owner.remove(&old_frame) else {
                continue;
            };
            let new_ppn = Ppn(new_frame >> (mps.shift() - 12));
            self.pt.remap(page_va, mps, new_ppn, mem);
            tlb.invalidate(page_va.vpn(mps), mps);
            self.frame_owner.insert(new_frame, (page_va, mps));
        }
        tlb.fill(va.vpn(ps), ps);
        self.last = Some((page4k, ps));
        let c = &mut self.counters;
        c.alloc += mem.stats().total_alloc_cycles() - alloc_before;
        if c.faults % 4096 == 0 {
            c.pt_peak = c.pt_peak.max(self.pt.bytes());
        }
        true
    }

    /// Assembles the final report. `machine_peak` taints per-process peaks
    /// with the machine-wide page-table high-water mark only in
    /// single-process runs (pass `None` for multiprogrammed runs).
    pub(crate) fn into_report(mut self, cfg: &SimConfig, mem: &PhysMem) -> SimReport {
        // Allocation cycles were accumulated per step; total includes them.
        self.counters.total += 0;
        let c = &self.counters;
        let total = c.total + c.alloc;
        let (walks, mean_walk_cycles, mean_walk_accesses) = match &self.pt {
            Pt::Radix { walker, .. } => {
                (walker.walks(), walker.mean_cycles(), walker.mean_accesses())
            }
            Pt::Ecpt { walker, .. } | Pt::MeHpt { walker, .. } => {
                (walker.walks(), walker.mean_cycles(), walker.mean_accesses())
            }
        };
        let pt_peak = c.pt_peak.max(self.pt.bytes());
        let mut report = SimReport {
            app: self.workload.name().to_string(),
            kind: cfg.kind,
            thp: cfg.thp,
            accesses: c.accesses,
            total_cycles: total,
            base_cycles: c.base,
            translation_cycles: c.translation,
            fault_cycles: c.fault,
            alloc_cycles: c.alloc,
            os_pt_cycles: c.os_pt,
            faults: c.faults,
            pages_4k: c.pages_4k,
            pages_2m: c.pages_2m,
            tlb_miss_rate: 0.0,
            walks,
            mean_walk_accesses,
            mean_walk_cycles,
            pt_final_bytes: self.pt.bytes(),
            pt_peak_bytes: pt_peak,
            pt_max_contiguous: mem.stats().tag(AllocTag::PageTable).max_contiguous_bytes,
            way_sizes_4k: Vec::new(),
            way_phys_4k: Vec::new(),
            upsizes_per_way_4k: Vec::new(),
            upsizes_per_way_2m: Vec::new(),
            moved_fraction_4k: 0.0,
            kicks_histogram: Vec::new(),
            l2p_entries_used: 0,
            chunk_switches: 0,
            data_bytes_nominal: self.workload.nominal_data_bytes(),
            aborted: self.aborted.clone(),
        };
        match &self.pt {
            Pt::Radix { .. } => {}
            Pt::Ecpt { table, .. } => {
                if let Some(t4k) = table.table(PageSize::Base4K) {
                    report.way_sizes_4k = t4k.way_sizes();
                    report.way_phys_4k = t4k.way_sizes(); // contiguous ways
                    report.upsizes_per_way_4k = upsizes_per_way(t4k.resizes(), 3);
                    report.moved_fraction_4k = if t4k.resizes().is_empty() { 0.0 } else { 1.0 };
                }
                if let Some(t2m) = table.table(PageSize::Huge2M) {
                    report.upsizes_per_way_2m = upsizes_per_way(t2m.resizes(), 3);
                }
                for ps in mehpt_types::PAGE_SIZES {
                    if let Some(t) = table.table(ps) {
                        merge_hist(&mut report.kicks_histogram, t.kicks_histogram());
                    }
                }
            }
            Pt::MeHpt { table, .. } => {
                if let Some(t4k) = table.table(PageSize::Base4K) {
                    report.way_sizes_4k = t4k.way_sizes();
                    report.way_phys_4k = t4k.way_phys_bytes();
                    report.upsizes_per_way_4k = upsizes_per_way(&t4k.stats().resizes, 3);
                    report.moved_fraction_4k = moved_fraction(&t4k.stats().resizes);
                }
                if let Some(t2m) = table.table(PageSize::Huge2M) {
                    report.upsizes_per_way_2m = upsizes_per_way(&t2m.stats().resizes, 3);
                }
                for ps in mehpt_types::PAGE_SIZES {
                    if let Some(t) = table.table(ps) {
                        merge_hist(&mut report.kicks_histogram, &t.stats().kicks_histogram);
                    }
                }
                report.l2p_entries_used = table.l2p_entries_used();
                report.chunk_switches = mehpt_types::PAGE_SIZES
                    .iter()
                    .filter_map(|&ps| table.table(ps))
                    .map(|t| t.stats().chunk_switches)
                    .sum();
            }
        }
        report
    }
}

/// The trace-driven simulator. See the crate docs for the model.
#[derive(Debug)]
pub struct Simulator;

impl Simulator {
    /// Runs `workload` to completion (or `cfg.max_accesses`) under `cfg`
    /// and returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics if even the initial page table cannot be allocated (the
    /// configured memory is impossibly small).
    pub fn run(workload: Workload, cfg: SimConfig) -> SimReport {
        let mut mem = PhysMem::new(cfg.mem_bytes);
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        let _ballast = Fragmenter::fragment(&mut mem, cfg.fragmentation, &mut rng);
        let mut tlb = TlbHierarchy::paper_default();
        let mut dram = MemoryModel::paper_default();
        let mut proc = ProcState::new(workload, &cfg, &mut mem);
        let limit = cfg.max_accesses.unwrap_or(u64::MAX);
        while proc.counters.accesses < limit && proc.step(&cfg, &mut mem, &mut tlb, &mut dram) {}
        let mut report = proc.into_report(&cfg, &mem);
        report.tlb_miss_rate = tlb.l2_stats().misses as f64 / report.accesses.max(1) as f64;
        report.pt_peak_bytes = report
            .pt_peak_bytes
            .max(mem.stats().tag(AllocTag::PageTable).peak_bytes);
        report
    }
}

fn merge_hist(into: &mut Vec<u64>, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (dst, &src) in into.iter_mut().zip(from) {
        *dst += src;
    }
}

fn upsizes_per_way(events: &[mehpt_hash::ResizeEvent], ways: usize) -> Vec<u64> {
    let mut counts = vec![0u64; ways];
    for e in events {
        if e.kind == ResizeKind::Upsize {
            counts[e.way] += 1;
        }
    }
    counts
}

/// Mean moved fraction over upsize events (in-place upsizes sit near 0.5;
/// chunk switches and out-of-place events are 1.0).
fn moved_fraction(events: &[mehpt_hash::ResizeEvent]) -> f64 {
    let ups: Vec<f64> = events
        .iter()
        .filter(|e| e.kind == ResizeKind::Upsize && e.moved + e.kept > 0)
        .map(|e| e.moved as f64 / (e.moved + e.kept) as f64)
        .collect();
    if ups.is_empty() {
        return 0.0;
    }
    ups.iter().sum::<f64>() / ups.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mehpt_workloads::{App, WorkloadCfg};

    fn tiny(app: App) -> Workload {
        scaled(app, 0.002)
    }

    fn scaled(app: App, scale: f64) -> Workload {
        app.build(&WorkloadCfg {
            scale,
            ..WorkloadCfg::default()
        })
    }

    fn run(app: App, kind: PtKind, thp: bool) -> SimReport {
        let mut cfg = SimConfig::paper(kind, thp);
        cfg.mem_bytes = 2 * mehpt_types::GIB;
        Simulator::run(tiny(app), cfg)
    }

    #[test]
    fn all_kinds_complete_a_small_run() {
        for kind in [PtKind::Radix, PtKind::Ecpt, PtKind::MeHpt] {
            let r = run(App::Mummer, kind, false);
            assert!(r.aborted.is_none(), "{kind:?}: {:?}", r.aborted);
            assert!(r.accesses > 0);
            assert!(r.total_cycles > r.accesses);
            assert!(r.faults > 0);
            assert_eq!(r.pages_2m, 0, "no THP requested");
        }
    }

    #[test]
    fn thp_maps_huge_pages_for_eligible_regions() {
        let r = run(App::Gups, PtKind::MeHpt, true);
        assert!(r.pages_2m > 0, "GUPS under THP must use huge pages");
        let r2 = run(App::Bfs, PtKind::MeHpt, true);
        assert_eq!(r2.pages_2m, 0, "graph regions are not THP-eligible");
    }

    #[test]
    fn hpt_walks_use_fewer_cycles_than_radix_at_scale() {
        // Needs a footprint that overflows the radix page-walk caches; at
        // toy scale radix's PWC covers everything and wins.
        let run_at = |kind| {
            let mut cfg = SimConfig::paper(kind, false);
            cfg.mem_bytes = 4 * mehpt_types::GIB;
            Simulator::run(scaled(App::Gups, 0.05), cfg)
        };
        let radix = run_at(PtKind::Radix);
        let mehpt = run_at(PtKind::MeHpt);
        assert!(
            mehpt.mean_walk_cycles < radix.mean_walk_cycles,
            "HPT {} vs radix {}",
            mehpt.mean_walk_cycles,
            radix.mean_walk_cycles
        );
        assert!(radix.mean_walk_accesses > 1.5, "radix must chain accesses");
    }

    #[test]
    fn mehpt_contiguity_below_ecpt() {
        let ecpt = run(App::Gups, PtKind::Ecpt, false);
        let mehpt = run(App::Gups, PtKind::MeHpt, false);
        assert!(
            mehpt.pt_max_contiguous < ecpt.pt_max_contiguous,
            "ME-HPT {} vs ECPT {}",
            mehpt.pt_max_contiguous,
            ecpt.pt_max_contiguous
        );
    }

    #[test]
    fn mehpt_peak_memory_below_ecpt() {
        let ecpt = run(App::Bfs, PtKind::Ecpt, false);
        let mehpt = run(App::Bfs, PtKind::MeHpt, false);
        assert!(
            (mehpt.pt_peak_bytes as f64) < 0.95 * ecpt.pt_peak_bytes as f64,
            "ME-HPT {} vs ECPT {}",
            mehpt.pt_peak_bytes,
            ecpt.pt_peak_bytes
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let a = run(App::Pr, PtKind::MeHpt, false);
        let b = run(App::Pr, PtKind::MeHpt, false);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.way_sizes_4k, b.way_sizes_4k);
    }

    #[test]
    fn max_accesses_caps_the_run() {
        let mut cfg = SimConfig::paper(PtKind::Radix, false);
        cfg.mem_bytes = mehpt_types::GIB;
        cfg.max_accesses = Some(1000);
        let r = Simulator::run(tiny(App::Bfs), cfg);
        assert_eq!(r.accesses, 1000);
    }

    #[test]
    fn ecpt_aborts_on_hostile_fragmentation() {
        // Small memory + high fragmentation: the ECPT way doubling cannot
        // find contiguous space, so the run aborts — the paper's FMFI>0.7
        // observation.
        let run_frag = |kind| {
            let mut cfg = SimConfig::paper(kind, false);
            cfg.mem_bytes = 2 * mehpt_types::GIB;
            cfg.fragmentation = 0.99;
            Simulator::run(scaled(App::Gups, 0.1), cfg)
        };
        let ecpt = run_frag(PtKind::Ecpt);
        assert!(
            ecpt.aborted.is_some(),
            "ECPT must abort: {:?}",
            ecpt.aborted
        );
        // ME-HPT survives the same conditions on its small chunks.
        let mehpt = run_frag(PtKind::MeHpt);
        assert!(
            mehpt.aborted.is_none(),
            "ME-HPT must survive: {:?}",
            mehpt.aborted
        );
    }

    #[test]
    fn cycle_components_sum_to_total() {
        let r = run(App::Tc, PtKind::MeHpt, false);
        assert_eq!(
            r.base_cycles + r.translation_cycles + r.fault_cycles + r.alloc_cycles + r.os_pt_cycles,
            r.total_cycles
        );
    }
}
