//! The trace-driven translation simulator.
//!
//! This crate replaces the paper's Simics + SST + DRAMSim2 full-system
//! stack (Section VI) with a trace-driven model that exercises exactly the
//! translation-side behaviour the evaluation measures (see DESIGN.md §3):
//!
//! * every virtual-memory access goes through the two-level TLB hierarchy;
//! * TLB misses trigger a *timed* page walk over the configured page-table
//!   organization — radix with page-walk caches, the ECPT baseline, or
//!   ME-HPT — with page-table memory references travelling through an
//!   L2/L3/DRAM latency model;
//! * page faults run a demand-paging OS model: THP policy, physical-frame
//!   allocation (with the paper's fragmentation-calibrated cost for
//!   page-table chunks), page-table insertion, gradual resize migration and
//!   cuckoo re-insertions — all billed in cycles;
//! * an ECPT run **aborts** when a contiguous way allocation fails, exactly
//!   like the paper's runs at FMFI > 0.7.
//!
//! The output is a [`SimReport`] carrying everything the paper's tables and
//! figures need: cycles (total and per component), page-table memory
//! (final, peak, max contiguous), per-way sizes and upsize counts, L2P
//! usage, kick histograms and moved-entry fractions.
//!
//! # Examples
//!
//! ```
//! use mehpt_sim::{PtKind, SimConfig, Simulator};
//! use mehpt_workloads::{App, WorkloadCfg};
//!
//! let wl = App::Mummer.build(&WorkloadCfg { scale: 0.002, ..WorkloadCfg::default() });
//! let report = Simulator::run(wl, SimConfig::paper(PtKind::MeHpt, false));
//! assert!(report.aborted.is_none());
//! assert!(report.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod multi;
mod report;
mod runner;

pub use config::{PtKind, SimConfig};
pub use multi::{run_multi, MultiConfig, MultiReport};
pub use report::SimReport;
pub use runner::Simulator;

/// Revision counter for the simulator's *model semantics*. Bump it
/// whenever a change makes previously computed results incomparable
/// (cost model, allocation policy, walk timing, RNG derivation).
/// Downstream caches — notably the lab's result journal — key on it, so
/// a bump deterministically invalidates stale results on `--resume`.
pub const MODEL_REVISION: u32 = 1;
