use crate::PtKind;

/// Everything a simulation run measured — the raw material for every table
/// and figure of the paper.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Workload name.
    pub app: String,
    /// Page-table organization simulated.
    pub kind: PtKind,
    /// Whether THP was enabled.
    pub thp: bool,
    /// Accesses simulated.
    pub accesses: u64,
    /// Total cycles (the figure-9 metric).
    pub total_cycles: u64,
    /// Cycles in the fixed per-access base cost.
    pub base_cycles: u64,
    /// Cycles in TLB lookups and page walks.
    pub translation_cycles: u64,
    /// Cycles in OS fault handling (excluding allocation).
    pub fault_cycles: u64,
    /// Cycles in physical-memory allocation (data zeroing + page-table
    /// chunk allocation at the configured fragmentation).
    pub alloc_cycles: u64,
    /// Cycles in page-table maintenance (inserts, kicks, migrations).
    pub os_pt_cycles: u64,
    /// Page faults taken.
    pub faults: u64,
    /// 4KB pages mapped.
    pub pages_4k: u64,
    /// 2MB pages mapped.
    pub pages_2m: u64,
    /// TLB miss rate over all accesses (L2 TLB misses / accesses).
    pub tlb_miss_rate: f64,
    /// Page walks performed.
    pub walks: u64,
    /// Mean memory accesses per walk.
    pub mean_walk_accesses: f64,
    /// Mean walk latency in cycles.
    pub mean_walk_cycles: f64,
    /// Final page-table memory in bytes.
    pub pt_final_bytes: u64,
    /// Peak page-table memory in bytes (Figure 10's input).
    pub pt_peak_bytes: u64,
    /// Largest contiguous page-table allocation (Figure 8 / Table I).
    pub pt_max_contiguous: u64,
    /// Final size of each 4KB-table way in bytes (Figure 12).
    pub way_sizes_4k: Vec<u64>,
    /// Physical bytes backing each 4KB-table way — differs from
    /// `way_sizes_4k` when a way fills only part of a chunk (Figure 15).
    pub way_phys_4k: Vec<u64>,
    /// Upsizes per way of the 4KB table (Figure 11).
    pub upsizes_per_way_4k: Vec<u64>,
    /// Upsizes per way of the 2MB table.
    pub upsizes_per_way_2m: Vec<u64>,
    /// Mean fraction of entries physically moved per 4KB-table upsize
    /// (Figure 13; 1.0 for out-of-place designs).
    pub moved_fraction_4k: f64,
    /// Histogram of cuckoo re-insertions per insert/rehash, all tables
    /// pooled (Figure 16).
    pub kicks_histogram: Vec<u64>,
    /// L2P entries in use at the end (Figure 14; 0 for non-ME-HPT).
    pub l2p_entries_used: usize,
    /// Chunk-size switches performed (ME-HPT only).
    pub chunk_switches: u64,
    /// The workload's nominal data footprint (Table I column 2).
    pub data_bytes_nominal: u64,
    /// Why the run aborted, if it did (ECPT allocation failure).
    pub aborted: Option<String>,
}

impl SimReport {
    /// Speedup of this run over a baseline run of the same workload
    /// (cycles-per-access ratio, robust to aborted baselines).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        let own = self.total_cycles as f64 / self.accesses.max(1) as f64;
        let base = baseline.total_cycles as f64 / baseline.accesses.max(1) as f64;
        base / own
    }

    /// The mean number of cuckoo re-insertions per insert/rehash.
    pub fn mean_kicks(&self) -> f64 {
        let total: u64 = self.kicks_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .kicks_histogram
            .iter()
            .enumerate()
            .map(|(n, &c)| n as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, accesses: u64) -> SimReport {
        SimReport {
            app: "t".into(),
            kind: PtKind::Radix,
            thp: false,
            accesses,
            total_cycles: cycles,
            base_cycles: 0,
            translation_cycles: 0,
            fault_cycles: 0,
            alloc_cycles: 0,
            os_pt_cycles: 0,
            faults: 0,
            pages_4k: 0,
            pages_2m: 0,
            tlb_miss_rate: 0.0,
            walks: 0,
            mean_walk_accesses: 0.0,
            mean_walk_cycles: 0.0,
            pt_final_bytes: 0,
            pt_peak_bytes: 0,
            pt_max_contiguous: 0,
            way_sizes_4k: vec![],
            way_phys_4k: vec![],
            upsizes_per_way_4k: vec![],
            upsizes_per_way_2m: vec![],
            moved_fraction_4k: 0.0,
            kicks_histogram: vec![],
            l2p_entries_used: 0,
            chunk_switches: 0,
            data_bytes_nominal: 0,
            aborted: None,
        }
    }

    #[test]
    fn speedup_normalizes_per_access() {
        let fast = report(100, 10);
        let slow = report(300, 10);
        assert!((fast.speedup_over(&slow) - 3.0).abs() < 1e-9);
        // An aborted baseline with fewer accesses normalizes fairly.
        let aborted = report(150, 5);
        assert!((fast.speedup_over(&aborted) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mean_kicks_weighted() {
        let mut r = report(0, 0);
        r.kicks_histogram = vec![6, 2, 2];
        assert!((r.mean_kicks() - 0.6).abs() < 1e-9);
    }
}
