use mehpt_core::MeHptConfig;
use mehpt_types::GIB;

/// Which page-table organization a run simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PtKind {
    /// x86-64 4-level radix tree with page-walk caches.
    Radix,
    /// The ECPT baseline (contiguous ways, out-of-place all-way resizing).
    Ecpt,
    /// The paper's full ME-HPT design.
    MeHpt,
}

impl PtKind {
    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PtKind::Radix => "Radix",
            PtKind::Ecpt => "ECPT",
            PtKind::MeHpt => "ME-HPT",
        }
    }
}

/// Simulation parameters (Table III plus OS cost constants).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Page-table organization under test.
    pub kind: PtKind,
    /// ME-HPT configuration (used when `kind == PtKind::MeHpt`; the
    /// ablation benchmarks toggle its `in_place`/`per_way` switches).
    pub mehpt: MeHptConfig,
    /// Whether the OS backs THP-eligible regions with 2MB pages.
    pub thp: bool,
    /// Physical memory size (the paper's server has 64GB).
    pub mem_bytes: u64,
    /// Target fragmentation (FMFI at the 2MB order; the paper uses 0.7).
    pub fragmentation: f64,
    /// Non-translation cycles charged per memory access (compute, L1D —
    /// calibrated so overall speedups land in the paper's range).
    pub base_access_cycles: u64,
    /// OS overhead per page fault, excluding allocation and page-table
    /// insertion costs.
    pub page_fault_cycles: u64,
    /// OS cost of one page-table insertion (entry write + bookkeeping).
    pub insert_cycles: u64,
    /// OS cost per cuckoo re-insertion.
    pub kick_cycles: u64,
    /// OS cost per entry migrated by gradual resizing (read + rehash +
    /// write; in-place resizing halves the number of these).
    pub migrate_entry_cycles: u64,
    /// Seed (fragmenter layout, etc.).
    pub seed: u64,
    /// Workload accesses to simulate; `None` runs the full trace.
    pub max_accesses: Option<u64>,
}

impl SimConfig {
    /// The paper's evaluation configuration for one page-table kind.
    pub fn paper(kind: PtKind, thp: bool) -> SimConfig {
        SimConfig {
            kind,
            mehpt: MeHptConfig::default(),
            thp,
            mem_bytes: 64 * GIB,
            fragmentation: 0.7,
            base_access_cycles: 12,
            page_fault_cycles: 700,
            insert_cycles: 150,
            kick_cycles: 120,
            migrate_entry_cycles: 80,
            seed: 0x5eed,
            max_accesses: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(PtKind::Radix.label(), "Radix");
        assert_eq!(PtKind::Ecpt.label(), "ECPT");
        assert_eq!(PtKind::MeHpt.label(), "ME-HPT");
    }

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper(PtKind::Ecpt, true);
        assert_eq!(c.mem_bytes, 64 * GIB);
        assert!((c.fragmentation - 0.7).abs() < 1e-9);
        assert!(c.thp);
    }
}
