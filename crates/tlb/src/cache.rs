/// Hit/miss counters for a cache structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction, or 0 if never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A set-associative cache of 64-bit keys with LRU replacement.
///
/// The building block for every cached hardware structure in the model:
/// TLB arrays, radix page-walk caches, cuckoo-walk caches, and the L2/L3
/// data caches that page-walk memory references travel through. Only
/// presence is tracked (keys, no payloads) — the simulator keeps the actual
/// data in the functional structures, and the cache decides latency.
///
/// # Examples
///
/// ```
/// use mehpt_tlb::SetAssocCache;
///
/// let mut cache = SetAssocCache::new(4, 2);
/// assert!(!cache.access(42));  // cold miss (inserts)
/// assert!(cache.access(42));   // hit
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    /// `sets[s]` is the MRU-ordered list of resident keys (front = MRU).
    sets: Vec<Vec<u64>>,
    ways: usize,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache with `sets` sets of `ways` entries.
    ///
    /// Use `sets = 1` for a fully associative structure. Set selection uses
    /// modulo indexing, so any positive set count works (Table III has
    /// structures like a 12-way 1024-entry TLB whose set count is not a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> SetAssocCache {
        assert!(sets > 0, "cache needs at least one set");
        assert!(ways > 0, "cache needs at least one way");
        SetAssocCache {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            stats: CacheStats::default(),
        }
    }

    /// Creates a fully associative cache of `entries` entries.
    pub fn fully_associative(entries: usize) -> SetAssocCache {
        SetAssocCache::new(1, entries)
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Accesses `key`: returns `true` on hit. On miss the key is inserted,
    /// evicting the set's LRU entry if needed.
    pub fn access(&mut self, key: u64) -> bool {
        let set_idx = (key as usize) % self.sets.len();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&k| k == key) {
            // Move to MRU position.
            let k = set.remove(pos);
            set.insert(0, k);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if set.len() == self.ways {
            set.pop();
        }
        set.insert(0, key);
        false
    }

    /// Probes for `key`: updates recency and hit/miss statistics like
    /// [`SetAssocCache::access`], but does **not** insert on a miss.
    /// TLB semantics: entries enter only via [`SetAssocCache::fill`] after
    /// a successful walk.
    pub fn probe(&mut self, key: u64) -> bool {
        let set_idx = (key as usize) % self.sets.len();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&k| k == key) {
            let k = set.remove(pos);
            set.insert(0, k);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        false
    }

    /// Checks for `key` without updating recency or statistics.
    pub fn contains(&self, key: u64) -> bool {
        let set_idx = (key as usize) % self.sets.len();
        self.sets[set_idx].contains(&key)
    }

    /// Inserts `key` without counting an access (e.g. a fill on the return
    /// path of a walk).
    pub fn fill(&mut self, key: u64) {
        let set_idx = (key as usize) % self.sets.len();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&k| k == key) {
            let k = set.remove(pos);
            set.insert(0, k);
            return;
        }
        if set.len() == self.ways {
            set.pop();
        }
        set.insert(0, key);
    }

    /// Removes `key` if present (e.g. on an unmap/shootdown).
    pub fn invalidate(&mut self, key: u64) {
        let set_idx = (key as usize) % self.sets.len();
        self.sets[set_idx].retain(|&k| k != key);
    }

    /// Empties the cache (e.g. on context switch).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the hit/miss counters (the contents stay).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(1, 4);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(1);
        c.access(2);
        c.access(1); // 1 becomes MRU; 2 is LRU
        c.access(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = SetAssocCache::new(2, 1);
        c.access(0); // set 0
        c.access(1); // set 1
        assert!(c.contains(0));
        assert!(c.contains(1));
        c.access(2); // set 0, evicts 0
        assert!(!c.contains(0));
        assert!(c.contains(1));
    }

    #[test]
    fn fill_does_not_count_access() {
        let mut c = SetAssocCache::new(1, 2);
        c.fill(9);
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.access(9));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(4);
        c.access(5);
        c.invalidate(4);
        assert!(!c.contains(4));
        assert!(c.contains(5));
        c.flush();
        assert!(!c.contains(5));
    }

    #[test]
    fn hit_rate() {
        let mut c = SetAssocCache::new(1, 8);
        c.access(1);
        c.access(1);
        c.access(1);
        c.access(2);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(SetAssocCache::new(16, 4).capacity(), 64);
        assert_eq!(SetAssocCache::fully_associative(32).capacity(), 32);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_set_count_panics() {
        SetAssocCache::new(0, 1);
    }

    #[test]
    fn probe_does_not_insert() {
        let mut c = SetAssocCache::new(1, 4);
        assert!(!c.probe(5));
        assert!(!c.probe(5), "probe must not install the key");
        assert_eq!(c.stats().misses, 2);
        c.fill(5);
        assert!(c.probe(5));
    }

    #[test]
    fn non_power_of_two_sets_work() {
        let mut c = SetAssocCache::new(3, 1);
        c.access(0);
        c.access(1);
        c.access(2);
        assert!(c.contains(0) && c.contains(1) && c.contains(2));
        c.access(3); // maps to set 0, evicts key 0
        assert!(!c.contains(0));
    }
}
