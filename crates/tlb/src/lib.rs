//! MMU-side hardware structures: caches, TLBs and the memory latency model.
//!
//! Everything in Table III of the paper that is not a page table lives here:
//!
//! * [`SetAssocCache`] — a generic set-associative, LRU-replaced cache used
//!   to model page-walk caches (PWC), cuckoo-walk caches (CWC) and TLBs.
//! * [`Tlb`] and [`TlbHierarchy`] — the two-level data TLB with per-page-size
//!   L1 and L2 arrays (64/32/4-entry L1s; 1024/1024/16-entry L2s).
//! * [`MemoryModel`] — the cache/DRAM latency seen by page-walk memory
//!   references: an L2 + shared-L3 model backed by [`SetAssocCache`], with a
//!   200-cycle average round trip to memory.
//!
//! # Examples
//!
//! ```
//! use mehpt_tlb::{TlbHierarchy, TlbOutcome};
//! use mehpt_types::{PageSize, VirtAddr};
//!
//! let mut tlb = TlbHierarchy::paper_default();
//! let va = VirtAddr::new(0x7000_1234);
//! assert!(matches!(tlb.lookup(va, PageSize::Base4K), TlbOutcome::Miss { .. }));
//! tlb.fill(va.vpn(PageSize::Base4K), PageSize::Base4K);
//! assert!(matches!(tlb.lookup(va, PageSize::Base4K), TlbOutcome::L1Hit { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod memmodel;
mod tlb;

pub use cache::{CacheStats, SetAssocCache};
pub use memmodel::{MemoryModel, MemoryModelConfig};
pub use tlb::{Tlb, TlbHierarchy, TlbOutcome};
