use mehpt_types::{PageSize, VirtAddr, Vpn, PAGE_SIZES};

use crate::{CacheStats, SetAssocCache};

/// One TLB array for one page size.
#[derive(Clone, Debug)]
pub struct Tlb {
    cache: SetAssocCache,
    latency: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries, `ways` associativity and
    /// the given access latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds `entries`.
    pub fn new(entries: usize, ways: usize, latency: u64) -> Tlb {
        assert!(ways > 0 && ways <= entries, "need 1 <= ways <= entries");
        Tlb {
            cache: SetAssocCache::new((entries / ways).max(1), ways),
            latency,
        }
    }

    /// Looks up a VPN; hits update recency. Misses do **not** install the
    /// VPN — translations enter only via [`Tlb::fill`] after a walk.
    pub fn lookup(&mut self, vpn: Vpn) -> bool {
        self.cache.probe(vpn.0)
    }

    /// Installs a translation without counting an access.
    pub fn fill(&mut self, vpn: Vpn) {
        self.cache.fill(vpn.0);
    }

    /// Removes a translation (TLB shootdown).
    pub fn invalidate(&mut self, vpn: Vpn) {
        self.cache.invalidate(vpn.0);
    }

    /// Empties the TLB (context switch without ASIDs).
    pub fn flush(&mut self) {
        self.cache.flush();
    }

    /// The access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// The outcome of a TLB hierarchy lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the first-level TLB.
    L1Hit {
        /// Cycles spent (L1 latency).
        cycles: u64,
    },
    /// Missed L1, hit the second-level TLB.
    L2Hit {
        /// Cycles spent (L1 + L2 latency).
        cycles: u64,
    },
    /// Missed both levels; a page walk is required.
    Miss {
        /// Cycles spent searching the TLBs before the walk starts.
        cycles: u64,
    },
}

impl TlbOutcome {
    /// Cycles consumed by the TLB lookup itself.
    pub fn cycles(&self) -> u64 {
        match *self {
            TlbOutcome::L1Hit { cycles }
            | TlbOutcome::L2Hit { cycles }
            | TlbOutcome::Miss { cycles } => cycles,
        }
    }

    /// Whether a page walk is needed.
    pub fn is_miss(&self) -> bool {
        matches!(self, TlbOutcome::Miss { .. })
    }
}

/// The two-level data-TLB hierarchy of Table III.
///
/// Per page size: L1 of 64 (4KB, 4-way), 32 (2MB, 4-way) and 4 (1GB, fully
/// associative) entries at 2 cycles; L2 of 1024 (4KB, 12-way), 1024 (2MB,
/// 12-way) and 16 (1GB, 4-way) entries at 12 cycles.
///
/// # Examples
///
/// ```
/// use mehpt_tlb::TlbHierarchy;
/// use mehpt_types::{PageSize, VirtAddr};
///
/// let mut tlb = TlbHierarchy::paper_default();
/// let va = VirtAddr::new(0x1000_0000);
/// let miss = tlb.lookup(va, PageSize::Huge2M);
/// assert!(miss.is_miss());
/// ```
#[derive(Clone, Debug)]
pub struct TlbHierarchy {
    l1: [Tlb; 3],
    l2: [Tlb; 3],
}

impl TlbHierarchy {
    /// Builds the hierarchy with Table III's geometry.
    pub fn paper_default() -> TlbHierarchy {
        TlbHierarchy {
            l1: [
                Tlb::new(64, 4, 2), // 4KB pages
                Tlb::new(32, 4, 2), // 2MB pages
                Tlb::new(4, 4, 2),  // 1GB pages (effectively full)
            ],
            l2: [
                Tlb::new(1024, 12, 12),
                Tlb::new(1024, 12, 12),
                Tlb::new(16, 4, 12),
            ],
        }
    }

    /// Looks up the translation for `va`, which the OS maps with a page of
    /// size `ps`.
    ///
    /// The L1 arrays for all page sizes are probed in parallel (2 cycles);
    /// on a miss the L2 arrays are probed (12 more cycles).
    pub fn lookup(&mut self, va: VirtAddr, ps: PageSize) -> TlbOutcome {
        let i = ps.index();
        let vpn = va.vpn(ps);
        let l1_cycles = self.l1[i].latency();
        if self.l1[i].lookup(vpn) {
            return TlbOutcome::L1Hit { cycles: l1_cycles };
        }
        let l2_cycles = l1_cycles + self.l2[i].latency();
        if self.l2[i].lookup(vpn) {
            // A hit in L2 also refills L1.
            self.l1[i].fill(vpn);
            return TlbOutcome::L2Hit { cycles: l2_cycles };
        }
        TlbOutcome::Miss { cycles: l2_cycles }
    }

    /// Installs a translation in both levels after a successful walk.
    pub fn fill(&mut self, vpn: Vpn, ps: PageSize) {
        let i = ps.index();
        self.l1[i].fill(vpn);
        self.l2[i].fill(vpn);
    }

    /// Shoots down one translation.
    pub fn invalidate(&mut self, vpn: Vpn, ps: PageSize) {
        let i = ps.index();
        self.l1[i].invalidate(vpn);
        self.l2[i].invalidate(vpn);
    }

    /// Empties the whole hierarchy.
    pub fn flush(&mut self) {
        for i in 0..3 {
            self.l1[i].flush();
            self.l2[i].flush();
        }
    }

    /// Combined L1 hit/miss counters across page sizes.
    pub fn l1_stats(&self) -> CacheStats {
        PAGE_SIZES.iter().fold(CacheStats::default(), |acc, ps| {
            let s = self.l1[ps.index()].stats();
            CacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
            }
        })
    }

    /// Combined L2 hit/miss counters across page sizes.
    pub fn l2_stats(&self) -> CacheStats {
        PAGE_SIZES.iter().fold(CacheStats::default(), |acc, ps| {
            let s = self.l2[ps.index()].stats();
            CacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = TlbHierarchy::paper_default();
        let va = VirtAddr::new(0xdead_b000);
        assert!(t.lookup(va, PageSize::Base4K).is_miss());
        t.fill(va.vpn(PageSize::Base4K), PageSize::Base4K);
        assert_eq!(
            t.lookup(va, PageSize::Base4K),
            TlbOutcome::L1Hit { cycles: 2 }
        );
    }

    #[test]
    fn l2_refills_l1() {
        let mut t = TlbHierarchy::paper_default();
        let base = VirtAddr::new(0);
        // Fill 65 distinct 4KB translations: the 64-entry L1 must evict.
        for i in 0..65u64 {
            let va = base + i * 4096;
            t.fill(va.vpn(PageSize::Base4K), PageSize::Base4K);
        }
        // The oldest VPN should be out of L1 but still in L2.
        let victim = base;
        let out = t.lookup(victim, PageSize::Base4K);
        assert_eq!(out, TlbOutcome::L2Hit { cycles: 14 });
        // And now it is back in L1.
        assert_eq!(
            t.lookup(victim, PageSize::Base4K),
            TlbOutcome::L1Hit { cycles: 2 }
        );
    }

    #[test]
    fn page_sizes_use_separate_arrays() {
        let mut t = TlbHierarchy::paper_default();
        let va = VirtAddr::new(0x4000_0000);
        t.fill(va.vpn(PageSize::Base4K), PageSize::Base4K);
        assert!(t.lookup(va, PageSize::Huge2M).is_miss());
        assert!(!t.lookup(va, PageSize::Base4K).is_miss());
    }

    #[test]
    fn huge_pages_increase_reach() {
        let mut small = TlbHierarchy::paper_default();
        let mut huge = TlbHierarchy::paper_default();
        // Touch 8MB of data one page at a time.
        let mut small_misses = 0;
        let mut huge_misses = 0;
        for pass in 0..2 {
            for off in (0..(8 << 20)).step_by(4096) {
                let va = VirtAddr::new(off);
                if small.lookup(va, PageSize::Base4K).is_miss() {
                    if pass == 1 {
                        small_misses += 1;
                    }
                    small.fill(va.vpn(PageSize::Base4K), PageSize::Base4K);
                }
                if huge.lookup(va, PageSize::Huge2M).is_miss() {
                    if pass == 1 {
                        huge_misses += 1;
                    }
                    huge.fill(va.vpn(PageSize::Huge2M), PageSize::Huge2M);
                }
            }
        }
        // 2048 4KB pages overflow the 1024-entry L2; four 2MB pages do not.
        assert!(small_misses > 0);
        assert_eq!(huge_misses, 0);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = TlbHierarchy::paper_default();
        let va = VirtAddr::new(0x1234_5000);
        t.fill(va.vpn(PageSize::Base4K), PageSize::Base4K);
        t.invalidate(va.vpn(PageSize::Base4K), PageSize::Base4K);
        assert!(t.lookup(va, PageSize::Base4K).is_miss());
        t.fill(va.vpn(PageSize::Base4K), PageSize::Base4K);
        t.flush();
        assert!(t.lookup(va, PageSize::Base4K).is_miss());
    }

    #[test]
    fn stats_aggregate_over_page_sizes() {
        let mut t = TlbHierarchy::paper_default();
        t.lookup(VirtAddr::new(0x1000), PageSize::Base4K);
        t.lookup(VirtAddr::new(0x1000), PageSize::Huge2M);
        assert_eq!(t.l1_stats().misses, 2);
    }

    #[test]
    fn single_tlb_behaves() {
        let mut t = Tlb::new(8, 2, 3);
        let vpn = Vpn(77);
        assert!(!t.lookup(vpn));
        assert!(!t.lookup(vpn), "a miss must not install the translation");
        t.fill(vpn);
        assert!(t.lookup(vpn));
        assert_eq!(t.latency(), 3);
        t.invalidate(vpn);
        assert!(!t.lookup(vpn));
    }
}
