use mehpt_types::PhysAddr;

use crate::{CacheStats, SetAssocCache};

/// Latency and geometry of the cache hierarchy page-walk references travel
/// through.
///
/// Defaults follow Table III: a 512KB 8-way private L2 (16-cycle round
/// trip), a 16MB 16-way shared L3 (56-cycle average round trip), and a
/// 200-cycle average round trip to memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryModelConfig {
    /// Charge every access the flat `mem_latency` instead of simulating
    /// L2/L3 residency.
    ///
    /// This is the default, and the model the paper's framing implies:
    /// Table III gives a 200-cycle *average* round trip to memory, and the
    /// radix-vs-HPT comparison is about dependent-chain depth ("up to four
    /// memory accesses in sequence" vs "only one memory access"). The
    /// dedicated translation caches (PWC for radix, CWC for HPTs) are
    /// modeled separately by the walkers; page-table lines see little reuse
    /// in the data hierarchy of a busy 8-core machine. Set to `false` to
    /// simulate the L2/L3 hierarchy explicitly.
    pub flat: bool,
    /// L2 size in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 round-trip latency in cycles.
    pub l2_latency: u64,
    /// L3 size in bytes.
    pub l3_bytes: u64,
    /// L3 associativity.
    pub l3_ways: usize,
    /// L3 round-trip latency in cycles.
    pub l3_latency: u64,
    /// Memory round-trip latency in cycles.
    pub mem_latency: u64,
}

impl Default for MemoryModelConfig {
    fn default() -> MemoryModelConfig {
        MemoryModelConfig {
            flat: true,
            l2_bytes: 512 << 10,
            l2_ways: 8,
            l2_latency: 16,
            l3_bytes: 16 << 20, // 2MB per core × 8 cores
            l3_ways: 16,
            l3_latency: 56,
            mem_latency: 200,
        }
    }
}

/// The latency seen by a page-walk memory reference.
///
/// Models the L2/L3/DRAM path of Table III for the 64-byte lines that hold
/// page-table entries. (The L1 data cache is omitted: page-table lines
/// compete with application data and rarely survive there; the paper's PWC
/// and CWC structures are the dedicated first-level caches for translation
/// state and are modeled separately by the walkers.)
///
/// # Examples
///
/// ```
/// use mehpt_tlb::MemoryModel;
/// use mehpt_types::PhysAddr;
///
/// let mut mem = MemoryModel::paper_default();
/// assert_eq!(mem.access(PhysAddr::new(0x4000)), 200); // flat by default
///
/// let mut hierarchical = MemoryModel::new(mehpt_tlb::MemoryModelConfig {
///     flat: false,
///     ..Default::default()
/// });
/// let cold = hierarchical.access(PhysAddr::new(0x4000));
/// let warm = hierarchical.access(PhysAddr::new(0x4000));
/// assert!(cold > warm);
/// ```
#[derive(Clone, Debug)]
pub struct MemoryModel {
    l2: SetAssocCache,
    l3: SetAssocCache,
    cfg: MemoryModelConfig,
    accesses: u64,
    total_cycles: u64,
}

impl MemoryModel {
    /// Creates the model with Table III's parameters.
    pub fn paper_default() -> MemoryModel {
        MemoryModel::new(MemoryModelConfig::default())
    }

    /// Creates the model from an explicit configuration.
    pub fn new(cfg: MemoryModelConfig) -> MemoryModel {
        let l2_sets = (cfg.l2_bytes / 64) as usize / cfg.l2_ways;
        let l3_sets = (cfg.l3_bytes / 64) as usize / cfg.l3_ways;
        MemoryModel {
            l2: SetAssocCache::new(l2_sets.next_power_of_two(), cfg.l2_ways),
            l3: SetAssocCache::new(l3_sets.next_power_of_two(), cfg.l3_ways),
            cfg,
            accesses: 0,
            total_cycles: 0,
        }
    }

    /// Performs one 64-byte-line access and returns its round-trip latency
    /// in cycles.
    pub fn access(&mut self, addr: PhysAddr) -> u64 {
        if self.cfg.flat {
            self.accesses += 1;
            self.total_cycles += self.cfg.mem_latency;
            return self.cfg.mem_latency;
        }
        let line = addr.line();
        self.accesses += 1;
        let cycles = if self.l2.access(line) {
            self.cfg.l2_latency
        } else if self.l3.access(line) {
            self.cfg.l3_latency
        } else {
            self.cfg.mem_latency
        };
        self.total_cycles += cycles;
        cycles
    }

    /// The latency the *slowest* of several parallel accesses would see,
    /// updating cache state for all of them.
    ///
    /// HPT lookups probe all W ways in parallel (Section II-B); the walk
    /// latency is the maximum of the individual probes, not their sum.
    pub fn access_parallel(&mut self, addrs: &[PhysAddr]) -> u64 {
        addrs.iter().map(|&a| self.access(a)).max().unwrap_or(0)
    }

    /// Invalidates a line (e.g. the OS rewrote a page-table entry).
    pub fn invalidate(&mut self, addr: PhysAddr) {
        self.l2.invalidate(addr.line());
        self.l3.invalidate(addr.line());
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total cycles across all accesses.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// L2 hit/miss counters.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// L3 hit/miss counters.
    pub fn l3_stats(&self) -> CacheStats {
        self.l3.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchical() -> MemoryModel {
        MemoryModel::new(MemoryModelConfig {
            flat: false,
            ..MemoryModelConfig::default()
        })
    }

    #[test]
    fn flat_default_charges_memory_latency() {
        let mut m = MemoryModel::paper_default();
        let a = PhysAddr::new(0x1000);
        assert_eq!(m.access(a), 200);
        assert_eq!(m.access(a), 200, "flat mode has no warm path");
    }

    #[test]
    fn latencies_follow_hierarchy() {
        let mut m = hierarchical();
        let a = PhysAddr::new(0x1000);
        assert_eq!(m.access(a), 200); // cold: memory
        assert_eq!(m.access(a), 16); // L2 hit
    }

    #[test]
    fn l3_catches_l2_evictions() {
        let cfg = MemoryModelConfig {
            flat: false,
            l2_bytes: 4096, // 64 lines: tiny, evicts fast
            l2_ways: 1,
            ..MemoryModelConfig::default()
        };
        let mut m = MemoryModel::new(cfg);
        let a = PhysAddr::new(0);
        m.access(a); // miss everywhere
                     // Evict from L2 by touching a conflicting line (same set).
        m.access(PhysAddr::new(4096));
        assert_eq!(m.access(a), 56, "L3 should still hold the line");
    }

    #[test]
    fn parallel_access_takes_max() {
        let mut m = hierarchical();
        let warm = PhysAddr::new(0x40);
        m.access(warm);
        let cold = PhysAddr::new(0x9000_0000);
        let lat = m.access_parallel(&[warm, cold]);
        assert_eq!(lat, 200, "slowest probe dominates");
        // Both probes updated cache state.
        assert_eq!(m.access(cold), 16);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let mut m = hierarchical();
        let a = PhysAddr::new(0x2000);
        m.access(a);
        m.invalidate(a);
        assert_eq!(m.access(a), 200);
    }

    #[test]
    fn cycle_accounting_accumulates() {
        let mut m = hierarchical();
        m.access(PhysAddr::new(0));
        m.access(PhysAddr::new(0));
        assert_eq!(m.total_cycles(), 216);
        assert_eq!(m.accesses(), 2);
    }
}
