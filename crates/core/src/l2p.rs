use mehpt_mem::Chunk;
use mehpt_types::PageSize;

/// The Logical-to-Physical (L2P) table: the MMU-resident indirection table
/// that lets an HPT way live in discontiguous physical-memory chunks
/// (Section IV-A).
///
/// Geometry follows Section V-A: 32 entries per (way, page size) subtable,
/// 3 ways × 3 page sizes = 288 entries, ~1.16KB of MMU state. Per way, the
/// three subtables are laid out contiguously (Figure 6): the 4KB subtable
/// grows downward from the top, the 2MB subtable grows upward from the
/// bottom, and the 1GB subtable sits in the middle — so a subtable that
/// needs more than its 32 entries can *steal* the 1GB region (growing to a
/// hard cap of 64 entries), and a displaced 1GB entry in turn steals the
/// most significant entry of the 2MB subtable.
///
/// This type does the slot accounting and holds the chunk pointers; the
/// ways of [`MeHptTable`](crate::MeHptTable) consume it when they grow or
/// shrink. When a subtable cannot claim another entry, the way must switch
/// to the next larger chunk size (Section IV-B).
///
/// # Examples
///
/// ```
/// use mehpt_core::L2pTable;
/// use mehpt_types::PageSize;
///
/// let l2p = L2pTable::paper_default();
/// assert_eq!(l2p.total_entries(), 288);
/// assert_eq!(l2p.capacity_remaining(0, PageSize::Base4K), 64); // 32 + stolen 32
/// ```
#[derive(Clone, Debug)]
pub struct L2pTable {
    /// Entries per subtable before stealing (32 in the paper).
    e: usize,
    /// Per way: owner of each of the `3*e` slots.
    /// Layout: `[0, e)` = 4KB home region, `[e, 2e)` = 1GB home region,
    /// `[2e, 3e)` = 2MB home region.
    owners: Vec<Vec<Option<PageSize>>>,
    /// Per `(way, page size)`: the chunk pointers and their claimed slots,
    /// in logical-chunk order.
    chunks: Vec<Vec<(Chunk, usize)>>,
}

impl L2pTable {
    /// The paper's geometry: 3 ways × 3 page sizes × 32 entries.
    pub fn paper_default() -> L2pTable {
        L2pTable::new(3, 32)
    }

    /// Creates a table with `ways` ways and `entries_per_subtable` entries
    /// per (way, page size) subtable.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(ways: usize, entries_per_subtable: usize) -> L2pTable {
        assert!(ways > 0 && entries_per_subtable > 0);
        L2pTable {
            e: entries_per_subtable,
            owners: (0..ways)
                .map(|_| vec![None; 3 * entries_per_subtable])
                .collect(),
            chunks: (0..ways * 3).map(|_| Vec::new()).collect(),
        }
    }

    /// The number of ways.
    pub fn ways(&self) -> usize {
        self.owners.len()
    }

    /// Total entries across all subtables (the paper's 288).
    pub fn total_entries(&self) -> usize {
        self.owners.len() * 3 * self.e
    }

    /// Entries currently in use across all subtables (Figure 14's metric).
    pub fn used_entries(&self) -> usize {
        self.owners
            .iter()
            .map(|w| w.iter().filter(|s| s.is_some()).count())
            .sum()
    }

    /// High-water mark helper: entries in use for one (way, page size).
    pub fn subtable_len(&self, way: usize, ps: PageSize) -> usize {
        self.chunks[self.key(way, ps)].len()
    }

    /// The chunk pointers of one subtable, in logical order.
    pub fn subtable_chunks(&self, way: usize, ps: PageSize) -> Vec<Chunk> {
        self.chunks[self.key(way, ps)]
            .iter()
            .map(|&(c, _)| c)
            .collect()
    }

    fn key(&self, way: usize, ps: PageSize) -> usize {
        way * 3 + ps.index()
    }

    /// The slot indices a subtable may claim next, in preference order.
    ///
    /// Home region first; then the 1GB region if no 1GB entry occupies it
    /// (4KB scans it upward, 2MB downward); a displaced 1GB subtable claims
    /// the most significant free entry of the 2MB region, then of the 4KB
    /// region.
    fn candidate_slots(&self, way: usize, ps: PageSize) -> Vec<usize> {
        let e = self.e;
        let owners = &self.owners[way];
        let free = |i: usize| owners[i].is_none();
        let middle_has_1g = (e..2 * e).any(|i| owners[i] == Some(PageSize::Giant1G));
        let mut out = Vec::new();
        match ps {
            PageSize::Base4K => {
                out.extend((0..e).filter(|&i| free(i)));
                if !middle_has_1g {
                    out.extend((e..2 * e).filter(|&i| free(i)));
                }
            }
            PageSize::Huge2M => {
                out.extend((2 * e..3 * e).rev().filter(|&i| free(i)));
                if !middle_has_1g {
                    out.extend((e..2 * e).rev().filter(|&i| free(i)));
                }
            }
            PageSize::Giant1G => {
                out.extend((e..2 * e).filter(|&i| free(i)));
                // Displaced: take the most significant entries of the 2MB
                // subtable (Figure 6c), then of the 4KB subtable.
                out.extend((2 * e..3 * e).filter(|&i| free(i)));
                out.extend((0..e).rev().filter(|&i| free(i)));
            }
        }
        out
    }

    /// How many more chunks the subtable can accept right now (capped at
    /// the paper's 2×32 = 64 per subtable).
    pub fn capacity_remaining(&self, way: usize, ps: PageSize) -> usize {
        let hard_cap = 2 * self.e;
        let len = self.subtable_len(way, ps);
        self.candidate_slots(way, ps)
            .len()
            .min(hard_cap.saturating_sub(len))
    }

    /// Registers `chunk` as the next logical chunk of the subtable.
    ///
    /// # Errors
    ///
    /// Returns [`L2pFull`] when the subtable cannot claim another entry —
    /// the signal that the way must switch to a larger chunk size.
    pub fn push_chunk(&mut self, way: usize, ps: PageSize, chunk: Chunk) -> Result<(), L2pFull> {
        if self.capacity_remaining(way, ps) == 0 {
            return Err(L2pFull { way, page_size: ps });
        }
        let slot = self.candidate_slots(way, ps)[0];
        self.owners[way][slot] = Some(ps);
        let key = self.key(way, ps);
        self.chunks[key].push((chunk, slot));
        Ok(())
    }

    /// Removes and returns the last logical chunk of the subtable.
    pub fn pop_chunk(&mut self, way: usize, ps: PageSize) -> Option<Chunk> {
        let key = self.key(way, ps);
        let (chunk, slot) = self.chunks[key].pop()?;
        self.owners[way][slot] = None;
        Some(chunk)
    }

    /// Removes one specific chunk (used when an out-of-place resize
    /// retires the old table's chunks). Returns whether it was present.
    pub fn remove_chunk(&mut self, way: usize, ps: PageSize, chunk: Chunk) -> bool {
        let key = self.key(way, ps);
        if let Some(pos) = self.chunks[key].iter().position(|&(c, _)| c == chunk) {
            let (_, slot) = self.chunks[key].remove(pos);
            self.owners[way][slot] = None;
            return true;
        }
        false
    }

    /// Empties the subtable, returning all its chunks (a chunk-size
    /// switch rehomes the whole way).
    pub fn clear_subtable(&mut self, way: usize, ps: PageSize) -> Vec<Chunk> {
        let key = self.key(way, ps);
        let entries = std::mem::take(&mut self.chunks[key]);
        entries
            .into_iter()
            .map(|(chunk, slot)| {
                self.owners[way][slot] = None;
                chunk
            })
            .collect()
    }

    /// The modeled MMU state size in bytes: 33 bits per entry
    /// (Section V-B: "32 entries × 3 ways × 3 page sizes × 33 bits =
    /// 1.16KB").
    pub fn state_bytes(&self) -> f64 {
        self.total_entries() as f64 * 33.0 / 8.0
    }
}

/// A subtable of the L2P table has no entry left (Section IV-B: time to
/// switch to the next chunk size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2pFull {
    /// The way whose subtable is full.
    pub way: usize,
    /// The page size of the full subtable.
    pub page_size: PageSize,
}

impl core::fmt::Display for L2pFull {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "L2P subtable full for way {} ({} pages)",
            self.way, self.page_size
        )
    }
}

impl std::error::Error for L2pFull {}

#[cfg(test)]
mod tests {
    use super::*;
    use mehpt_mem::{AllocCostModel, AllocTag, PhysMem};
    use mehpt_types::MIB;

    fn chunk(mem: &mut PhysMem) -> Chunk {
        mem.alloc(8192, AllocTag::PageTable).unwrap()
    }

    fn mem() -> PhysMem {
        PhysMem::with_cost_model(64 * MIB, AllocCostModel::zero_cost())
    }

    #[test]
    fn paper_geometry() {
        let l2p = L2pTable::paper_default();
        assert_eq!(l2p.total_entries(), 288);
        assert_eq!(l2p.used_entries(), 0);
        assert!((l2p.state_bytes() - 1188.0).abs() < 1.0); // ≈1.16KB
    }

    #[test]
    fn subtable_grows_to_64_by_stealing_the_1g_region() {
        let mut m = mem();
        let mut l2p = L2pTable::paper_default();
        for i in 0..64 {
            let c = chunk(&mut m);
            l2p.push_chunk(0, PageSize::Base4K, c)
                .unwrap_or_else(|e| panic!("push {i}: {e}"));
        }
        assert_eq!(l2p.subtable_len(0, PageSize::Base4K), 64);
        // The hard cap: entry 65 must be refused.
        let c = chunk(&mut m);
        assert!(l2p.push_chunk(0, PageSize::Base4K, c).is_err());
    }

    #[test]
    fn one_1g_entry_blocks_stealing_the_middle() {
        let mut m = mem();
        let mut l2p = L2pTable::paper_default();
        let c = chunk(&mut m);
        l2p.push_chunk(0, PageSize::Giant1G, c).unwrap();
        // 4KB can now use only its home 32 entries.
        assert_eq!(l2p.capacity_remaining(0, PageSize::Base4K), 32);
        for _ in 0..32 {
            let c = chunk(&mut m);
            l2p.push_chunk(0, PageSize::Base4K, c).unwrap();
        }
        let c = chunk(&mut m);
        assert!(l2p.push_chunk(0, PageSize::Base4K, c).is_err());
    }

    #[test]
    fn displaced_1g_steals_most_significant_2m_entry() {
        let mut m = mem();
        let mut l2p = L2pTable::paper_default();
        // 4KB takes its home region and the whole 1GB region (Figure 6b).
        for _ in 0..64 {
            let c = chunk(&mut m);
            l2p.push_chunk(0, PageSize::Base4K, c).unwrap();
        }
        // Now a 1GB entry is needed (Figure 6c): it must land in the 2MB
        // region's most significant entry.
        let c = chunk(&mut m);
        l2p.push_chunk(0, PageSize::Giant1G, c).unwrap();
        assert_eq!(l2p.subtable_len(0, PageSize::Giant1G), 1);
        // 2MB can still grow from the bottom.
        assert!(l2p.capacity_remaining(0, PageSize::Huge2M) > 0);
    }

    #[test]
    fn both_4k_and_2m_can_share_the_stolen_middle() {
        let mut m = mem();
        let mut l2p = L2pTable::paper_default();
        for _ in 0..40 {
            let c = chunk(&mut m);
            l2p.push_chunk(0, PageSize::Base4K, c).unwrap();
        }
        for _ in 0..40 {
            let c = chunk(&mut m);
            l2p.push_chunk(0, PageSize::Huge2M, c).unwrap();
        }
        assert_eq!(l2p.used_entries(), 80);
        // 32+32+32 = 96 slots in way 0; 80 used, 16 left to share.
        assert_eq!(l2p.capacity_remaining(0, PageSize::Base4K), 16);
    }

    #[test]
    fn pop_and_clear_release_slots() {
        let mut m = mem();
        let mut l2p = L2pTable::paper_default();
        let c1 = chunk(&mut m);
        let c2 = chunk(&mut m);
        l2p.push_chunk(1, PageSize::Huge2M, c1).unwrap();
        l2p.push_chunk(1, PageSize::Huge2M, c2).unwrap();
        assert_eq!(l2p.pop_chunk(1, PageSize::Huge2M), Some(c2));
        assert_eq!(l2p.used_entries(), 1);
        let rest = l2p.clear_subtable(1, PageSize::Huge2M);
        assert_eq!(rest, vec![c1]);
        assert_eq!(l2p.used_entries(), 0);
        assert_eq!(l2p.pop_chunk(1, PageSize::Huge2M), None);
    }

    #[test]
    fn ways_are_independent() {
        let mut m = mem();
        let mut l2p = L2pTable::paper_default();
        for _ in 0..64 {
            let c = chunk(&mut m);
            l2p.push_chunk(0, PageSize::Base4K, c).unwrap();
        }
        assert_eq!(l2p.capacity_remaining(1, PageSize::Base4K), 64);
    }

    #[test]
    fn chunks_keep_logical_order() {
        let mut m = mem();
        let mut l2p = L2pTable::paper_default();
        let c1 = chunk(&mut m);
        let c2 = chunk(&mut m);
        let c3 = chunk(&mut m);
        for c in [c1, c2, c3] {
            l2p.push_chunk(2, PageSize::Base4K, c).unwrap();
        }
        assert_eq!(l2p.subtable_chunks(2, PageSize::Base4K), vec![c1, c2, c3]);
    }
}
