//! ME-HPT: Memory-Efficient Hashed Page Tables — the paper's contribution.
//!
//! This crate implements the four techniques of *Memory-Efficient Hashed
//! Page Tables* (HPCA 2023) on top of the ECPT substrate:
//!
//! 1. **Logical-to-Physical (L2P) table** ([`L2pTable`]) — a small
//!    MMU-resident indirection table (32 entries × 3 ways × 3 page sizes,
//!    ~1.16KB) that breaks each HPT way into discontiguous chunks, with
//!    cross-page-size entry stealing (Figure 6).
//! 2. **Dynamically-changing chunk sizes** ([`ChunkSizePolicy`]) — ways
//!    start with 8KB chunks and switch to 1MB/8MB/64MB chunks only when the
//!    L2P subtable fills, so small and large processes are both
//!    memory-efficient (Figure 3).
//! 3. **In-place resizing** — the new table shares the old table's memory;
//!    upsizing consumes one extra hash-key bit so ≈50% of entries stay put
//!    (Figures 4, 5, 13).
//! 4. **Per-way resizing** — one way grows at a time, with weighted-random
//!    insertion and a 2× balance gate (Figures 11, 12).
//!
//! [`MeHpt`] is the per-process page table; it implements
//! [`HptView`](mehpt_ecpt::HptView), so the ECPT hardware walker times its
//! walks unchanged (the L2P access hides behind the CWC probe,
//! Section V-D).
//!
//! # Examples
//!
//! ```
//! use mehpt_core::{MeHpt, MeHptConfig};
//! use mehpt_mem::{AllocTag, PhysMem};
//! use mehpt_types::{PageSize, Ppn, Vpn, GIB, MIB};
//!
//! let mut mem = PhysMem::new(GIB);
//! let mut hpt = MeHpt::new(&mut mem)?;
//! for i in 0..100_000u64 {
//!     hpt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut mem)?;
//! }
//! // The table grew to megabytes, yet no allocation exceeded one 1MB chunk.
//! assert!(hpt.memory_bytes() > 4 * MIB);
//! assert_eq!(mem.stats().tag(AllocTag::PageTable).max_contiguous_bytes, MIB);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunk;
mod l2p;
mod process;
mod table;

pub use chunk::ChunkSizePolicy;
pub use l2p::{L2pFull, L2pTable};
pub use process::MeHpt;
pub use table::{MeHptConfig, MeHptStats, MeHptTable};
