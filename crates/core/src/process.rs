use mehpt_ecpt::{CwtSet, HptView, InsertReport};
use mehpt_mem::{AllocError, PhysMem};
use mehpt_types::{PageSize, PhysAddr, Ppn, VirtAddr, Vpn, PAGE_SIZES};

use crate::l2p::L2pTable;
use crate::table::{MeHptConfig, MeHptTable};

/// A process's complete ME-HPT: one chunked elastic cuckoo table per page
/// size, the shared [`L2pTable`], and the Cuckoo Walk Tables.
///
/// This is the paper's full design. Compared to the ECPT baseline
/// ([`mehpt_ecpt::Ecpt`]) it:
///
/// * never allocates more contiguous memory than one chunk (8KB or 1MB for
///   all of the paper's workloads — Figure 8);
/// * uses `max(old, new)` memory during resizes instead of `old + new`
///   (in-place resizing — Figure 10);
/// * grows one way at a time (per-way resizing — Figures 11/12);
/// * keeps lookups at W parallel probes, with the L2P access hidden behind
///   the CWC probe (Section V-D), so the same
///   [`EcptWalker`](mehpt_ecpt::EcptWalker) hardware model is used.
///
/// # Examples
///
/// ```
/// use mehpt_core::MeHpt;
/// use mehpt_mem::PhysMem;
/// use mehpt_types::{PageSize, Ppn, VirtAddr, MIB};
///
/// let mut mem = PhysMem::new(64 * MIB);
/// let mut hpt = MeHpt::new(&mut mem)?;
/// let va = VirtAddr::new(0x7000_3000);
/// hpt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(11), &mut mem)?;
/// assert_eq!(hpt.translate(va), Some((Ppn(11), PageSize::Base4K)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct MeHpt {
    /// Per-page-size tables, created lazily on the first mapping of that
    /// size. An unused page size consumes no chunks and — crucially — no
    /// L2P entries, which is what lets a 4KB subtable steal the whole 1GB
    /// region and reach 64 entries (Section V-A; GUPS's 192 entries in
    /// Figure 14).
    tables: Vec<Option<MeHptTable>>,
    cfg: MeHptConfig,
    l2p: L2pTable,
    cwt: CwtSet,
}

impl MeHpt {
    /// Creates the full design with the paper's default configuration.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure of the initial chunks.
    pub fn new(mem: &mut PhysMem) -> Result<MeHpt, AllocError> {
        MeHpt::with_config(MeHptConfig::default(), mem)
    }

    /// Creates the design from an explicit configuration (ablation modes,
    /// custom chunk ladders, etc.).
    ///
    /// # Errors
    ///
    /// Propagates allocation failure of the initial chunks.
    pub fn with_config(cfg: MeHptConfig, mem: &mut PhysMem) -> Result<MeHpt, AllocError> {
        let _ = mem;
        let l2p = L2pTable::new(cfg.ways, cfg.l2p_entries_per_subtable);
        Ok(MeHpt {
            tables: vec![None, None, None],
            cfg,
            l2p,
            cwt: CwtSet::new(),
        })
    }

    /// The table for one page size, if any page of that size was ever
    /// mapped.
    pub fn table(&self, ps: PageSize) -> Option<&MeHptTable> {
        self.tables[ps.index()].as_ref()
    }

    /// Returns the table for `ps`, creating it (one 8KB chunk per way) on
    /// first use.
    fn table_mut(
        &mut self,
        ps: PageSize,
        mem: &mut PhysMem,
    ) -> Result<&mut MeHptTable, AllocError> {
        if self.tables[ps.index()].is_none() {
            let table_cfg = MeHptConfig {
                seed: self.cfg.seed.wrapping_add(ps.index() as u64 * 0x9e37_79b9),
                ..self.cfg.clone()
            };
            let t = MeHptTable::new(ps, table_cfg, mem, &mut self.l2p)?;
            self.tables[ps.index()] = Some(t);
        }
        Ok(self.tables[ps.index()].as_mut().expect("just created"))
    }

    /// The L2P table (for inspection: entry usage, Figure 14).
    pub fn l2p(&self) -> &L2pTable {
        &self.l2p
    }

    /// Maps `vpn` (of size `ps`) to `ppn`.
    ///
    /// # Errors
    ///
    /// Fails only if a chunk allocation fails.
    pub fn map(
        &mut self,
        vpn: Vpn,
        ps: PageSize,
        ppn: Ppn,
        mem: &mut PhysMem,
    ) -> Result<InsertReport, AllocError> {
        self.table_mut(ps, mem)?;
        let l2p = &mut self.l2p;
        let report = self.tables[ps.index()]
            .as_mut()
            .expect("created above")
            .insert(vpn, ppn, mem, l2p)?;
        self.cwt.note_map(vpn, ps);
        Ok(report)
    }

    /// Unmaps `vpn` (of size `ps`), returning the previous translation.
    pub fn unmap(&mut self, vpn: Vpn, ps: PageSize, mem: &mut PhysMem) -> Option<Ppn> {
        let l2p = &mut self.l2p;
        let ppn = self.tables[ps.index()].as_mut()?.remove(vpn, mem, l2p)?;
        self.cwt.note_unmap(vpn, ps);
        Some(ppn)
    }

    /// Functional translation (no timing).
    pub fn translate(&self, va: VirtAddr) -> Option<(Ppn, PageSize)> {
        for ps in PAGE_SIZES.iter().rev() {
            if let Some(table) = &self.tables[ps.index()] {
                if let Some(ppn) = table.lookup(va.vpn(*ps)) {
                    return Some((ppn, *ps));
                }
            }
        }
        None
    }

    /// Total mapped pages.
    pub fn pages(&self) -> u64 {
        self.tables.iter().flatten().map(MeHptTable::pages).sum()
    }

    /// Total page-table memory (tables + CWT entries at 8B each).
    pub fn memory_bytes(&self) -> u64 {
        let tables: u64 = self
            .tables
            .iter()
            .flatten()
            .map(MeHptTable::memory_bytes)
            .sum();
        tables + 8 * self.cwt.entries() as u64
    }

    /// The largest chunk any table ever allocated — ME-HPT's contiguity
    /// requirement (Figure 8's metric).
    pub fn max_chunk_bytes(&self) -> u64 {
        self.tables
            .iter()
            .flatten()
            .map(|t| t.stats().max_chunk_bytes)
            .max()
            .unwrap_or(0)
    }

    /// L2P entries currently in use (Figure 14's metric).
    pub fn l2p_entries_used(&self) -> usize {
        self.l2p.used_entries()
    }

    /// Releases all physical memory.
    pub fn destroy(mut self, mem: &mut PhysMem) {
        for t in self.tables.drain(..).flatten() {
            t.destroy(mem, &mut self.l2p);
        }
    }
}

impl HptView for MeHpt {
    fn pud_mask(&self, va: VirtAddr) -> Option<u8> {
        self.cwt.pud_mask(va)
    }

    fn pmd_mask(&self, va: VirtAddr) -> Option<u8> {
        self.cwt.pmd_mask(va)
    }

    fn probe_addrs(&self, ps: PageSize, vpn: Vpn) -> Vec<PhysAddr> {
        self.tables[ps.index()]
            .as_ref()
            .map(|t| t.probe_addrs(vpn))
            .unwrap_or_default()
    }

    fn translate(&self, va: VirtAddr) -> Option<(Ppn, PageSize)> {
        MeHpt::translate(self, va)
    }
}
