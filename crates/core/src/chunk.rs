use mehpt_ecpt::ClusterEntry;
use mehpt_types::{ByteSize, KIB, MIB};

/// The ladder of chunk sizes a way climbs as it grows (Section IV-B, V-B).
///
/// The paper chooses 8KB, 1MB, 8MB and 64MB — "although, for our
/// applications, we only need 8KB and 1MB chunks". A way starts at the
/// smallest size; when its L2P subtable runs out of entries, it switches to
/// the next size (the only out-of-place resize in ME-HPT).
///
/// # Examples
///
/// ```
/// use mehpt_core::ChunkSizePolicy;
///
/// let policy = ChunkSizePolicy::paper_default();
/// assert_eq!(policy.first(), 8 * 1024);
/// assert_eq!(policy.next(8 * 1024), Some(1024 * 1024));
/// assert_eq!(policy.next(64 * 1024 * 1024), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkSizePolicy {
    sizes: Vec<u64>,
}

impl ChunkSizePolicy {
    /// The paper's ladder: 8KB → 1MB → 8MB → 64MB.
    pub fn paper_default() -> ChunkSizePolicy {
        ChunkSizePolicy::new(vec![8 * KIB, MIB, 8 * MIB, 64 * MIB])
    }

    /// A single-size policy (e.g. 1MB only, the `ME-HPT 1MB` variant of
    /// Figure 15).
    pub fn fixed(bytes: u64) -> ChunkSizePolicy {
        ChunkSizePolicy::new(vec![bytes])
    }

    /// Creates a policy from an ascending list of power-of-two sizes.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, unsorted, or contains a size that is
    /// not a power of two of at least 8KB.
    pub fn new(sizes: Vec<u64>) -> ChunkSizePolicy {
        assert!(!sizes.is_empty(), "need at least one chunk size");
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "chunk sizes must be strictly ascending");
        }
        for &s in &sizes {
            assert!(
                s.is_power_of_two() && s >= 8 * KIB,
                "chunk size must be a power of two of at least 8KB, got {}",
                ByteSize(s)
            );
        }
        ChunkSizePolicy { sizes }
    }

    /// The smallest chunk size — every way starts here.
    pub fn first(&self) -> u64 {
        self.sizes[0]
    }

    /// The next larger size after `current`, or `None` at the top.
    pub fn next(&self, current: u64) -> Option<u64> {
        self.sizes.iter().copied().find(|&s| s > current)
    }

    /// All sizes, ascending.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Cluster entries that fit one chunk of `bytes`.
    pub fn entries_per_chunk(bytes: u64) -> usize {
        (bytes / ClusterEntry::BYTES) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder() {
        let p = ChunkSizePolicy::paper_default();
        assert_eq!(p.sizes(), &[8 * KIB, MIB, 8 * MIB, 64 * MIB]);
        assert_eq!(p.next(MIB), Some(8 * MIB));
    }

    #[test]
    fn entries_per_chunk_matches_figure_3() {
        // An 8KB chunk holds 128 cache-line entries; 64 of them form a
        // 512KB way (Table II row 1).
        assert_eq!(ChunkSizePolicy::entries_per_chunk(8 * KIB), 128);
        assert_eq!(64 * 8 * KIB, 512 * KIB);
        assert_eq!(ChunkSizePolicy::entries_per_chunk(MIB), 16384);
    }

    #[test]
    fn fixed_policy_has_no_next() {
        let p = ChunkSizePolicy::fixed(MIB);
        assert_eq!(p.first(), MIB);
        assert_eq!(p.next(MIB), None);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_rejected() {
        ChunkSizePolicy::new(vec![MIB, 8 * KIB]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        ChunkSizePolicy::new(vec![12 * KIB]);
    }
}
