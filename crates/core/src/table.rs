use std::mem;

use mehpt_ecpt::{ClusterEntry, InsertReport};
use mehpt_hash::{HashFamily, ResizeEvent, ResizeKind};
use mehpt_mem::{AllocError, AllocTag, Chunk, PhysMem};
use mehpt_types::rng::Xoshiro256;
use mehpt_types::{PageSize, PhysAddr, Ppn, Vpn};

use crate::chunk::ChunkSizePolicy;
use crate::l2p::L2pTable;

/// Configuration of a [`MeHptTable`].
///
/// The defaults are the full ME-HPT design of the paper (Table III plus all
/// four techniques). The `in_place` and `per_way` switches exist for the
/// ablation experiments of Figure 10: turning one off reverts that
/// dimension to the ECPT baseline behaviour while keeping chunked storage.
#[derive(Clone, Debug, PartialEq)]
pub struct MeHptConfig {
    /// Number of cuckoo ways.
    pub ways: usize,
    /// Initial (and minimum) entries per way; a power of two
    /// (128 × 64B = the paper's 8KB starting way).
    pub initial_entries_per_way: usize,
    /// Occupancy fraction that triggers an upsize.
    pub upsize_threshold: f64,
    /// Occupancy fraction that triggers a downsize.
    pub downsize_threshold: f64,
    /// Entries migrated from each resizing way per insert.
    pub migrate_per_insert: usize,
    /// Cuckoo kicks before an insert forces an upsize.
    pub max_kicks: usize,
    /// In-place resizing (Section IV-C). Off = out-of-place (baseline).
    pub in_place: bool,
    /// Per-way resizing with weighted insertion (Section IV-D). Off =
    /// all-way resizing (baseline).
    pub per_way: bool,
    /// The chunk-size ladder (Section IV-B).
    pub chunk_policy: ChunkSizePolicy,
    /// L2P entries per (way, page size) subtable (32 in the paper).
    pub l2p_entries_per_subtable: usize,
    /// Seed for hash functions and way choice.
    pub seed: u64,
}

impl Default for MeHptConfig {
    fn default() -> MeHptConfig {
        MeHptConfig {
            ways: 3,
            initial_entries_per_way: 128,
            upsize_threshold: 0.6,
            downsize_threshold: 0.2,
            migrate_per_insert: 2,
            max_kicks: 128,
            in_place: true,
            per_way: true,
            chunk_policy: ChunkSizePolicy::paper_default(),
            l2p_entries_per_subtable: 32,
            seed: 0x3e_87,
        }
    }
}

/// Statistics of one [`MeHptTable`].
#[derive(Clone, Debug, Default)]
pub struct MeHptStats {
    /// Completed resize events (Figures 11 and 13 derive from these).
    pub resizes: Vec<ResizeEvent>,
    /// Histogram of cuckoo re-insertions per insert or rehash (Figure 16).
    pub kicks_histogram: Vec<u64>,
    /// Entries migrated by gradual resizing.
    pub entries_migrated: u64,
    /// Chunk-size switches performed (the only out-of-place resizes in the
    /// full design; the paper observes at most one per run).
    pub chunk_switches: u64,
    /// High-water mark of table memory in bytes.
    pub peak_bytes: u64,
    /// The largest chunk ever allocated — the contiguity requirement
    /// (Figure 8).
    pub max_chunk_bytes: u64,
}

impl MeHptStats {
    fn record_kicks(&mut self, kicks: usize) {
        if self.kicks_histogram.len() <= kicks {
            self.kicks_histogram.resize(kicks + 1, 0);
        }
        self.kicks_histogram[kicks] += 1;
    }
}

/// One way's physical storage: a flat logical array of cluster entries
/// scattered over discontiguous chunks.
#[derive(Debug)]
struct Storage {
    slots: Vec<Option<ClusterEntry>>,
    chunks: Vec<Chunk>,
    chunk_bytes: u64,
}

impl Storage {
    fn epc(&self) -> usize {
        ChunkSizePolicy::entries_per_chunk(self.chunk_bytes)
    }

    /// Chunks needed to back `len` entries at `chunk_bytes` granularity.
    fn chunks_for(len: usize, chunk_bytes: u64) -> usize {
        let epc = ChunkSizePolicy::entries_per_chunk(chunk_bytes);
        len.div_ceil(epc).max(1)
    }

    /// The physical address of logical entry `idx` — the L2P translation:
    /// chunk `idx / entries_per_chunk`, offset `idx % entries_per_chunk`.
    fn addr(&self, idx: usize) -> PhysAddr {
        let epc = self.epc();
        self.chunks[idx / epc].addr((idx % epc) as u64 * ClusterEntry::BYTES)
    }

    fn bytes(&self) -> u64 {
        self.chunks.iter().map(Chunk::bytes).sum()
    }
}

#[derive(Clone, Copy, Debug)]
struct Resize {
    old_len: usize,
    rehash_ptr: usize,
    kind: ResizeKind,
    in_place: bool,
    moved: u64,
    kept: u64,
}

#[derive(Debug)]
struct Way {
    storage: Storage,
    /// Old table during an out-of-place (ablation-mode) resize.
    old_storage: Option<Storage>,
    logical_len: usize,
    resize: Option<Resize>,
    occupied: usize,
}

impl Way {
    /// Resolves a hash value to `(in_old_storage, index)`.
    fn locate(&self, h: u64) -> (bool, usize) {
        match &self.resize {
            Some(r) => {
                let old_idx = h as usize & (r.old_len - 1);
                if old_idx >= r.rehash_ptr {
                    (!r.in_place, old_idx)
                } else {
                    (false, h as usize & (self.logical_len - 1))
                }
            }
            None => (false, h as usize & (self.logical_len - 1)),
        }
    }

    fn slot_mut(&mut self, in_old: bool, idx: usize) -> &mut Option<ClusterEntry> {
        if in_old {
            &mut self.old_storage.as_mut().unwrap().slots[idx]
        } else {
            &mut self.storage.slots[idx]
        }
    }

    fn slot(&self, in_old: bool, idx: usize) -> &Option<ClusterEntry> {
        if in_old {
            &self.old_storage.as_ref().unwrap().slots[idx]
        } else {
            &self.storage.slots[idx]
        }
    }

    fn addr(&self, in_old: bool, idx: usize) -> PhysAddr {
        if in_old {
            self.old_storage.as_ref().unwrap().addr(idx)
        } else {
            self.storage.addr(idx)
        }
    }

    fn bytes(&self) -> u64 {
        self.storage.bytes() + self.old_storage.as_ref().map(Storage::bytes).unwrap_or(0)
    }

    fn is_resizing(&self) -> bool {
        self.resize.is_some()
    }
}

/// The ME-HPT elastic cuckoo page table for one page size.
///
/// Combines all four techniques of the paper:
///
/// * ways are collections of discontiguous **chunks** indexed through the
///   [`L2pTable`] (Section IV-A);
/// * chunk sizes **grow dynamically** (8KB → 1MB → …) when the L2P
///   subtable fills — the only out-of-place resize (Section IV-B);
/// * ordinary resizes are **in place**: upsizing appends chunks and
///   consumes one extra hash-key bit, so ≈half the migrated entries never
///   move (Section IV-C);
/// * **per-way resizing** grows one way at a time, with weighted-random
///   insertion and a 2× balance gate (Section IV-D).
pub struct MeHptTable {
    ways: Vec<Way>,
    family: HashFamily,
    cfg: MeHptConfig,
    rng: Xoshiro256,
    ps: PageSize,
    clusters: usize,
    pages: u64,
    stats: MeHptStats,
}

impl std::fmt::Debug for MeHptTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeHptTable")
            .field("page_size", &self.ps)
            .field("pages", &self.pages)
            .field("clusters", &self.clusters)
            .field("way_sizes", &self.way_sizes())
            .finish_non_exhaustive()
    }
}

impl MeHptTable {
    /// Creates a table for `ps` pages, allocating the initial chunks and
    /// registering them in `l2p`.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure of the initial chunks.
    pub fn new(
        ps: PageSize,
        cfg: MeHptConfig,
        mem: &mut PhysMem,
        l2p: &mut L2pTable,
    ) -> Result<MeHptTable, AllocError> {
        assert!(cfg.ways >= 2, "cuckoo hashing needs at least 2 ways");
        assert!(
            cfg.initial_entries_per_way.is_power_of_two(),
            "way sizes must be powers of two"
        );
        assert_eq!(
            l2p.ways(),
            cfg.ways,
            "the L2P table must have one column per way"
        );
        let chunk_bytes = cfg.chunk_policy.first();
        let n_chunks = Storage::chunks_for(cfg.initial_entries_per_way, chunk_bytes);
        let mut ways: Vec<Way> = Vec::with_capacity(cfg.ways);
        let rollback = |ways: Vec<Way>, mem: &mut PhysMem, l2p: &mut L2pTable| {
            for (w, way) in ways.into_iter().enumerate() {
                for c in way.storage.chunks {
                    l2p.remove_chunk(w, ps, c);
                    mem.free(c);
                }
            }
        };
        for w in 0..cfg.ways {
            let mut chunks = Vec::with_capacity(n_chunks);
            for _ in 0..n_chunks {
                match mem.alloc(chunk_bytes, AllocTag::PageTable) {
                    Ok(c) => {
                        l2p.push_chunk(w, ps, c).expect("fresh L2P cannot be full");
                        chunks.push(c);
                    }
                    Err(e) => {
                        for c in chunks {
                            l2p.remove_chunk(w, ps, c);
                            mem.free(c);
                        }
                        rollback(ways, mem, l2p);
                        return Err(e);
                    }
                }
            }
            ways.push(Way {
                storage: Storage {
                    slots: (0..cfg.initial_entries_per_way).map(|_| None).collect(),
                    chunks,
                    chunk_bytes,
                },
                old_storage: None,
                logical_len: cfg.initial_entries_per_way,
                resize: None,
                occupied: 0,
            });
        }
        let family = HashFamily::new(cfg.ways, cfg.seed ^ ps.index() as u64);
        let rng = Xoshiro256::seed_from_u64(cfg.seed ^ 0xfeed_f00d ^ (ps.index() as u64) << 32);
        let mut table = MeHptTable {
            ways,
            family,
            cfg,
            rng,
            ps,
            clusters: 0,
            pages: 0,
            stats: MeHptStats::default(),
        };
        table.stats.max_chunk_bytes = chunk_bytes;
        table.note_bytes();
        Ok(table)
    }

    /// The page size this table translates.
    pub fn page_size(&self) -> PageSize {
        self.ps
    }

    /// The number of valid translations (pages) stored.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// The number of occupied cluster entries.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Logical capacity in cluster entries.
    pub fn capacity(&self) -> usize {
        self.ways.iter().map(|w| w.logical_len).sum()
    }

    /// The logical size of each way in bytes (entries × 64B) — Figure 12.
    pub fn way_sizes(&self) -> Vec<u64> {
        self.ways
            .iter()
            .map(|w| w.logical_len as u64 * ClusterEntry::BYTES)
            .collect()
    }

    /// The physical bytes backing each way (whole chunks, even when the
    /// way only fills part of one — Figure 15's metric).
    pub fn way_phys_bytes(&self) -> Vec<u64> {
        self.ways.iter().map(|w| w.storage.bytes()).collect()
    }

    /// The chunk size each way currently uses.
    pub fn way_chunk_bytes(&self) -> Vec<u64> {
        self.ways.iter().map(|w| w.storage.chunk_bytes).collect()
    }

    /// Physical memory currently held (all chunks, both tables during an
    /// out-of-place resize).
    pub fn memory_bytes(&self) -> u64 {
        self.ways.iter().map(Way::bytes).sum()
    }

    /// Whether any way is mid-resize.
    pub fn is_resizing(&self) -> bool {
        self.ways.iter().any(Way::is_resizing)
    }

    /// Collected statistics.
    pub fn stats(&self) -> &MeHptStats {
        &self.stats
    }

    /// Functional lookup (no timing).
    pub fn lookup(&self, vpn: Vpn) -> Option<Ppn> {
        let tag = ClusterEntry::tag_of(vpn);
        for w in 0..self.ways.len() {
            let h = self.family.hash(w, &tag);
            let (in_old, idx) = self.ways[w].locate(h);
            if let Some(cluster) = self.ways[w].slot(in_old, idx) {
                if cluster.tag() == tag {
                    return cluster.get(vpn);
                }
            }
        }
        None
    }

    /// The W physical addresses a walker probes for `vpn`. The L2P lookup
    /// that produces these addresses costs ~4 cycles in hardware and is
    /// hidden behind the CWC access (Section V-D).
    pub fn probe_addrs(&self, vpn: Vpn) -> Vec<PhysAddr> {
        let tag = ClusterEntry::tag_of(vpn);
        (0..self.ways.len())
            .map(|w| {
                let h = self.family.hash(w, &tag);
                let (in_old, idx) = self.ways[w].locate(h);
                self.ways[w].addr(in_old, idx)
            })
            .collect()
    }

    /// Inserts (or updates) the translation `vpn → ppn`.
    ///
    /// # Errors
    ///
    /// Fails only if a chunk allocation fails — with the default 8KB/1MB
    /// chunks this effectively never happens, which is the point of the
    /// design.
    pub fn insert(
        &mut self,
        vpn: Vpn,
        ppn: Ppn,
        mem: &mut PhysMem,
        l2p: &mut L2pTable,
    ) -> Result<InsertReport, AllocError> {
        let mut report = InsertReport::default();
        let tag = ClusterEntry::tag_of(vpn);
        for w in 0..self.ways.len() {
            let h = self.family.hash(w, &tag);
            let (in_old, idx) = self.ways[w].locate(h);
            if let Some(cluster) = self.ways[w].slot_mut(in_old, idx).as_mut() {
                if cluster.tag() == tag {
                    if cluster.set(vpn, ppn).is_none() {
                        self.pages += 1;
                    }
                    return Ok(report);
                }
            }
        }
        report.started_resize = self.maybe_resize(mem, l2p)?;
        report.migrated = self.migration_step(mem, l2p);
        let way = self.choose_insert_way();
        let mut cluster = ClusterEntry::new(tag);
        cluster.set(vpn, ppn);
        report.kicks = self.place(way, cluster, mem, l2p)? as u32;
        self.clusters += 1;
        self.pages += 1;
        self.stats.record_kicks(report.kicks as usize);
        self.note_bytes();
        Ok(report)
    }

    /// Removes the translation for `vpn`, returning it. A downsize may be
    /// triggered; allocation failures during downsizing are silently
    /// deferred.
    pub fn remove(&mut self, vpn: Vpn, mem: &mut PhysMem, l2p: &mut L2pTable) -> Option<Ppn> {
        let tag = ClusterEntry::tag_of(vpn);
        for w in 0..self.ways.len() {
            let h = self.family.hash(w, &tag);
            let (in_old, idx) = self.ways[w].locate(h);
            let slot = self.ways[w].slot_mut(in_old, idx);
            if let Some(cluster) = slot.as_mut() {
                if cluster.tag() == tag {
                    let ppn = cluster.clear(vpn)?;
                    self.pages -= 1;
                    if cluster.is_empty() {
                        *slot = None;
                        self.ways[w].occupied -= 1;
                        self.clusters -= 1;
                    }
                    let _ = self.maybe_resize(mem, l2p);
                    self.migration_step(mem, l2p);
                    return Some(ppn);
                }
            }
        }
        None
    }

    /// Releases all physical memory and L2P entries.
    pub fn destroy(mut self, mem: &mut PhysMem, l2p: &mut L2pTable) {
        for (w, way) in self.ways.drain(..).enumerate() {
            for c in way.storage.chunks {
                l2p.remove_chunk(w, self.ps, c);
                mem.free(c);
            }
            if let Some(old) = way.old_storage {
                for c in old.chunks {
                    l2p.remove_chunk(w, self.ps, c);
                    mem.free(c);
                }
            }
        }
    }

    // ---- internals ----

    fn note_bytes(&mut self) {
        let bytes = self.memory_bytes();
        self.stats.peak_bytes = self.stats.peak_bytes.max(bytes);
    }

    fn other_way(&mut self, not: usize) -> usize {
        let pick = self.rng.next_index(self.ways.len() - 1);
        if pick >= not {
            pick + 1
        } else {
            pick
        }
    }

    /// Weighted random insertion (Section IV-D) when per-way resizing is
    /// on; uniform otherwise.
    fn choose_insert_way(&mut self) -> usize {
        if !self.cfg.per_way {
            return self.rng.next_index(self.ways.len());
        }
        let min_len = self.ways.iter().map(|w| w.logical_len).min().unwrap();
        let weights: Vec<u64> = self
            .ways
            .iter()
            .map(|w| {
                let free = w.logical_len.saturating_sub(w.occupied) as u64;
                let at_threshold =
                    w.occupied as f64 >= self.cfg.upsize_threshold * w.logical_len as f64;
                if w.logical_len > min_len && at_threshold {
                    0
                } else {
                    free
                }
            })
            .collect();
        let total: u64 = weights.iter().sum();
        if total == 0 {
            return self.rng.next_index(self.ways.len());
        }
        let mut r = self.rng.next_below(total);
        for (i, w) in weights.iter().enumerate() {
            if r < *w {
                return i;
            }
            r -= w;
        }
        unreachable!("weighted choice must land in a bucket")
    }

    /// Places a cluster starting at `way`, cuckoo-kicking as needed.
    fn place(
        &mut self,
        way: usize,
        cluster: ClusterEntry,
        mem: &mut PhysMem,
        l2p: &mut L2pTable,
    ) -> Result<usize, AllocError> {
        let mut way = way;
        let mut entry = cluster;
        let mut kicks = 0usize;
        loop {
            let h = self.family.hash(way, &entry.tag());
            let (in_old, idx) = self.ways[way].locate(h);
            let slot = self.ways[way].slot_mut(in_old, idx);
            match slot {
                None => {
                    *slot = Some(entry);
                    self.ways[way].occupied += 1;
                    return Ok(kicks);
                }
                Some(_) => {
                    entry = mem::replace(slot, Some(entry)).unwrap();
                    kicks += 1;
                    if kicks % self.cfg.max_kicks == 0 {
                        self.finish_all_resizes(mem, l2p);
                        let w = self.fullest_smallest_way();
                        self.start_resize(w, ResizeKind::Upsize, mem, l2p)?;
                    }
                    way = self.other_way(way);
                }
            }
        }
    }

    /// Victim placement during migration: never allocates; drains kicks.
    fn place_infallible(&mut self, way: usize, cluster: ClusterEntry) -> usize {
        let mut way = way;
        let mut entry = cluster;
        let mut kicks = 0usize;
        loop {
            let h = self.family.hash(way, &entry.tag());
            let (in_old, idx) = self.ways[way].locate(h);
            let slot = self.ways[way].slot_mut(in_old, idx);
            match slot {
                None => {
                    *slot = Some(entry);
                    self.ways[way].occupied += 1;
                    return kicks;
                }
                Some(_) => {
                    entry = mem::replace(slot, Some(entry)).unwrap();
                    kicks += 1;
                    way = self.other_way(way);
                    assert!(kicks < 100_000, "victim placement diverged");
                }
            }
        }
    }

    fn fullest_smallest_way(&self) -> usize {
        let min_len = self.ways.iter().map(|w| w.logical_len).min().unwrap();
        (0..self.ways.len())
            .filter(|&w| self.ways[w].logical_len == min_len)
            .max_by_key(|&w| self.ways[w].occupied)
            .unwrap()
    }

    /// Threshold checks; returns whether a resize started.
    fn maybe_resize(&mut self, mem: &mut PhysMem, l2p: &mut L2pTable) -> Result<bool, AllocError> {
        if self.is_resizing() {
            return Ok(false);
        }
        if self.cfg.per_way {
            let lens: Vec<usize> = self.ways.iter().map(|w| w.logical_len).collect();
            let min_len = *lens.iter().min().unwrap();
            let max_len = *lens.iter().max().unwrap();
            for w in 0..self.ways.len() {
                let way = &self.ways[w];
                let up = way.occupied as f64 >= self.cfg.upsize_threshold * way.logical_len as f64;
                if up && way.logical_len <= min_len {
                    self.start_resize(w, ResizeKind::Upsize, mem, l2p)?;
                    return Ok(true);
                }
                let down =
                    (way.occupied as f64) < self.cfg.downsize_threshold * way.logical_len as f64;
                if down
                    && way.logical_len >= max_len
                    && way.logical_len > self.cfg.initial_entries_per_way
                {
                    // Downsize failures are deferred, not fatal.
                    if self.start_resize(w, ResizeKind::Downsize, mem, l2p).is_ok() {
                        return Ok(true);
                    }
                    return Ok(false);
                }
            }
            Ok(false)
        } else {
            let cap = self.capacity();
            if (self.clusters + 1) as f64 > self.cfg.upsize_threshold * cap as f64 {
                for w in 0..self.ways.len() {
                    self.start_resize(w, ResizeKind::Upsize, mem, l2p)?;
                }
                return Ok(true);
            }
            if (self.clusters as f64) < self.cfg.downsize_threshold * cap as f64
                && self.ways[0].logical_len > self.cfg.initial_entries_per_way
            {
                for w in 0..self.ways.len() {
                    if self
                        .start_resize(w, ResizeKind::Downsize, mem, l2p)
                        .is_err()
                    {
                        return Ok(false);
                    }
                }
                return Ok(true);
            }
            Ok(false)
        }
    }

    /// Starts a resize of way `w`, choosing in-place growth, out-of-place
    /// (ablation) or a chunk-size switch.
    fn start_resize(
        &mut self,
        w: usize,
        kind: ResizeKind,
        mem: &mut PhysMem,
        l2p: &mut L2pTable,
    ) -> Result<(), AllocError> {
        debug_assert!(!self.ways[w].is_resizing());
        let old_len = self.ways[w].logical_len;
        let new_len = match kind {
            ResizeKind::Upsize => old_len * 2,
            ResizeKind::Downsize => old_len / 2,
        };
        if self.cfg.in_place {
            match kind {
                ResizeKind::Upsize => {
                    let chunk_bytes = self.ways[w].storage.chunk_bytes;
                    let needed = Storage::chunks_for(new_len, chunk_bytes);
                    let extra = needed.saturating_sub(self.ways[w].storage.chunks.len());
                    if extra > 0 && l2p.capacity_remaining(w, self.ps) < extra {
                        // The L2P subtable is full: switch chunk size
                        // (Section IV-B; "by construction, out-of-place").
                        return self.chunk_switch(w, new_len, mem, l2p);
                    }
                    let mut newly: Vec<Chunk> = Vec::with_capacity(extra);
                    for _ in 0..extra {
                        match mem.alloc(chunk_bytes, AllocTag::PageTable) {
                            Ok(c) => {
                                l2p.push_chunk(w, self.ps, c).expect("capacity checked");
                                newly.push(c);
                            }
                            Err(e) => {
                                for c in newly {
                                    l2p.remove_chunk(w, self.ps, c);
                                    mem.free(c);
                                }
                                return Err(e);
                            }
                        }
                    }
                    let way = &mut self.ways[w];
                    way.storage.chunks.extend(newly);
                    way.storage.slots.resize_with(new_len, || None);
                    way.logical_len = new_len;
                    way.resize = Some(Resize {
                        old_len,
                        rehash_ptr: 0,
                        kind,
                        in_place: true,
                        moved: 0,
                        kept: 0,
                    });
                }
                ResizeKind::Downsize => {
                    // Nothing to allocate: the array shrinks after the
                    // migration completes.
                    let way = &mut self.ways[w];
                    way.logical_len = new_len;
                    way.resize = Some(Resize {
                        old_len,
                        rehash_ptr: 0,
                        kind,
                        in_place: true,
                        moved: 0,
                        kept: 0,
                    });
                }
            }
        } else {
            // Ablation mode: gradual out-of-place. Old and new chunks hold
            // L2P entries simultaneously, so the subtable may run out much
            // earlier — exactly the pressure Section VII-D describes.
            let mut chunk_bytes = self.ways[w].storage.chunk_bytes;
            loop {
                let n = Storage::chunks_for(new_len, chunk_bytes);
                if l2p.capacity_remaining(w, self.ps) >= n {
                    break;
                }
                match self.cfg.chunk_policy.next(chunk_bytes) {
                    Some(nb) => chunk_bytes = nb,
                    None => return self.chunk_switch(w, new_len, mem, l2p),
                }
            }
            let n = Storage::chunks_for(new_len, chunk_bytes);
            let mut chunks = Vec::with_capacity(n);
            for _ in 0..n {
                match mem.alloc(chunk_bytes, AllocTag::PageTable) {
                    Ok(c) => {
                        l2p.push_chunk(w, self.ps, c).expect("capacity checked");
                        chunks.push(c);
                    }
                    Err(e) => {
                        for c in chunks {
                            l2p.remove_chunk(w, self.ps, c);
                            mem.free(c);
                        }
                        return Err(e);
                    }
                }
            }
            let new_storage = Storage {
                slots: (0..new_len).map(|_| None).collect(),
                chunks,
                chunk_bytes,
            };
            let way = &mut self.ways[w];
            way.old_storage = Some(mem::replace(&mut way.storage, new_storage));
            way.logical_len = new_len;
            way.resize = Some(Resize {
                old_len,
                rehash_ptr: 0,
                kind,
                in_place: false,
                moved: 0,
                kept: 0,
            });
        }
        self.stats.max_chunk_bytes = self
            .stats
            .max_chunk_bytes
            .max(self.ways[w].storage.chunk_bytes);
        self.note_bytes();
        Ok(())
    }

    /// Synchronously rehomes way `w` into chunks of the next size
    /// (Figure 3d → 3e): allocate the new chunks, rehash every entry, free
    /// the old chunks. The paper observes at most one of these per run.
    fn chunk_switch(
        &mut self,
        w: usize,
        new_len: usize,
        mem: &mut PhysMem,
        l2p: &mut L2pTable,
    ) -> Result<(), AllocError> {
        let old_len = self.ways[w].logical_len;
        // Find a chunk size whose chunk count fits an emptied subtable.
        let cap = 2 * self.cfg.l2p_entries_per_subtable;
        let mut chunk_bytes = self
            .cfg
            .chunk_policy
            .next(self.ways[w].storage.chunk_bytes)
            .unwrap_or(self.ways[w].storage.chunk_bytes);
        while Storage::chunks_for(new_len, chunk_bytes) > cap {
            chunk_bytes = self
                .cfg
                .chunk_policy
                .next(chunk_bytes)
                .expect("way outgrew the largest chunk size and the L2P table");
        }
        let n = Storage::chunks_for(new_len, chunk_bytes);
        // Allocate the new chunks first (no L2P claims yet).
        let mut new_chunks = Vec::with_capacity(n);
        for _ in 0..n {
            match mem.alloc(chunk_bytes, AllocTag::PageTable) {
                Ok(c) => new_chunks.push(c),
                Err(e) => {
                    for c in new_chunks {
                        mem.free(c);
                    }
                    return Err(e);
                }
            }
        }
        // Drain the way.
        let old_slots = mem::take(&mut self.ways[w].storage.slots);
        let old_chunks = l2p.clear_subtable(w, self.ps);
        debug_assert_eq!(old_chunks, self.ways[w].storage.chunks);
        for c in self.ways[w].storage.chunks.drain(..) {
            mem.free(c);
        }
        for &c in &new_chunks {
            l2p.push_chunk(w, self.ps, c)
                .expect("cleared subtable fits the new chunk count");
        }
        let entries: Vec<ClusterEntry> = old_slots.into_iter().flatten().collect();
        let moved = entries.len() as u64;
        self.ways[w].occupied = 0;
        self.ways[w].storage = Storage {
            slots: (0..new_len).map(|_| None).collect(),
            chunks: new_chunks,
            chunk_bytes,
        };
        self.ways[w].logical_len = new_len;
        for entry in entries {
            let kicks = self.place_infallible(w, entry);
            self.stats.record_kicks(kicks);
        }
        self.stats.chunk_switches += 1;
        self.stats.entries_migrated += moved;
        self.stats.resizes.push(ResizeEvent {
            way: w,
            kind: ResizeKind::Upsize,
            from_entries: old_len,
            to_entries: new_len,
            moved,
            kept: 0,
        });
        self.stats.max_chunk_bytes = self.stats.max_chunk_bytes.max(chunk_bytes);
        self.note_bytes();
        Ok(())
    }

    /// Advances all in-flight migrations; returns entries migrated.
    fn migration_step(&mut self, mem: &mut PhysMem, l2p: &mut L2pTable) -> u32 {
        let mut migrated = 0;
        for w in 0..self.ways.len() {
            for _ in 0..self.cfg.migrate_per_insert {
                if !self.ways[w].is_resizing() {
                    break;
                }
                migrated += self.migrate_one(w, mem, l2p);
            }
        }
        migrated
    }

    fn finish_all_resizes(&mut self, mem: &mut PhysMem, l2p: &mut L2pTable) {
        for w in 0..self.ways.len() {
            while self.ways[w].is_resizing() {
                self.migrate_one(w, mem, l2p);
            }
        }
    }

    /// Migrates the entry under way `w`'s rehash pointer (Section IV-C's
    /// detailed rehash algorithm). Returns 1 if an entry was processed.
    fn migrate_one(&mut self, w: usize, mem: &mut PhysMem, l2p: &mut L2pTable) -> u32 {
        let (idx, in_place, done) = {
            let r = self.ways[w].resize.as_mut().unwrap();
            if r.rehash_ptr >= r.old_len {
                (0, r.in_place, true)
            } else {
                let i = r.rehash_ptr;
                r.rehash_ptr += 1;
                (i, r.in_place, false)
            }
        };
        if done {
            self.complete_resize(w, mem, l2p);
            return 0;
        }
        let taken = if in_place {
            self.ways[w].storage.slots[idx].take()
        } else {
            self.ways[w].old_storage.as_mut().unwrap().slots[idx].take()
        };
        let Some(cluster) = taken else {
            return 0;
        };
        self.ways[w].occupied -= 1;
        self.stats.entries_migrated += 1;
        // Rehash with the same function, one more (or one fewer) bit of the
        // hash key: the entry stays in place or moves to the same offset in
        // the other half (Figure 5).
        let h = self.family.hash(w, &cluster.tag());
        let new_idx = h as usize & (self.ways[w].logical_len - 1);
        let stays = in_place && new_idx == idx;
        {
            let r = self.ways[w].resize.as_mut().unwrap();
            if stays {
                r.kept += 1;
            } else {
                r.moved += 1;
            }
        }
        let dst = &mut self.ways[w].storage.slots[new_idx];
        match dst {
            None => {
                *dst = Some(cluster);
                self.ways[w].occupied += 1;
                self.stats.record_kicks(0);
            }
            Some(_) => {
                // Conflict: the occupant is cuckooed into a different way
                // (Section IV-C).
                let victim = mem::replace(dst, Some(cluster)).unwrap();
                self.ways[w].occupied += 1;
                self.ways[w].occupied -= 1; // victim leaves this way
                let other = self.other_way(w);
                let kicks = self.place_infallible(other, victim);
                self.stats.record_kicks(kicks + 1);
            }
        }
        let _ = (mem, l2p);
        1
    }

    /// Finalizes a completed migration.
    fn complete_resize(&mut self, w: usize, mem: &mut PhysMem, l2p: &mut L2pTable) {
        let r = self.ways[w].resize.take().expect("resize must be active");
        if r.in_place {
            match r.kind {
                ResizeKind::Upsize => {}
                ResizeKind::Downsize => {
                    let way = &mut self.ways[w];
                    let new_len = way.logical_len;
                    debug_assert!(
                        way.storage.slots[new_len..].iter().all(Option::is_none),
                        "upper half must be empty after downsize migration"
                    );
                    way.storage.slots.truncate(new_len);
                    way.storage.slots.shrink_to_fit();
                    let keep = Storage::chunks_for(new_len, way.storage.chunk_bytes);
                    while way.storage.chunks.len() > keep {
                        let c = way.storage.chunks.pop().unwrap();
                        let popped = l2p.pop_chunk(w, self.ps);
                        debug_assert_eq!(popped, Some(c));
                        mem.free(c);
                    }
                }
            }
        } else {
            let old = self.ways[w].old_storage.take().expect("OOP resize has old");
            debug_assert!(old.slots.iter().all(Option::is_none));
            for c in old.chunks {
                let removed = l2p.remove_chunk(w, self.ps, c);
                debug_assert!(removed);
                mem.free(c);
            }
        }
        self.stats.resizes.push(ResizeEvent {
            way: w,
            kind: r.kind,
            from_entries: r.old_len,
            to_entries: self.ways[w].logical_len,
            moved: r.moved,
            kept: r.kept,
        });
        self.note_bytes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mehpt_mem::AllocCostModel;
    use mehpt_types::{GIB, KIB, MIB};

    fn setup() -> (PhysMem, L2pTable) {
        (
            PhysMem::with_cost_model(4 * GIB, AllocCostModel::zero_cost()),
            L2pTable::paper_default(),
        )
    }

    fn table(mem: &mut PhysMem, l2p: &mut L2pTable) -> MeHptTable {
        MeHptTable::new(PageSize::Base4K, MeHptConfig::default(), mem, l2p).unwrap()
    }

    #[test]
    fn starts_with_one_8kb_chunk_per_way() {
        let (mut mem, mut l2p) = setup();
        let t = table(&mut mem, &mut l2p);
        assert_eq!(t.way_sizes(), vec![8 * KIB, 8 * KIB, 8 * KIB]);
        assert_eq!(t.way_chunk_bytes(), vec![8 * KIB, 8 * KIB, 8 * KIB]);
        assert_eq!(l2p.used_entries(), 3);
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let (mut mem, mut l2p) = setup();
        let mut t = table(&mut mem, &mut l2p);
        for i in 0..20_000u64 {
            t.insert(Vpn(i * 5), Ppn(i), &mut mem, &mut l2p).unwrap();
        }
        for i in 0..20_000u64 {
            assert_eq!(t.lookup(Vpn(i * 5)), Some(Ppn(i)), "lookup {i}");
        }
        for i in 0..20_000u64 {
            assert_eq!(t.remove(Vpn(i * 5), &mut mem, &mut l2p), Some(Ppn(i)));
        }
        assert_eq!(t.pages(), 0);
    }

    #[test]
    fn contiguity_capped_at_chunk_size() {
        let (mut mem, mut l2p) = setup();
        let mut t = table(&mut mem, &mut l2p);
        // Grow the table well past the 512KB 8KB-chunk limit: it must
        // switch to 1MB chunks, never allocating more than 1MB at once.
        for i in 0..300_000u64 {
            t.insert(Vpn(i * 8), Ppn(i), &mut mem, &mut l2p).unwrap();
        }
        let max_way: u64 = t.way_sizes().into_iter().max().unwrap();
        assert!(max_way > 4 * MIB, "ways must have outgrown 4MB: {max_way}");
        assert_eq!(
            mem.stats()
                .tag(mehpt_mem::AllocTag::PageTable)
                .max_contiguous_bytes,
            MIB,
            "no allocation larger than one 1MB chunk"
        );
        assert_eq!(t.stats().max_chunk_bytes, MIB);
        assert!(t.stats().chunk_switches >= 1);
    }

    #[test]
    fn in_place_upsizes_keep_half_in_place() {
        let (mut mem, mut l2p) = setup();
        let mut t = table(&mut mem, &mut l2p);
        for i in 0..100_000u64 {
            t.insert(Vpn(i * 8), Ppn(i), &mut mem, &mut l2p).unwrap();
        }
        let inplace_ups: Vec<&ResizeEvent> = t
            .stats()
            .resizes
            .iter()
            .filter(|e| e.kind == ResizeKind::Upsize && e.kept > 0)
            .collect();
        assert!(!inplace_ups.is_empty());
        let f: f64 = inplace_ups
            .iter()
            .map(|e| e.moved as f64 / (e.moved + e.kept) as f64)
            .sum::<f64>()
            / inplace_ups.len() as f64;
        assert!((0.35..0.65).contains(&f), "moved fraction {f}");
    }

    #[test]
    fn per_way_keeps_ways_within_double() {
        let (mut mem, mut l2p) = setup();
        let mut t = table(&mut mem, &mut l2p);
        for i in 0..100_000u64 {
            t.insert(Vpn(i * 8), Ppn(i), &mut mem, &mut l2p).unwrap();
            if i % 4096 == 0 {
                let sizes = t.way_sizes();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max <= 2 * min, "imbalance {sizes:?} at {i}");
            }
        }
        // Per-way resizing produces ways of different sizes at least some
        // of the time (Figure 12's point).
        let n_resizes = t.stats().resizes.len();
        assert!(n_resizes > 5);
    }

    #[test]
    fn lookups_stay_correct_through_all_resize_machinery() {
        let (mut mem, mut l2p) = setup();
        let mut t = table(&mut mem, &mut l2p);
        for i in 0..150_000u64 {
            t.insert(Vpn(i), Ppn(i + 3), &mut mem, &mut l2p).unwrap();
            if i % 11 == 0 {
                let probe = i / 2;
                assert_eq!(t.lookup(Vpn(probe)), Some(Ppn(probe + 3)), "at {i}");
            }
        }
    }

    #[test]
    fn downsizes_free_chunks_and_l2p_entries() {
        let (mut mem, mut l2p) = setup();
        let mut t = table(&mut mem, &mut l2p);
        for i in 0..30_000u64 {
            t.insert(Vpn(i * 8), Ppn(i), &mut mem, &mut l2p).unwrap();
        }
        let grown_bytes = t.memory_bytes();
        let grown_capacity = t.capacity();
        let grown_l2p = l2p.used_entries();
        for i in 0..30_000u64 {
            t.remove(Vpn(i * 8), &mut mem, &mut l2p);
        }
        // Churn to drive the gradual downsizes to completion.
        for i in 0..60_000u64 {
            t.insert(Vpn(1_000_000 + (i % 64)), Ppn(i), &mut mem, &mut l2p)
                .unwrap();
            t.remove(Vpn(1_000_000 + (i % 64)), &mut mem, &mut l2p);
        }
        // Logical capacity shrinks hard; physical memory shrinks down to
        // the chunk-granularity floor (one chunk per way).
        assert!(
            t.capacity() < grown_capacity / 2,
            "capacity {} did not shrink from {grown_capacity}",
            t.capacity()
        );
        assert!(t.memory_bytes() <= grown_bytes);
        assert!(l2p.used_entries() <= grown_l2p);
        let downs = t
            .stats()
            .resizes
            .iter()
            .filter(|e| e.kind == ResizeKind::Downsize)
            .count();
        assert!(downs > 0, "no downsizes happened");
    }

    #[test]
    fn ablation_out_of_place_uses_more_memory() {
        let run = |in_place: bool| {
            let (mut mem, mut l2p) = setup();
            // All-way sizing isolates the in-place effect: with per-way
            // resizing only one way resizes at a time, muting the contrast.
            let cfg = MeHptConfig {
                in_place,
                per_way: false,
                ..MeHptConfig::default()
            };
            let mut t = MeHptTable::new(PageSize::Base4K, cfg, &mut mem, &mut l2p).unwrap();
            for i in 0..100_000u64 {
                t.insert(Vpn(i * 8), Ppn(i), &mut mem, &mut l2p).unwrap();
            }
            t.stats().peak_bytes
        };
        let inplace = run(true);
        let oop = run(false);
        assert!(
            (inplace as f64) < 0.8 * oop as f64,
            "in-place peak {inplace} not clearly below out-of-place {oop}"
        );
    }

    #[test]
    fn destroy_returns_everything() {
        let (mut mem, mut l2p) = setup();
        let before = mem.stats().tag(AllocTag::PageTable).current_bytes;
        let mut t = table(&mut mem, &mut l2p);
        for i in 0..50_000u64 {
            t.insert(Vpn(i * 8), Ppn(i), &mut mem, &mut l2p).unwrap();
        }
        t.destroy(&mut mem, &mut l2p);
        assert_eq!(mem.stats().tag(AllocTag::PageTable).current_bytes, before);
        assert_eq!(l2p.used_entries(), 0);
    }

    #[test]
    fn probe_addrs_land_inside_owned_chunks() {
        let (mut mem, mut l2p) = setup();
        let mut t = table(&mut mem, &mut l2p);
        for i in 0..50_000u64 {
            t.insert(Vpn(i * 8), Ppn(i), &mut mem, &mut l2p).unwrap();
            if i % 977 == 0 {
                for addr in t.probe_addrs(Vpn(i * 8)) {
                    // Each probe address must fall in some live page-table
                    // chunk (we only check it is within the memory the
                    // allocator handed out).
                    assert!(addr.0 < mem.total_bytes());
                }
            }
        }
    }

    #[test]
    fn update_existing_translation() {
        let (mut mem, mut l2p) = setup();
        let mut t = table(&mut mem, &mut l2p);
        t.insert(Vpn(9), Ppn(1), &mut mem, &mut l2p).unwrap();
        t.insert(Vpn(9), Ppn(2), &mut mem, &mut l2p).unwrap();
        assert_eq!(t.pages(), 1);
        assert_eq!(t.lookup(Vpn(9)), Some(Ppn(2)));
    }
}
