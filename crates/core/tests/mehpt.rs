//! Integration tests of the full ME-HPT design: contiguity guarantees,
//! walker timing, chunk-size transitions, and paper-shape invariants.

use mehpt_core::{ChunkSizePolicy, MeHpt, MeHptConfig};
use mehpt_ecpt::EcptWalker;
use mehpt_hash::ResizeKind;
use mehpt_mem::{AllocCostModel, AllocTag, Fragmenter, PhysMem};
use mehpt_tlb::MemoryModel;
use mehpt_types::rng::Xoshiro256;
use mehpt_types::{PageSize, Ppn, VirtAddr, Vpn, GIB, KIB, MIB};

fn mem(bytes: u64) -> PhysMem {
    PhysMem::with_cost_model(bytes, AllocCostModel::zero_cost())
}

#[test]
fn multiple_page_sizes_coexist() {
    let mut m = mem(GIB);
    let mut hpt = MeHpt::new(&mut m).unwrap();
    let va4k = VirtAddr::new(0x1000_0000);
    let va2m = VirtAddr::new(0x8000_0000);
    let va1g = VirtAddr::new(0x40_0000_0000);
    hpt.map(va4k.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(1), &mut m)
        .unwrap();
    hpt.map(va2m.vpn(PageSize::Huge2M), PageSize::Huge2M, Ppn(2), &mut m)
        .unwrap();
    hpt.map(
        va1g.vpn(PageSize::Giant1G),
        PageSize::Giant1G,
        Ppn(3),
        &mut m,
    )
    .unwrap();
    assert_eq!(hpt.translate(va4k), Some((Ppn(1), PageSize::Base4K)));
    assert_eq!(
        hpt.translate(va2m + 0x5000),
        Some((Ppn(2), PageSize::Huge2M))
    );
    assert_eq!(hpt.translate(va1g + MIB), Some((Ppn(3), PageSize::Giant1G)));
    assert_eq!(hpt.pages(), 3);
    hpt.destroy(&mut m);
}

#[test]
fn contiguity_never_exceeds_one_chunk_even_at_scale() {
    // The headline claim: ECPT needs up to 64MB contiguous; ME-HPT needs at
    // most one chunk (1MB here).
    let mut m = mem(4 * GIB);
    let mut hpt = MeHpt::new(&mut m).unwrap();
    for i in 0..400_000u64 {
        hpt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap();
    }
    assert!(hpt.memory_bytes() > 16 * MIB);
    assert_eq!(m.stats().tag(AllocTag::PageTable).max_contiguous_bytes, MIB);
    assert_eq!(hpt.max_chunk_bytes(), MIB);
}

#[test]
fn survives_fragmentation_that_kills_ecpt() {
    // At 0.9 FMFI the ECPT baseline dies (see the ecpt crate's tests);
    // ME-HPT keeps allocating its small chunks just fine.
    let mut m = mem(GIB);
    let mut rng = Xoshiro256::seed_from_u64(7);
    Fragmenter::fragment(&mut m, 0.9, &mut rng);
    let mut hpt = MeHpt::new(&mut m).unwrap();
    for i in 0..150_000u64 {
        hpt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap_or_else(|e| panic!("ME-HPT must survive fragmentation: {e} at {i}"));
    }
    assert!(hpt.memory_bytes() > 8 * MIB);
}

#[test]
fn chunk_switch_happens_once_per_growth_run() {
    // Section VII-E1: "for all the applications, there is at most one chunk
    // size switch (from 8KB to 1MB) throughout the whole execution".
    let mut m = mem(4 * GIB);
    let mut hpt = MeHpt::new(&mut m).unwrap();
    for i in 0..400_000u64 {
        hpt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap();
    }
    let switches = hpt.table(PageSize::Base4K).unwrap().stats().chunk_switches;
    assert_eq!(
        switches, 3,
        "one switch per way (3 ways) from 8KB to 1MB chunks"
    );
    assert_eq!(
        hpt.table(PageSize::Base4K).unwrap().way_chunk_bytes(),
        vec![MIB, MIB, MIB]
    );
}

#[test]
fn l2p_usage_stays_modest() {
    // Figure 14: applications use a fraction of the 288 entries.
    let mut m = mem(4 * GIB);
    let mut hpt = MeHpt::new(&mut m).unwrap();
    for i in 0..400_000u64 {
        hpt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap();
    }
    let used = hpt.l2p_entries_used();
    assert!(used <= 288);
    // 400K clusters → way ≈ 64K–256K entries → a handful of 1MB chunks per
    // way plus the idle page sizes' initial chunks.
    assert!((6..120).contains(&used), "L2P entries used: {used}");
}

#[test]
fn walker_times_mehpt_like_ecpt() {
    let mut m = mem(GIB);
    let mut hpt = MeHpt::new(&mut m).unwrap();
    let mut walker = EcptWalker::paper_default();
    let mut dram = MemoryModel::paper_default();
    let va = VirtAddr::new(0x4242_0000);
    hpt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(77), &mut m)
        .unwrap();
    let cold = walker.walk(&hpt, va, &mut dram);
    assert_eq!(cold.translation, Some((Ppn(77), PageSize::Base4K)));
    let warm = walker.walk(&hpt, va, &mut dram);
    assert_eq!(warm.memory_accesses, 3, "3 parallel way probes");
    assert!(
        warm.cycles <= 4 + 200,
        "warm walk must cost one parallel round trip: {} cycles",
        warm.cycles
    );
}

#[test]
fn small_chunk_start_saves_memory_for_small_processes() {
    // Figure 15's mechanism: with the 8KB+1MB ladder a small process keeps
    // 8KB chunks; with a 1MB-only ladder it burns 1MB per way immediately.
    let small_process = |policy: ChunkSizePolicy| {
        let mut m = mem(GIB);
        let cfg = MeHptConfig {
            chunk_policy: policy,
            ..MeHptConfig::default()
        };
        let mut hpt = MeHpt::with_config(cfg, &mut m).unwrap();
        for i in 0..500u64 {
            hpt.map(Vpn(i), PageSize::Base4K, Ppn(i), &mut m).unwrap();
        }
        hpt.table(PageSize::Base4K).unwrap().memory_bytes()
    };
    let ladder = small_process(ChunkSizePolicy::paper_default());
    let fixed_1mb = small_process(ChunkSizePolicy::fixed(MIB));
    assert!(ladder <= 64 * KIB, "ladder build used {ladder} bytes");
    assert!(
        fixed_1mb >= 3 * MIB,
        "1MB-only build used {fixed_1mb} bytes"
    );
}

#[test]
fn in_place_resizes_move_about_half() {
    let mut m = mem(4 * GIB);
    let mut hpt = MeHpt::new(&mut m).unwrap();
    for i in 0..200_000u64 {
        hpt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap();
    }
    let stats = hpt.table(PageSize::Base4K).unwrap().stats();
    let inplace_ups: Vec<f64> = stats
        .resizes
        .iter()
        .filter(|e| e.kind == ResizeKind::Upsize && e.moved + e.kept > 0 && e.kept > 0)
        .map(|e| e.moved as f64 / (e.moved + e.kept) as f64)
        .collect();
    assert!(!inplace_ups.is_empty());
    let mean = inplace_ups.iter().sum::<f64>() / inplace_ups.len() as f64;
    assert!((0.4..0.6).contains(&mean), "moved fraction {mean}");
}

#[test]
fn upsizes_spread_across_ways() {
    // Figure 11: per-way resizing balances upsizes across ways.
    let mut m = mem(4 * GIB);
    let mut hpt = MeHpt::new(&mut m).unwrap();
    for i in 0..300_000u64 {
        hpt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap();
    }
    let stats = hpt.table(PageSize::Base4K).unwrap().stats();
    let mut per_way = [0u64; 3];
    for e in &stats.resizes {
        if e.kind == ResizeKind::Upsize {
            per_way[e.way] += 1;
        }
    }
    let min = *per_way.iter().min().unwrap();
    let max = *per_way.iter().max().unwrap();
    assert!(min > 0);
    assert!(max - min <= 2, "upsizes unbalanced: {per_way:?}");
}

#[test]
fn unmap_returns_translations_and_shrinks() {
    let mut m = mem(GIB);
    let mut hpt = MeHpt::new(&mut m).unwrap();
    for i in 0..10_000u64 {
        hpt.map(Vpn(i), PageSize::Base4K, Ppn(i), &mut m).unwrap();
    }
    for i in 0..10_000u64 {
        assert_eq!(hpt.unmap(Vpn(i), PageSize::Base4K, &mut m), Some(Ppn(i)));
    }
    assert_eq!(hpt.pages(), 0);
    assert_eq!(hpt.unmap(Vpn(0), PageSize::Base4K, &mut m), None);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut m = mem(GIB);
        let mut hpt = MeHpt::new(&mut m).unwrap();
        for i in 0..100_000u64 {
            hpt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut m)
                .unwrap();
        }
        (
            hpt.table(PageSize::Base4K).unwrap().way_sizes(),
            hpt.l2p_entries_used(),
            hpt.memory_bytes(),
        )
    };
    assert_eq!(run(), run());
}
