//! Failure injection: allocation failures mid-operation must leave the
//! page table consistent (the paper's whole point is graceful behaviour on
//! hostile memory).

use mehpt_core::{ChunkSizePolicy, MeHpt, MeHptConfig};
use mehpt_mem::{AllocCostModel, AllocError, AllocTag, Fragmenter, PhysMem};
use mehpt_types::rng::Xoshiro256;
use mehpt_types::{PageSize, Ppn, Vpn, KIB, MIB};

fn tiny_mem(bytes: u64) -> PhysMem {
    PhysMem::with_cost_model(bytes, AllocCostModel::zero_cost())
}

/// Fill memory until a chunk allocation must fail; the failing insert
/// reports an error and the table stays fully usable and consistent.
#[test]
fn insert_failure_leaves_table_consistent() {
    let mut mem = tiny_mem(2 * MIB);
    let mut hpt = MeHpt::new(&mut mem).unwrap();
    // Consume almost all memory with data so a chunk allocation fails soon.
    let mut ballast = Vec::new();
    while let Ok(c) = mem.alloc(64 * KIB, AllocTag::Data) {
        ballast.push(c);
    }
    // Leave a little room, then insert until failure.
    mem.free(ballast.pop().unwrap());
    let mut inserted = Vec::new();
    let mut failed_at = None;
    for i in 0..200_000u64 {
        match hpt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut mem) {
            Ok(_) => inserted.push(i),
            Err(e) => {
                assert!(matches!(e, AllocError::OutOfMemory { .. }), "{e}");
                failed_at = Some(i);
                break;
            }
        }
    }
    let failed_at = failed_at.expect("memory must run out");
    assert!(failed_at > 0, "some inserts must succeed first");
    // Every previously inserted translation is still intact.
    for &i in &inserted {
        assert_eq!(
            hpt.translate(Vpn(i * 8).base_addr(PageSize::Base4K)),
            Some((Ppn(i), PageSize::Base4K)),
            "translation {i} lost after failed insert"
        );
    }
    assert_eq!(hpt.pages(), inserted.len() as u64);
    // Freeing memory lets the same insert succeed afterwards.
    for c in ballast {
        mem.free(c);
    }
    hpt.map(
        Vpn(failed_at * 8),
        PageSize::Base4K,
        Ppn(failed_at),
        &mut mem,
    )
    .unwrap();
}

/// A failed *chunk switch* (no room for the next-size chunks) must not
/// corrupt the table either.
#[test]
fn chunk_switch_failure_is_clean() {
    // Tiny L2P so switches trigger early; tiny memory so they can fail.
    let cfg = MeHptConfig {
        l2p_entries_per_subtable: 2,
        chunk_policy: ChunkSizePolicy::new(vec![8 * KIB, 512 * KIB]),
        ..MeHptConfig::default()
    };
    let mut mem = tiny_mem(1 * MIB + 512 * KIB);
    let mut hpt = MeHpt::with_config(cfg, &mut mem).unwrap();
    let mut ok = 0u64;
    let mut failed = false;
    for i in 0..100_000u64 {
        match hpt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut mem) {
            Ok(_) => ok += 1,
            Err(_) => {
                failed = true;
                break;
            }
        }
    }
    assert!(failed, "the 512KB chunk switch must eventually fail");
    for i in 0..ok {
        assert_eq!(
            hpt.translate(Vpn(i * 8).base_addr(PageSize::Base4K)),
            Some((Ppn(i), PageSize::Base4K))
        );
    }
}

/// Unmovable fragmentation: ME-HPT on 8KB chunks survives memory that
/// refuses every allocation above 4KB... almost: 8KB chunks need order-1
/// blocks, which a half-movable fragmenter still leaves available.
#[test]
fn works_at_extreme_fragmentation() {
    let mut mem = tiny_mem(256 * MIB);
    let mut rng = Xoshiro256::seed_from_u64(3);
    Fragmenter::fragment(&mut mem, 0.95, &mut rng);
    let mut hpt = MeHpt::new(&mut mem).unwrap();
    for i in 0..50_000u64 {
        hpt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut mem)
            .unwrap_or_else(|e| panic!("insert {i} failed: {e}"));
    }
    assert_eq!(hpt.pages(), 50_000);
}

/// Construction failure: if even the first chunk cannot be allocated, the
/// error propagates and nothing leaks.
#[test]
fn construction_oom_propagates() {
    let mut mem = tiny_mem(16 * KIB);
    let mut ballast = Vec::new();
    while let Ok(c) = mem.alloc(4 * KIB, AllocTag::Data) {
        ballast.push(c);
    }
    let mut hpt = MeHpt::new(&mut mem).unwrap(); // lazy: no chunks yet
    let err = hpt
        .map(Vpn(1), PageSize::Base4K, Ppn(1), &mut mem)
        .unwrap_err();
    assert!(matches!(err, AllocError::OutOfMemory { .. }));
    assert_eq!(hpt.pages(), 0);
    assert_eq!(hpt.l2p_entries_used(), 0, "no L2P entries may leak");
}
