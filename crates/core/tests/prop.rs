//! Property tests: ME-HPT must agree with a `HashMap` model under random
//! map/unmap/translate sequences, across ablation configurations, while the
//! resize machinery (in-place rehash, chunk switches, per-way balancing)
//! churns underneath.

use std::collections::HashMap;

use mehpt_core::{ChunkSizePolicy, MeHpt, MeHptConfig};
use mehpt_mem::{AllocCostModel, PhysMem};
use mehpt_types::proptest_lite::{check, Gen};
use mehpt_types::{PageSize, Ppn, Vpn, GIB, KIB};

#[derive(Clone, Debug)]
enum Op {
    Map(u32, u32),
    Unmap(u32),
    Translate(u32),
}

fn gen_ops(g: &mut Gen, max_len: usize) -> Vec<Op> {
    g.vec_of(max_len, |g| match g.weighted(&[4, 1, 1]) {
        0 => Op::Map(g.u32() % 50_000, g.u32()),
        1 => Op::Unmap(g.u32() % 50_000),
        _ => Op::Translate(g.u32() % 50_000),
    })
}

fn run_model(cfg: MeHptConfig, ops: &[Op]) {
    let mut mem = PhysMem::with_cost_model(GIB, AllocCostModel::zero_cost());
    let mut hpt = MeHpt::with_config(cfg, &mut mem).unwrap();
    let mut model: HashMap<u32, u32> = HashMap::new();
    for op in ops {
        match *op {
            Op::Map(k, v) => {
                hpt.map(Vpn(k as u64), PageSize::Base4K, Ppn(v as u64), &mut mem)
                    .unwrap();
                model.insert(k, v);
            }
            Op::Unmap(k) => {
                let got = hpt.unmap(Vpn(k as u64), PageSize::Base4K, &mut mem);
                assert_eq!(got, model.remove(&k).map(|v| Ppn(v as u64)));
            }
            Op::Translate(k) => {
                let got = hpt
                    .translate(Vpn(k as u64).base_addr(PageSize::Base4K))
                    .map(|(p, _)| p);
                assert_eq!(got, model.get(&k).map(|&v| Ppn(v as u64)));
            }
        }
        assert_eq!(hpt.pages(), model.len() as u64);
    }
    for (&k, &v) in &model {
        let got = hpt
            .translate(Vpn(k as u64).base_addr(PageSize::Base4K))
            .map(|(p, _)| p);
        assert_eq!(got, Some(Ppn(v as u64)), "final check for key {k}");
    }
}

#[test]
fn full_design_matches_hashmap() {
    check("full_design_matches_hashmap", 24, |g| {
        let ops = gen_ops(g, 1200);
        // Tiny initial size and tiny L2P subtables so chunk switches and
        // stealing trigger even with modest inputs.
        run_model(
            MeHptConfig {
                initial_entries_per_way: 128,
                l2p_entries_per_subtable: 2,
                chunk_policy: ChunkSizePolicy::new(vec![8 * KIB, 64 * KIB, 512 * KIB]),
                ..MeHptConfig::default()
            },
            &ops,
        );
    });
}

#[test]
fn ablation_out_of_place_matches_hashmap() {
    check("ablation_out_of_place_matches_hashmap", 24, |g| {
        let ops = gen_ops(g, 1000);
        run_model(
            MeHptConfig {
                in_place: false,
                l2p_entries_per_subtable: 4,
                chunk_policy: ChunkSizePolicy::new(vec![8 * KIB, 64 * KIB, 512 * KIB]),
                ..MeHptConfig::default()
            },
            &ops,
        );
    });
}

#[test]
fn ablation_all_way_matches_hashmap() {
    check("ablation_all_way_matches_hashmap", 24, |g| {
        let ops = gen_ops(g, 1000);
        run_model(
            MeHptConfig {
                per_way: false,
                l2p_entries_per_subtable: 2,
                chunk_policy: ChunkSizePolicy::new(vec![8 * KIB, 64 * KIB, 512 * KIB]),
                ..MeHptConfig::default()
            },
            &ops,
        );
    });
}

#[test]
fn way_balance_holds_under_any_workload() {
    check("way_balance_holds_under_any_workload", 24, |g| {
        let ops = gen_ops(g, 1500);
        let mut mem = PhysMem::with_cost_model(GIB, AllocCostModel::zero_cost());
        let mut hpt = MeHpt::new(&mut mem).unwrap();
        for op in &ops {
            match *op {
                Op::Map(k, v) => {
                    hpt.map(Vpn(k as u64), PageSize::Base4K, Ppn(v as u64), &mut mem)
                        .unwrap();
                }
                Op::Unmap(k) => {
                    hpt.unmap(Vpn(k as u64), PageSize::Base4K, &mut mem);
                }
                Op::Translate(_) => {}
            }
            if let Some(t) = hpt.table(PageSize::Base4K) {
                let sizes = t.way_sizes();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max <= 2 * min, "imbalanced ways: {sizes:?}");
            }
        }
    });
}
