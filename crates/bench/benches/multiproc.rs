//! Extension: multiprogrammed pressure. Section IV-C warns that "with
//! multiple processes running in the machine, each with one HPT per page
//! size, there may potentially be several HPT resizings occurring
//! concurrently, consuming substantial memory". Four graph-analytics
//! processes share one core and one physical memory; the combined
//! page-table peak and the machine-wide contiguity requirement are
//! compared across designs.
//!
//! Runs at a fixed 0.25 scale (not cached; ~a minute).

use mehpt_sim::{run_multi, MultiConfig, PtKind, SimConfig};
use mehpt_types::ByteSize;
use mehpt_workloads::{App, WorkloadCfg};

fn main() {
    bench::announce(
        "Extension: four concurrent processes share the machine",
        "Section IV-C's multiprogrammed-resizing argument",
    );
    let apps = [App::Bfs, App::Pr, App::Cc, App::Sssp];
    println!(
        "{:<8} | {:>14} {:>12} {:>12} {:>10}",
        "design", "combined peak", "contiguity", "cycles(G)", "switches"
    );
    println!("{}", "-".repeat(64));
    for kind in [PtKind::Radix, PtKind::Ecpt, PtKind::MeHpt] {
        let workloads = apps
            .iter()
            .map(|&a| {
                a.build(&WorkloadCfg {
                    scale: 0.25,
                    ..WorkloadCfg::default()
                })
            })
            .collect();
        let cfg = MultiConfig::paper(SimConfig::paper(kind, false));
        let r = run_multi(workloads, cfg);
        let aborted = r.processes.iter().filter(|p| p.aborted.is_some()).count();
        println!(
            "{:<8} | {:>14} {:>12} {:>12.2} {:>10}{}",
            kind.label(),
            ByteSize(r.peak_pt_bytes).to_string(),
            ByteSize(r.max_contiguous).to_string(),
            r.total_cycles() as f64 / 1e9,
            r.switches,
            if aborted > 0 {
                format!("   [{aborted} processes aborted]")
            } else {
                String::new()
            }
        );
    }
    println!();
    println!("Concurrent resizings multiply the ECPT old+new overhead across");
    println!("processes; ME-HPT's in-place chunked ways keep both the combined");
    println!("footprint and the contiguity requirement small.");
}
