//! Ablation of the four ME-HPT techniques (DESIGN.md's design-choice
//! index): each variant toggles one dimension of the design; the table
//! shows what each technique buys in peak memory, contiguity and runtime.
//!
//! This also reproduces Section VII-D's argument emergently: without
//! in-place + per-way resizing, GUPS's L2P subtables overflow and the
//! design is forced onto 8MB chunks.
//!
//! The cells run on the mehpt-lab engine (parallel, deterministic); the
//! table here is the one rendering the lab presets do not cover.

use bench::Variant;
use mehpt_lab::ExperimentGrid;
use mehpt_sim::PtKind;
use mehpt_workloads::App;

fn main() {
    bench::announce(
        "Ablation: each ME-HPT technique toggled independently",
        "Section VII-D and Figure 10's mechanism",
    );
    let apps = [App::Gups, App::Bfs, App::Mummer];
    let mut grid = ExperimentGrid::paper(
        apps.to_vec(),
        vec![PtKind::Ecpt, PtKind::MeHpt],
        vec![false],
    );
    grid.variants = vec![
        Variant::Full,
        Variant::NoInPlace,
        Variant::NoPerWay,
        Variant::Neither,
        Variant::Fixed1Mb,
    ];
    let report = bench::run_grid("ablation", &grid);

    for app in apps {
        println!("\n--- {} (no THP) ---", app.name());
        println!(
            "{:<22} | {:>10} {:>10} {:>10} {:>8}",
            "variant", "peak PT", "contig", "cycles(G)", "switches"
        );
        println!("{}", "-".repeat(70));
        if let Some(ecpt) = report.metrics(app, PtKind::Ecpt, false, Variant::Full) {
            println!(
                "{:<22} | {:>10} {:>10} {:>10.2} {:>8}",
                "ECPT baseline",
                bench::fmt_bytes(ecpt.pt_peak_bytes),
                bench::fmt_bytes(ecpt.pt_max_contiguous),
                ecpt.total_cycles as f64 / 1e9,
                "-"
            );
        }
        for (label, variant) in [
            ("ME-HPT full", Variant::Full),
            ("  - in-place resizing", Variant::NoInPlace),
            ("  - per-way resizing", Variant::NoPerWay),
            ("  - both", Variant::Neither),
            ("  1MB-only chunks", Variant::Fixed1Mb),
        ] {
            let Some(r) = report.metrics(app, PtKind::MeHpt, false, variant) else {
                println!("{label:<22} | (cell missing or failed)");
                continue;
            };
            println!(
                "{:<22} | {:>10} {:>10} {:>10.2} {:>8}",
                label,
                bench::fmt_bytes(r.pt_peak_bytes),
                bench::fmt_bytes(r.pt_max_contiguous),
                r.total_cycles as f64 / 1e9,
                r.chunk_switches
            );
        }
    }
    println!();
    println!("Paper's Section VII-D: without the two size-reducing techniques,");
    println!("GUPS/SysBench would need 288 L2P entries (> the 192 available for");
    println!("one page size), forcing 8MB chunks; with them, 1MB chunks suffice.");
}
