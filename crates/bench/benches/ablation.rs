//! Ablation of the four ME-HPT techniques (DESIGN.md's design-choice
//! index): each variant toggles one dimension of the design; the table
//! shows what each technique buys in peak memory, contiguity and runtime.
//!
//! This also reproduces Section VII-D's argument emergently: without
//! in-place + per-way resizing, GUPS's L2P subtables overflow and the
//! design is forced onto 8MB chunks.

use bench::{run, RunKey, Variant};
use mehpt_sim::PtKind;
use mehpt_workloads::App;

fn main() {
    bench::announce(
        "Ablation: each ME-HPT technique toggled independently",
        "Section VII-D and Figure 10's mechanism",
    );
    for app in [App::Gups, App::Bfs, App::Mummer] {
        println!("\n--- {} (no THP) ---", app.name());
        println!(
            "{:<22} | {:>10} {:>10} {:>10} {:>8}",
            "variant", "peak PT", "contig", "cycles(G)", "switches"
        );
        println!("{}", "-".repeat(70));
        let ecpt = run(&RunKey::paper(app, PtKind::Ecpt, false));
        println!(
            "{:<22} | {:>10} {:>10} {:>10.2} {:>8}",
            "ECPT baseline",
            bench::fmt_bytes(ecpt.pt_peak_bytes),
            bench::fmt_bytes(ecpt.pt_max_contiguous),
            ecpt.total_cycles as f64 / 1e9,
            "-"
        );
        for (label, variant) in [
            ("ME-HPT full", Variant::Full),
            ("  - in-place resizing", Variant::NoInPlace),
            ("  - per-way resizing", Variant::NoPerWay),
            ("  - both", Variant::Neither),
            ("  1MB-only chunks", Variant::Fixed1Mb),
        ] {
            let r = run(&RunKey {
                app,
                kind: PtKind::MeHpt,
                thp: false,
                variant,
                graph_nodes: 1_000_000,
            });
            println!(
                "{:<22} | {:>10} {:>10} {:>10.2} {:>8}",
                label,
                bench::fmt_bytes(r.pt_peak_bytes),
                bench::fmt_bytes(r.pt_max_contiguous),
                r.total_cycles as f64 / 1e9,
                r.chunk_switches
            );
        }
    }
    println!();
    println!("Paper's Section VII-D: without the two size-reducing techniques,");
    println!("GUPS/SysBench would need 288 L2P entries (> the 192 available for");
    println!("one page size), forcing 8MB chunks; with them, 1MB chunks suffice.");
}
