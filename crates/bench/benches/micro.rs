//! Criterion micro-benchmarks: the latency of the core operations —
//! elastic-cuckoo inserts/lookups across resize modes, buddy allocation,
//! and timed page walks over the three page-table organizations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mehpt_core::MeHpt;
use mehpt_ecpt::{Ecpt, EcptWalker};
use mehpt_hash::{Config, ElasticCuckooTable, ResizeMode, WaySizing};
use mehpt_mem::{AllocCostModel, AllocTag, PhysMem};
use mehpt_radix::{RadixPageTable, RadixWalker};
use mehpt_tlb::MemoryModel;
use mehpt_types::{PageSize, Ppn, VirtAddr, Vpn, GIB, MIB};

fn mem() -> PhysMem {
    PhysMem::with_cost_model(GIB, AllocCostModel::zero_cost())
}

fn bench_cuckoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("elastic_cuckoo");
    group.sample_size(20);
    for (name, mode, sizing) in [
        (
            "insert/oop_allway",
            ResizeMode::OutOfPlace,
            WaySizing::AllWay,
        ),
        (
            "insert/inplace_perway",
            ResizeMode::InPlace,
            WaySizing::PerWay,
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    ElasticCuckooTable::<u64, u64>::new(Config {
                        resize_mode: mode,
                        sizing,
                        ..Config::default()
                    })
                },
                |mut t| {
                    for i in 0..20_000u64 {
                        t.insert(i, i);
                    }
                    t
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("lookup/inplace_perway", |b| {
        let mut t = ElasticCuckooTable::<u64, u64>::new(Config {
            resize_mode: ResizeMode::InPlace,
            sizing: WaySizing::PerWay,
            ..Config::default()
        });
        for i in 0..20_000u64 {
            t.insert(i, i);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 20_000;
            std::hint::black_box(t.get(&k))
        })
    });
    group.finish();
}

fn bench_buddy(c: &mut Criterion) {
    let mut group = c.benchmark_group("phys_mem");
    group.sample_size(20);
    group.bench_function("alloc_free_4k", |b| {
        let mut m = mem();
        b.iter(|| {
            let chunk = m.alloc(4096, AllocTag::Data).unwrap();
            m.free(chunk);
        })
    });
    group.bench_function("alloc_free_1m", |b| {
        let mut m = mem();
        b.iter(|| {
            let chunk = m.alloc(MIB, AllocTag::PageTable).unwrap();
            m.free(chunk);
        })
    });
    group.finish();
}

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_walk");
    group.sample_size(20);
    const PAGES: u64 = 50_000;

    // Radix.
    let mut m = mem();
    let mut radix = RadixPageTable::new(&mut m).unwrap();
    for i in 0..PAGES {
        radix
            .map(Vpn(i * 7), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap();
    }
    group.bench_function("radix", |b| {
        let mut walker = RadixWalker::paper_default();
        let mut dram = MemoryModel::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 13) % PAGES;
            std::hint::black_box(walker.walk(
                &radix,
                Vpn(i * 7).base_addr(PageSize::Base4K),
                &mut dram,
            ))
        })
    });

    // ECPT.
    let mut m = mem();
    let mut ecpt = Ecpt::new(&mut m).unwrap();
    for i in 0..PAGES {
        ecpt.map(Vpn(i * 7), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap();
    }
    group.bench_function("ecpt", |b| {
        let mut walker = EcptWalker::paper_default();
        let mut dram = MemoryModel::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 13) % PAGES;
            std::hint::black_box(walker.walk(
                &ecpt,
                Vpn(i * 7).base_addr(PageSize::Base4K),
                &mut dram,
            ))
        })
    });

    // ME-HPT.
    let mut m = mem();
    let mut mehpt = MeHpt::new(&mut m).unwrap();
    for i in 0..PAGES {
        mehpt
            .map(Vpn(i * 7), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap();
    }
    group.bench_function("mehpt", |b| {
        let mut walker = EcptWalker::paper_default();
        let mut dram = MemoryModel::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 13) % PAGES;
            std::hint::black_box(walker.walk(
                &mehpt,
                Vpn(i * 7).base_addr(PageSize::Base4K),
                &mut dram,
            ))
        })
    });
    let _ = VirtAddr::new(0);
    group.finish();
}

criterion_group!(benches, bench_cuckoo, bench_buddy, bench_walks);
criterion_main!(benches);
