//! Micro-benchmarks: the host-side latency of the core operations —
//! elastic-cuckoo inserts/lookups across resize modes, buddy allocation,
//! and timed page walks over the three page-table organizations.
//!
//! Timed with `std::time::Instant` (the workspace builds offline with no
//! crates-io dependencies, so no criterion). Each benchmark warms up, then
//! runs enough batches to smooth scheduler noise and reports the median
//! batch's per-operation latency.

use std::time::Instant;

use mehpt_core::MeHpt;
use mehpt_ecpt::{Ecpt, EcptWalker};
use mehpt_hash::{Config, ElasticCuckooTable, ResizeMode, WaySizing};
use mehpt_mem::{AllocCostModel, AllocTag, PhysMem};
use mehpt_radix::{RadixPageTable, RadixWalker};
use mehpt_tlb::MemoryModel;
use mehpt_types::{PageSize, Ppn, Vpn, GIB, MIB};

const BATCHES: usize = 9;

/// Times `ops` iterations of `body` per batch and prints the median
/// batch's nanoseconds per operation.
fn bench(name: &str, ops: u64, mut body: impl FnMut()) {
    // Warm-up batch (untimed).
    for _ in 0..ops {
        body();
    }
    let mut per_op = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..ops {
            body();
        }
        per_op.push(start.elapsed().as_nanos() as f64 / ops as f64);
    }
    per_op.sort_by(|a, b| a.total_cmp(b));
    println!("{:<32} {:>10.1} ns/op", name, per_op[BATCHES / 2]);
}

fn mem() -> PhysMem {
    PhysMem::with_cost_model(GIB, AllocCostModel::zero_cost())
}

fn bench_cuckoo() {
    println!("\nelastic_cuckoo:");
    for (name, mode, sizing) in [
        (
            "  insert/oop_allway",
            ResizeMode::OutOfPlace,
            WaySizing::AllWay,
        ),
        (
            "  insert/inplace_perway",
            ResizeMode::InPlace,
            WaySizing::PerWay,
        ),
    ] {
        // Each "op" is one batch of 20k inserts into a fresh table; report
        // per-insert latency by dividing the op count accordingly.
        const INSERTS: u64 = 20_000;
        bench(name, INSERTS, {
            let mut t = ElasticCuckooTable::<u64, u64>::new(Config {
                resize_mode: mode,
                sizing,
                ..Config::default()
            });
            let mut i = 0u64;
            move || {
                t.insert(i, i);
                i += 1;
                if i % INSERTS == 0 {
                    t = ElasticCuckooTable::new(Config {
                        resize_mode: mode,
                        sizing,
                        ..Config::default()
                    });
                }
            }
        });
    }
    let mut t = ElasticCuckooTable::<u64, u64>::new(Config {
        resize_mode: ResizeMode::InPlace,
        sizing: WaySizing::PerWay,
        ..Config::default()
    });
    for i in 0..20_000u64 {
        t.insert(i, i);
    }
    let mut k = 0u64;
    bench("  lookup/inplace_perway", 100_000, move || {
        k = (k + 7919) % 20_000;
        std::hint::black_box(t.get(&k));
    });
}

fn bench_buddy() {
    println!("\nphys_mem:");
    let mut m = mem();
    bench("  alloc_free_4k", 50_000, move || {
        let chunk = m.alloc(4096, AllocTag::Data).unwrap();
        m.free(chunk);
    });
    let mut m = mem();
    bench("  alloc_free_1m", 50_000, move || {
        let chunk = m.alloc(MIB, AllocTag::PageTable).unwrap();
        m.free(chunk);
    });
}

fn bench_walks() {
    println!("\npage_walk:");
    const PAGES: u64 = 50_000;

    let mut m = mem();
    let mut radix = RadixPageTable::new(&mut m).unwrap();
    for i in 0..PAGES {
        radix
            .map(Vpn(i * 7), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap();
    }
    let mut walker = RadixWalker::paper_default();
    let mut dram = MemoryModel::paper_default();
    let mut i = 0u64;
    bench("  radix", 100_000, move || {
        i = (i + 13) % PAGES;
        std::hint::black_box(walker.walk(
            &radix,
            Vpn(i * 7).base_addr(PageSize::Base4K),
            &mut dram,
        ));
    });

    let mut m = mem();
    let mut ecpt = Ecpt::new(&mut m).unwrap();
    for i in 0..PAGES {
        ecpt.map(Vpn(i * 7), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap();
    }
    let mut walker = EcptWalker::paper_default();
    let mut dram = MemoryModel::paper_default();
    let mut i = 0u64;
    bench("  ecpt", 100_000, move || {
        i = (i + 13) % PAGES;
        std::hint::black_box(walker.walk(&ecpt, Vpn(i * 7).base_addr(PageSize::Base4K), &mut dram));
    });

    let mut m = mem();
    let mut mehpt = MeHpt::new(&mut m).unwrap();
    for i in 0..PAGES {
        mehpt
            .map(Vpn(i * 7), PageSize::Base4K, Ppn(i), &mut m)
            .unwrap();
    }
    let mut walker = EcptWalker::paper_default();
    let mut dram = MemoryModel::paper_default();
    let mut i = 0u64;
    bench("  mehpt", 100_000, move || {
        i = (i + 13) % PAGES;
        std::hint::black_box(walker.walk(
            &mehpt,
            Vpn(i * 7).base_addr(PageSize::Base4K),
            &mut dram,
        ));
    });
}

fn main() {
    bench::announce(
        "Micro-benchmarks: core operation latency on the host",
        "implementation sanity checks (no paper counterpart)",
    );
    bench_cuckoo();
    bench_buddy();
    bench_walks();
}
