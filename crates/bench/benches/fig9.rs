//! Figure 9 — speedup of ME-HPT, ECPT, and Radix, without and with THP,
//! over Radix without THP.

use bench::{apps, geomean, run, RunKey};
use mehpt_sim::PtKind;

fn main() {
    bench::announce(
        "Figure 9: Speedup over Radix (no THP)",
        "Figure 9 (ME-HPT: 1.09x/1.06x over ECPT, 1.23x/1.28x over Radix)",
    );
    println!(
        "{:<9} | {:>7} {:>7} {:>7} | {:>9} {:>9} {:>9}",
        "App", "Radix", "ECPT", "ME-HPT", "RadixTHP", "ECPT+THP", "MEHPT+THP"
    );
    println!("{}", "-".repeat(72));
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
    let mut vs_ecpt = Vec::new();
    let mut vs_ecpt_thp = Vec::new();
    for app in apps() {
        let base = run(&RunKey::paper(app, PtKind::Radix, false));
        let configs = [
            (PtKind::Radix, false),
            (PtKind::Ecpt, false),
            (PtKind::MeHpt, false),
            (PtKind::Radix, true),
            (PtKind::Ecpt, true),
            (PtKind::MeHpt, true),
        ];
        let mut speeds = Vec::new();
        let mut note = String::new();
        for (i, (kind, thp)) in configs.iter().enumerate() {
            let r = run(&RunKey::paper(app, *kind, *thp));
            if let Some(msg) = &r.aborted {
                note = format!("  [{:?} thp={} aborted: {msg}]", kind, thp);
            }
            let s = r.speedup_over(&base);
            cols[i].push(s);
            speeds.push(s);
        }
        println!(
            "{:<9} | {:>7.2} {:>7.2} {:>7.2} | {:>9.2} {:>9.2} {:>9.2}{}",
            app.name(),
            speeds[0],
            speeds[1],
            speeds[2],
            speeds[3],
            speeds[4],
            speeds[5],
            note
        );
        vs_ecpt.push(speeds[2] / speeds[1]);
        vs_ecpt_thp.push(speeds[5] / speeds[4]);
    }
    println!("{}", "-".repeat(72));
    println!(
        "{:<9} | {:>7.2} {:>7.2} {:>7.2} | {:>9.2} {:>9.2} {:>9.2}",
        "GeoMean",
        geomean(&cols[0]),
        geomean(&cols[1]),
        geomean(&cols[2]),
        geomean(&cols[3]),
        geomean(&cols[4]),
        geomean(&cols[5]),
    );
    println!();
    println!(
        "ME-HPT over ECPT: {:.2}x (no THP), {:.2}x (THP)   [paper: 1.09x / 1.06x]",
        geomean(&vs_ecpt),
        geomean(&vs_ecpt_thp)
    );
    println!(
        "ME-HPT over Radix(no THP): {:.2}x; ME-HPT+THP: {:.2}x   [paper: 1.23x / 1.28x]",
        geomean(&cols[2]),
        geomean(&cols[5])
    );
}
