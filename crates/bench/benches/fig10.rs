//! Figure 10 — reduction in page-table memory attained by ME-HPT over the
//! ECPT baseline, decomposed into the in-place-resizing and per-way-resizing
//! contributions, without and with THP.
//!
//! Decomposition follows the ablation logic: the in-place contribution is
//! the extra peak memory a per-way-only build needs over the full design;
//! the per-way contribution is the extra peak memory of an in-place-only
//! build; shares are normalized over the total reduction vs ECPT.

use bench::{apps, run, RunKey, Variant};
use mehpt_sim::PtKind;

fn row(app: mehpt_workloads::App, thp: bool) -> (f64, f64, f64, f64) {
    let key = |kind, variant| RunKey {
        app,
        kind,
        thp,
        variant,
        graph_nodes: 1_000_000,
    };
    let ecpt = run(&key(PtKind::Ecpt, Variant::Full)).pt_peak_bytes as f64;
    let full = run(&key(PtKind::MeHpt, Variant::Full)).pt_peak_bytes as f64;
    let no_inplace = run(&key(PtKind::MeHpt, Variant::NoInPlace)).pt_peak_bytes as f64;
    let no_perway = run(&key(PtKind::MeHpt, Variant::NoPerWay)).pt_peak_bytes as f64;
    let reduction = (ecpt - full).max(0.0);
    let d_inplace = (no_inplace - full).max(0.0);
    let d_perway = (no_perway - full).max(0.0);
    let denom = (d_inplace + d_perway).max(1.0);
    let inplace_share = d_inplace / denom;
    (
        reduction / ecpt.max(1.0),       // fraction of ECPT memory saved
        reduction / (1u64 << 20) as f64, // absolute MB
        inplace_share,
        1.0 - inplace_share,
    )
}

fn main() {
    bench::announce(
        "Figure 10: Page-table memory reduction over ECPT, by technique",
        "Figure 10 (43%/41% savings; in-place 75-80%, per-way 20-25% of it)",
    );
    println!(
        "{:<9} | {:>7} {:>8} {:>9} {:>8} | {:>7} {:>8} {:>9} {:>8}",
        "App", "red%", "abs(MB)", "inplace%", "perway%", "redTHP%", "absTHP", "inplace%", "perway%"
    );
    println!("{}", "-".repeat(88));
    let mut reds = Vec::new();
    let mut reds_thp = Vec::new();
    let mut in_shares = Vec::new();
    for app in apps() {
        let (red, mb, ip, pw) = row(app, false);
        let (red_t, mb_t, ip_t, pw_t) = row(app, true);
        reds.push(red);
        reds_thp.push(red_t);
        in_shares.push(ip);
        println!(
            "{:<9} | {:>6.0}% {:>8.1} {:>8.0}% {:>7.0}% | {:>6.0}% {:>8.1} {:>8.0}% {:>7.0}%",
            app.name(),
            red * 100.0,
            mb,
            ip * 100.0,
            pw * 100.0,
            red_t * 100.0,
            mb_t,
            ip_t * 100.0,
            pw_t * 100.0
        );
    }
    println!("{}", "-".repeat(88));
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "Average reduction: {:.0}% (no THP), {:.0}% (THP); in-place share {:.0}%",
        avg(&reds) * 100.0,
        avg(&reds_thp) * 100.0,
        avg(&in_shares) * 100.0
    );
    println!();
    println!("Paper: 43% (no THP) and 41% (THP) average savings; in-place");
    println!("resizing contributes 75-80% of the savings, per-way 20-25%.");
}
