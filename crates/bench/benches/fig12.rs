//! Figure 12 — final size of each way of the ME-HPT for 4KB pages,
//! without and with THP.

use bench::{apps, fmt_bytes, run, RunKey};
use mehpt_sim::PtKind;

fn fmt_ways(v: &[u64]) -> String {
    if v.is_empty() {
        // The table was never created: it retains the notional initial
        // 8KB way (the paper plots "8KB" for GUPS/SysBench under THP).
        return "8KB*".to_string();
    }
    v.iter()
        .map(|&b| fmt_bytes(b))
        .collect::<Vec<_>>()
        .join(" / ")
}

fn main() {
    bench::announce(
        "Figure 12: Size of each ME-HPT way (4KB tables)",
        "Figure 12 (per-way resizing yields unequal way sizes)",
    );
    println!(
        "{:<9} | {:>26} | {:>26}",
        "App", "ways (no THP)", "ways (THP)"
    );
    println!("{}", "-".repeat(70));
    let mut unequal = 0;
    for app in apps() {
        let plain = run(&RunKey::paper(app, PtKind::MeHpt, false));
        let thp = run(&RunKey::paper(app, PtKind::MeHpt, true));
        if plain
            .way_sizes_4k
            .iter()
            .any(|&s| s != *plain.way_sizes_4k.first().unwrap_or(&0))
        {
            unequal += 1;
        }
        println!(
            "{:<9} | {:>26} | {:>26}",
            app.name(),
            fmt_ways(&plain.way_sizes_4k),
            fmt_ways(&thp.way_sizes_4k),
        );
    }
    println!("{}", "-".repeat(70));
    println!("Applications with unequal way sizes (no THP): {unequal} of 11");
    println!("(* = table never instantiated; retains the initial 8KB way)");
    println!();
    println!("Paper: GUPS/SysBench reach 64MB per way without THP and stay at");
    println!("the initial 8KB with THP; not all ways are equal — per-way");
    println!("resizing at work.");
}
