//! Figure 8 — maximum contiguous memory allocated for the HPTs.
//!
//! Thin wrapper over the `mehpt-lab fig8` preset: the grid definition and
//! renderer live in `crates/lab` (see EXPERIMENTS.md for the full preset
//! map). Prefer the `mehpt-lab` binary for `--jobs`/`--quick` control
//! and JSON/CSV reports.

fn main() {
    std::process::exit(bench::run_preset(mehpt_lab::Preset::Fig8));
}
