//! Figure 8 — maximum size of the contiguous memory allocated for the
//! HPTs, ECPT vs ME-HPT, without and with THP.

use bench::{apps, fmt_bytes, run, RunKey};
use mehpt_sim::PtKind;

fn main() {
    bench::announce(
        "Figure 8: Maximum contiguous memory allocated for the HPTs",
        "Figure 8",
    );
    println!(
        "{:<9} | {:>10} {:>10} | {:>10} {:>10} | {:>10}",
        "App", "ECPT", "ECPT+THP", "ME-HPT", "MEHPT+THP", "reduction"
    );
    println!("{}", "-".repeat(72));
    let mut reductions = Vec::new();
    let mut reductions_thp = Vec::new();
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for app in apps() {
        let ecpt = run(&RunKey::paper(app, PtKind::Ecpt, false));
        let ecpt_thp = run(&RunKey::paper(app, PtKind::Ecpt, true));
        let mehpt = run(&RunKey::paper(app, PtKind::MeHpt, false));
        let mehpt_thp = run(&RunKey::paper(app, PtKind::MeHpt, true));
        let red = 1.0 - mehpt.pt_max_contiguous as f64 / ecpt.pt_max_contiguous.max(1) as f64;
        let red_thp =
            1.0 - mehpt_thp.pt_max_contiguous as f64 / ecpt_thp.pt_max_contiguous.max(1) as f64;
        reductions.push(red);
        reductions_thp.push(red_thp);
        for (g, v) in geo.iter_mut().zip([
            ecpt.pt_max_contiguous,
            ecpt_thp.pt_max_contiguous,
            mehpt.pt_max_contiguous,
            mehpt_thp.pt_max_contiguous,
        ]) {
            g.push(v as f64);
        }
        println!(
            "{:<9} | {:>10} {:>10} | {:>10} {:>10} | {:>9.0}%",
            app.name(),
            fmt_bytes(ecpt.pt_max_contiguous),
            fmt_bytes(ecpt_thp.pt_max_contiguous),
            fmt_bytes(mehpt.pt_max_contiguous),
            fmt_bytes(mehpt_thp.pt_max_contiguous),
            red * 100.0
        );
    }
    println!("{}", "-".repeat(72));
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let avg_thp = reductions_thp.iter().sum::<f64>() / reductions_thp.len() as f64;
    println!(
        "Per-app mean reduction:     {:.0}% (no THP), {:.0}% (THP)",
        avg * 100.0,
        avg_thp * 100.0
    );
    // The paper's headline metric: the reduction of the (geometric) mean
    // contiguous allocation, cf. Table I's GeoMean row (12.7MB for ECPT).
    let g = |i: usize| bench::geomean(&geo[i]);
    println!(
        "GeoMean contiguity: ECPT {:.1}MB -> ME-HPT {:.2}MB ({:.0}% reduction, no THP)",
        g(0) / (1 << 20) as f64,
        g(2) / (1 << 20) as f64,
        (1.0 - g(2) / g(0)) * 100.0
    );
    println!(
        "GeoMean contiguity: ECPT {:.2}MB -> ME-HPT {:.3}MB ({:.0}% reduction, THP)",
        g(1) / (1 << 20) as f64,
        g(3) / (1 << 20) as f64,
        (1.0 - g(3) / g(1)) * 100.0
    );
    println!();
    println!("Paper: 92% (no THP) and 84% (THP) average reduction; the two most");
    println!("demanding workloads (GUPS, SysBench) drop from 64MB to 1MB.");
}
