//! Section III's motivating measurement: cycles to allocate and zero a
//! contiguous chunk as a function of chunk size and fragmentation, and the
//! allocation-failure cliff above 0.7 FMFI.
//!
//! Both views are printed: the calibrated cost model (the cycles the
//! simulator charges) and the *behavioural* result of asking the simulated
//! buddy allocator + fragmenter + compactor for the chunk.

use bench::fmt_bytes;
use mehpt_mem::{AllocCostModel, AllocTag, Fragmenter, PhysMem};
use mehpt_types::rng::Xoshiro256;
use mehpt_types::{GIB, KIB, MIB};

fn main() {
    bench::announce(
        "Allocation cost vs chunk size and fragmentation",
        "Section III (the 4K/5K/750K/13M/120M-cycle measurements)",
    );
    let sizes = [4 * KIB, 8 * KIB, MIB, 8 * MIB, 64 * MIB];
    let fmfis = [0.0, 0.3, 0.5, 0.7, 0.8, 0.9];
    let model = AllocCostModel::paper_calibrated();

    println!("Calibrated model (cycles to allocate + zero):");
    print!("{:<10}", "Chunk");
    for f in fmfis {
        print!("{:>14}", format!("FMFI {f:.1}"));
    }
    println!();
    println!("{}", "-".repeat(10 + 14 * fmfis.len()));
    for size in sizes {
        print!("{:<10}", fmt_bytes(size));
        for f in fmfis {
            print!("{:>14}", group(model.cycles(size, f)));
        }
        println!();
    }

    println!();
    println!("Behaviour on a 4GB simulated machine (allocation outcome):");
    print!("{:<10}", "Chunk");
    for f in fmfis {
        print!("{:>14}", format!("FMFI {f:.1}"));
    }
    println!();
    println!("{}", "-".repeat(10 + 14 * fmfis.len()));
    for size in sizes {
        print!("{:<10}", fmt_bytes(size));
        for f in fmfis {
            let mut mem = PhysMem::new(4 * GIB);
            let mut rng = Xoshiro256::seed_from_u64(7);
            Fragmenter::fragment(&mut mem, f, &mut rng);
            let outcome = match mem.alloc(size, AllocTag::PageTable) {
                Ok(_) if mem.stats().compactions > 0 => "ok (compact)",
                Ok(_) => "ok",
                Err(_) => "FAILS",
            };
            print!("{:>14}", outcome);
        }
        println!();
    }
    println!();
    println!("Paper: at 0.7 FMFI and 2GHz, 4KB/8KB/1MB/8MB/64MB take");
    println!("4K/5K/750K/13M/120M cycles; above 0.7 FMFI the 64MB allocation");
    println!("fails and the ECPT runs cannot finish.");
}

fn group(cycles: u64) -> String {
    if cycles >= 1_000_000 {
        format!("{:.1}M", cycles as f64 / 1e6)
    } else if cycles >= 1_000 {
        format!("{:.1}K", cycles as f64 / 1e3)
    } else {
        cycles.to_string()
    }
}
