//! Figure 13 — fraction of page-table entries physically moved in an
//! upsize of the 4KB tables under ME-HPT (≈0.5 expected: with in-place
//! resizing, the extra hash-key bit keeps about half the entries in place).

use bench::{apps, run, RunKey};
use mehpt_sim::PtKind;

fn main() {
    bench::announce(
        "Figure 13: Fraction of entries moved per 4KB-table upsize (ME-HPT)",
        "Figure 13 (≈0.5 on average)",
    );
    println!("{:<9} | {:>8} {:>8}", "App", "no THP", "THP");
    println!("{}", "-".repeat(32));
    let mut vals = Vec::new();
    for app in apps() {
        let plain = run(&RunKey::paper(app, PtKind::MeHpt, false));
        let thp = run(&RunKey::paper(app, PtKind::MeHpt, true));
        let fmt = |f: f64, ups: &Vec<u64>| {
            if ups.iter().sum::<u64>() == 0 {
                "-".to_string()
            } else {
                format!("{f:.2}")
            }
        };
        if plain.upsizes_per_way_4k.iter().sum::<u64>() > 0 {
            vals.push(plain.moved_fraction_4k);
        }
        println!(
            "{:<9} | {:>8} {:>8}",
            app.name(),
            fmt(plain.moved_fraction_4k, &plain.upsizes_per_way_4k),
            fmt(thp.moved_fraction_4k, &thp.upsizes_per_way_4k),
        );
    }
    println!("{}", "-".repeat(32));
    let avg = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
    println!("Average moved fraction (no THP): {avg:.2}");
    println!();
    println!("Paper: close to the expected 0.5 for every application (out-of-");
    println!("place baselines move 1.0 of the entries). Chunk-size switches");
    println!("(at most one per run) are out-of-place and pull the mean above 0.5.");
}
