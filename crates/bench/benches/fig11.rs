//! Figure 11 — number of upsizing operations per way in the ME-HPT for
//! 4KB pages, without and with THP (plus the 2MB-table upsizes the paper
//! reports in the text).

use bench::{apps, run, RunKey};
use mehpt_sim::PtKind;

fn fmt_ways(v: &[u64]) -> String {
    if v.is_empty() {
        return "0/0/0".to_string();
    }
    v.iter().map(u64::to_string).collect::<Vec<_>>().join("/")
}

fn main() {
    bench::announce(
        "Figure 11: Upsizing operations per way (ME-HPT, 4KB tables)",
        "Figure 11 (avg ~10.6/10.5/9.9 per way; 13 max for GUPS/SysBench)",
    );
    println!(
        "{:<9} | {:>14} {:>14} | {:>14} {:>14}",
        "App", "4KB ways", "4KB ways THP", "2MB ways", "2MB ways THP"
    );
    println!("{}", "-".repeat(74));
    let mut sums = [0.0f64; 3];
    let mut n = 0;
    for app in apps() {
        let plain = run(&RunKey::paper(app, PtKind::MeHpt, false));
        let thp = run(&RunKey::paper(app, PtKind::MeHpt, true));
        println!(
            "{:<9} | {:>14} {:>14} | {:>14} {:>14}",
            app.name(),
            fmt_ways(&plain.upsizes_per_way_4k),
            fmt_ways(&thp.upsizes_per_way_4k),
            fmt_ways(&plain.upsizes_per_way_2m),
            fmt_ways(&thp.upsizes_per_way_2m),
        );
        if plain.upsizes_per_way_4k.len() == 3 {
            for (s, &u) in sums.iter_mut().zip(&plain.upsizes_per_way_4k) {
                *s += u as f64;
            }
            n += 1;
        }
    }
    println!("{}", "-".repeat(74));
    if n > 0 {
        println!(
            "Average upsizes per way (no THP): {:.1} / {:.1} / {:.1}",
            sums[0] / n as f64,
            sums[1] / n as f64,
            sums[2] / n as f64
        );
    }
    println!();
    println!("Paper: ways upsized 10.6/10.5/9.9 times on average (no THP);");
    println!("GUPS/SysBench peak at 13 per way and never upsize their 4KB");
    println!("tables under THP (5 upsizes per way in the 2MB tables instead).");
}
