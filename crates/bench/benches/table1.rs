//! Table I — memory consumption of the applications: data footprint,
//! page-table contiguous memory (radix vs ECPT) and page-table total memory,
//! without and with THP.

use bench::{apps, fmt_mb, run, RunKey};
use mehpt_sim::PtKind;
use mehpt_types::GIB;

fn main() {
    bench::announce("Table I: Memory consumption of our applications", "Table I");
    println!(
        "{:<9} {:>7} | {:>10} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "App", "Data", "Contig", "Contig", "Total", "Total", "Total", "Total"
    );
    println!(
        "{:<9} {:>7} | {:>10} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "", "(GB)", "Tree(KB)", "ECPT(KB)", "TreeMB", "ECPTMB", "TreeTHP", "ECPTTHP"
    );
    println!("{}", "-".repeat(88));
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 7];
    for app in apps() {
        let tree = run(&RunKey::paper(app, PtKind::Radix, false));
        let tree_thp = run(&RunKey::paper(app, PtKind::Radix, true));
        let ecpt = run(&RunKey::paper(app, PtKind::Ecpt, false));
        let ecpt_thp = run(&RunKey::paper(app, PtKind::Ecpt, true));
        let data_gb = tree.data_bytes_nominal as f64 / GIB as f64;
        let cols = [
            data_gb,
            tree.pt_max_contiguous as f64 / 1024.0,
            ecpt.pt_max_contiguous as f64 / 1024.0,
            tree.pt_peak_bytes as f64,
            ecpt.pt_peak_bytes as f64,
            tree_thp.pt_peak_bytes as f64,
            ecpt_thp.pt_peak_bytes as f64,
        ];
        for (g, c) in geo.iter_mut().zip(cols) {
            g.push(c);
        }
        println!(
            "{:<9} {:>7.1} | {:>10.0} {:>10.0} | {:>9} {:>9} | {:>9} {:>9}",
            app.name(),
            data_gb,
            cols[1],
            cols[2],
            fmt_mb(tree.pt_peak_bytes),
            fmt_mb(ecpt.pt_peak_bytes),
            fmt_mb(tree_thp.pt_peak_bytes),
            fmt_mb(ecpt_thp.pt_peak_bytes),
        );
    }
    println!("{}", "-".repeat(88));
    println!(
        "{:<9} {:>7.1} | {:>10.1} {:>10.1} | {:>9.1} {:>9.1} | {:>9.1} {:>9.1}",
        "GeoMean",
        bench::geomean(&geo[0]),
        bench::geomean(&geo[1]),
        bench::geomean(&geo[2]),
        bench::geomean(&geo[3]) / (1 << 20) as f64,
        bench::geomean(&geo[4]) / (1 << 20) as f64,
        bench::geomean(&geo[5]) / (1 << 20) as f64,
        bench::geomean(&geo[6]) / (1 << 20) as f64,
    );
    println!();
    println!("Paper (GeoMean row of Table I): data 13.9GB, tree contiguity 4KB,");
    println!("ECPT contiguity 12.7MB, tree/ECPT totals 23.5/56.0MB (no THP) and 7.9/18.0MB (THP).");
}
