//! Table I — memory consumption of the applications.
//!
//! Thin wrapper over the `mehpt-lab table1` preset: the grid definition and
//! renderer live in `crates/lab` (see EXPERIMENTS.md for the full preset
//! map). Prefer the `mehpt-lab` binary for `--jobs`/`--quick` control
//! and JSON/CSV reports.

fn main() {
    std::process::exit(bench::run_preset(mehpt_lab::Preset::Table1));
}
