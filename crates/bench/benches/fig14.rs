//! Figure 14 — number of L2P table entries used per application (of the
//! 288 available: 32 entries × 3 ways × 3 page sizes).

use bench::{apps, run, RunKey};
use mehpt_sim::PtKind;

fn main() {
    bench::announce(
        "Figure 14: L2P table entries used per application",
        "Figure 14 (11 for TC up to 195 for MUMmer; 52.5 on average)",
    );
    println!("{:<9} | {:>8} {:>8}", "App", "no THP", "THP");
    println!("{}", "-".repeat(32));
    let mut total = 0usize;
    let mut n = 0usize;
    for app in apps() {
        let plain = run(&RunKey::paper(app, PtKind::MeHpt, false));
        let thp = run(&RunKey::paper(app, PtKind::MeHpt, true));
        total += plain.l2p_entries_used + thp.l2p_entries_used;
        n += 2;
        println!(
            "{:<9} | {:>8} {:>8}",
            app.name(),
            plain.l2p_entries_used,
            thp.l2p_entries_used
        );
    }
    println!("{}", "-".repeat(32));
    println!(
        "Average entries used: {:.1} of 288",
        total as f64 / n as f64
    );
    println!();
    println!("Paper: between 11 (TC) and 195 (MUMmer); 52.5 on average; GUPS and");
    println!("SysBench use 192 (all 64 stolen-capacity entries of the three 4KB");
    println!("subtables).");
}
