//! Section V-C / VII-E4: the L2P table lives in the MMU, so the OS saves
//! and restores it on context switches. The paper argues the overhead is
//! modest because applications use only a fraction of the 288 entries
//! (on average ~53) and the valid entries cluster at the subtable ends.
//!
//! This experiment derives the per-application context-switch footprint
//! from the measured L2P usage. The measurement cells are exactly the
//! `fig16` preset's grid (every app, ME-HPT, no THP), run on the lab
//! engine.

use bench::Variant;
use mehpt_lab::Preset;
use mehpt_sim::PtKind;

/// Bits per saved L2P entry (Section V-B: 33-bit chunk base).
const BITS_PER_ENTRY: f64 = 33.0;
/// Modeled cycles per 8 saved/restored bytes (streaming MMU register I/O).
const CYCLES_PER_QWORD: f64 = 4.0;
/// Fixed cost of the save/restore sequence.
const BASE_CYCLES: f64 = 60.0;

fn main() {
    bench::announce(
        "Extension: L2P context-switch save/restore cost",
        "Sections V-C and VII-E4 (~53 entries used on average)",
    );
    let report = bench::run_grid("ctx_switch", &Preset::Fig16.grid());
    println!(
        "{:<9} | {:>9} {:>11} {:>12} | {:>13}",
        "App", "entries", "state(B)", "cycles", "vs full 288"
    );
    println!("{}", "-".repeat(64));
    let mut total_cycles = 0.0;
    let mut rows = 0u32;
    let full_bytes = 288.0 * BITS_PER_ENTRY / 8.0;
    let full_cycles = BASE_CYCLES + 2.0 * CYCLES_PER_QWORD * full_bytes / 8.0;
    for app in bench::apps() {
        let Some(r) = report.metrics(app, PtKind::MeHpt, false, Variant::Full) else {
            println!("{:<9} | (cell missing or failed)", app.name());
            continue;
        };
        let entries = r.l2p_entries_used as f64;
        let bytes = entries * BITS_PER_ENTRY / 8.0;
        // Save on switch-out + restore on switch-in.
        let cycles = BASE_CYCLES + 2.0 * CYCLES_PER_QWORD * bytes / 8.0;
        total_cycles += cycles;
        rows += 1;
        println!(
            "{:<9} | {:>9} {:>10.0}B {:>12.0} | {:>12.0}%",
            app.name(),
            r.l2p_entries_used,
            bytes,
            cycles,
            100.0 * cycles / full_cycles
        );
    }
    println!("{}", "-".repeat(64));
    println!(
        "average: {:.0} cycles per switch (full-table save would be {:.0});",
        total_cycles / f64::from(rows.max(1)),
        full_cycles
    );
    println!("at 1ms time slices and 2GHz that is <0.01% of a slice.");
    println!();
    println!("Paper: applications use 52.5 entries on average; 'the overhead of");
    println!("saving and restoring the L2P table is modest', and in virtualized");
    println!("systems guest L2P tables do not exist at all.");
}
