//! Figure 15 — memory for a 4KB-HPT way for small graph inputs
//! (1K/10K/100K nodes): ME-HPT restricted to 1MB chunks vs the default
//! 8KB+1MB ladder. Small chunk sizes are what keep small processes cheap.

use bench::{run, RunKey, Variant};
use mehpt_sim::PtKind;
use mehpt_workloads::App;

fn avg_way_phys(nodes: u64, variant: Variant) -> f64 {
    let mut total = 0.0;
    let mut ways = 0usize;
    for app in App::graph_apps() {
        let r = run(&RunKey {
            app,
            kind: PtKind::MeHpt,
            thp: false,
            variant,
            graph_nodes: nodes,
        });
        if r.way_phys_4k.is_empty() {
            // never instantiated: one smallest chunk per way
            let chunk = variant.config().chunk_policy.first() as f64;
            total += 3.0 * chunk;
            ways += 3;
        } else {
            total += r.way_phys_4k.iter().sum::<u64>() as f64;
            ways += r.way_phys_4k.len();
        }
    }
    total / ways.max(1) as f64
}

fn main() {
    bench::announce(
        "Figure 15: Average 4KB-HPT way memory for small graphs",
        "Figure 15 (1MB-only wastes memory below ~100K nodes)",
    );
    println!(
        "{:<14} | {:>16} {:>16}",
        "Graph nodes", "ME-HPT 1MB", "ME-HPT 1MB+8KB"
    );
    println!("{}", "-".repeat(52));
    for nodes in [1_000u64, 10_000, 100_000] {
        let fixed = avg_way_phys(nodes, Variant::Fixed1Mb);
        let ladder = avg_way_phys(nodes, Variant::Full);
        println!(
            "{:<14} | {:>14.0}KB {:>14.0}KB",
            nodes,
            fixed / 1024.0,
            ladder / 1024.0
        );
    }
    println!();
    println!("Paper: ~16KB and ~128KB ways for 1K/10K nodes with the 8KB+1MB");
    println!("ladder, while the 1MB-only design burns a full 1MB per way;");
    println!("at 100K nodes both need about 1MB and converge.");
}
