//! Figure 7 — cycles per access across the fragmentation (FMFI) sweep.
//!
//! Thin wrapper over the `mehpt-lab fig7` preset: the grid definition and
//! renderer live in `crates/lab` (see EXPERIMENTS.md for the full preset
//! map). Prefer the `mehpt-lab` binary for `--jobs`/`--seeds`/`--quick`
//! control and JSON/CSV reports; set `MEHPT_SEEDS` here for CI bands.

fn main() {
    std::process::exit(bench::run_preset(mehpt_lab::Preset::Fig7));
}
