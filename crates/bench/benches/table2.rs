//! Table II — maximum HPT way sizes and maximum total HPT mapping space
//! for each chunk size. Analytic: derived directly from the design's
//! constants (64 L2P entries per subtable after stealing, 64-byte cluster
//! entries holding 8 translations, 3 ways).

use bench::fmt_bytes;
use mehpt_core::ChunkSizePolicy;
use mehpt_ecpt::{ClusterEntry, CLUSTER_PTES};
use mehpt_types::PageSize;

fn main() {
    bench::announce(
        "Table II: Maximum HPT way sizes and mapping space per chunk size",
        "Table II",
    );
    // With stealing, one subtable can hold 2 × 32 = 64 chunk pointers.
    let max_chunks: u64 = 64;
    let ways: u64 = 3;
    println!(
        "{:<10} {:>14} {:>24} {:>24}",
        "Chunk", "Max way size", "Map space (4KB pages)", "Map space (2MB pages)"
    );
    println!("{}", "-".repeat(76));
    for &chunk in ChunkSizePolicy::paper_default().sizes() {
        let way_bytes = max_chunks * chunk;
        let entries = ways * way_bytes / ClusterEntry::BYTES;
        let pages = entries * CLUSTER_PTES as u64;
        let space_4k = pages * PageSize::Base4K.bytes();
        let space_2m = pages * PageSize::Huge2M.bytes();
        println!(
            "{:<10} {:>14} {:>24} {:>24}",
            fmt_bytes(chunk),
            fmt_bytes(way_bytes),
            fmt_bytes(space_4k),
            fmt_bytes(space_2m)
        );
    }
    println!();
    println!("Paper: 8KB→512KB way, 768MB / 384GB; 1MB→64MB way, 96GB / 48TB;");
    println!("       8MB→512MB way, 768GB / 384TB; 64MB→4GB way, 6TB / 3PB.");
}
