//! Table II — max HPT way sizes and mapping space per chunk size (analytic).
//!
//! Thin wrapper over the `mehpt-lab table2` preset: the grid definition and
//! renderer live in `crates/lab` (see EXPERIMENTS.md for the full preset
//! map). Prefer the `mehpt-lab` binary for `--jobs`/`--quick` control
//! and JSON/CSV reports.

fn main() {
    std::process::exit(bench::run_preset(mehpt_lab::Preset::Table2));
}
