//! Section IX's comparison with Level Hashing (Zuo et al., OSDI'18): the
//! only other hashing scheme with a form of in-place resizing. Level
//! hashing trades more probes per lookup (up to 4) for fewer entry moves
//! per resize (~1/3); ME-HPT's in-place cuckoo resizing keeps W (=3)
//! parallel probes and moves ~1/2.

use mehpt_hash::{Config, ElasticCuckooTable, LevelHashTable, ResizeMode, WaySizing};

fn main() {
    bench::announce(
        "In-place elastic cuckoo hashing vs Level Hashing",
        "Section IX (4 probes & 1/3 moved vs 3 probes & 1/2 moved)",
    );
    const N: u64 = 400_000;

    // Elastic cuckoo, in-place, per-way (the ME-HPT hashing core).
    let mut cuckoo = ElasticCuckooTable::new(Config {
        resize_mode: ResizeMode::InPlace,
        sizing: WaySizing::PerWay,
        ..Config::default()
    });
    for i in 0..N {
        cuckoo.insert(i, i);
    }
    for i in 0..N {
        assert_eq!(cuckoo.get(&i), Some(&i));
    }
    let cuckoo_moved = cuckoo.stats().mean_upsize_moved_fraction();
    let cuckoo_peak = cuckoo.stats().peak_bytes;

    // Level hashing.
    let mut level: LevelHashTable<u64, u64> = LevelHashTable::new(64, 9);
    for i in 0..N {
        level.insert(i, i);
    }
    for i in 0..N {
        assert_eq!(level.get(&i), Some(&i));
    }
    let level_stats = level.stats().clone();

    println!(
        "{:<28} {:>16} {:>16}",
        "metric", "in-place cuckoo", "level hashing"
    );
    println!("{}", "-".repeat(62));
    println!(
        "{:<28} {:>16} {:>16.2}",
        "probes per lookup",
        "3 (parallel)",
        level_stats.probes_per_lookup()
    );
    println!(
        "{:<28} {:>16.2} {:>16.2}",
        "entries moved per resize",
        cuckoo_moved,
        level_stats.moved_fraction()
    );
    println!(
        "{:<28} {:>16} {:>16}",
        "peak memory",
        bench::fmt_bytes(cuckoo_peak),
        bench::fmt_bytes(level.memory_bytes())
    );
    println!(
        "{:<28} {:>16.3} {:>16}",
        "mean cuckoo re-insertions",
        cuckoo.stats().mean_kicks(),
        "-"
    );
    println!();
    println!("Paper: level hashing needs 4 memory accesses per lookup but moves");
    println!("only 1/3 of entries per resize; ME-HPT's in-place resizing moves");
    println!("~1/2 with no extra references per lookup, and the old table");
    println!("becomes part of the new one (no deallocation-driven fragmentation).");
}
