//! Figure 16 — distribution of cuckoo re-insertions per ME-HPT insertion
//! or rehash, pooled over all applications (no THP).

use bench::{apps, run, RunKey};
use mehpt_sim::PtKind;

fn main() {
    bench::announce(
        "Figure 16: Cuckoo re-insertions per insertion or rehash (ME-HPT)",
        "Figure 16 (P(0) ≈ 0.64, mean ≈ 0.7)",
    );
    let mut hist: Vec<u64> = Vec::new();
    for app in apps() {
        let r = run(&RunKey::paper(app, PtKind::MeHpt, false));
        if hist.len() < r.kicks_histogram.len() {
            hist.resize(r.kicks_histogram.len(), 0);
        }
        for (dst, &src) in hist.iter_mut().zip(&r.kicks_histogram) {
            *dst += src;
        }
    }
    let total: u64 = hist.iter().sum();
    println!("{:<14} {:>12} {:>10}", "re-insertions", "events", "P");
    println!("{}", "-".repeat(38));
    let mut mean = 0.0;
    for (n, &count) in hist.iter().enumerate().take(12) {
        let p = count as f64 / total.max(1) as f64;
        mean += n as f64 * p;
        let bar = "#".repeat((p * 50.0).round() as usize);
        println!("{:<14} {:>12} {:>9.3} {}", n, count, p, bar);
    }
    let tail: u64 = hist.iter().skip(12).sum();
    if tail > 0 {
        println!(
            "{:<14} {:>12} {:>9.3}",
            "12+",
            tail,
            tail as f64 / total as f64
        );
    }
    // Include the tail in the mean.
    mean += hist
        .iter()
        .enumerate()
        .skip(12)
        .map(|(n, &c)| n as f64 * c as f64 / total.max(1) as f64)
        .sum::<f64>();
    println!("{}", "-".repeat(38));
    println!(
        "P(0 re-insertions) = {:.2}, mean = {:.2}",
        hist.first().copied().unwrap_or(0) as f64 / total.max(1) as f64,
        mean
    );
    println!();
    println!("Paper: no re-insertion needed with probability 0.64; 0.7");
    println!("re-insertions per insertion or rehash on average.");
}
