//! The paper's scalability motivation (Sections I/II-A): radix trees get
//! *slower* as address spaces grow — Intel's la57 adds a fifth level, i.e.
//! a fifth dependent memory access on a cold walk — while a hashed page
//! table stays at one (parallel) access regardless of address-space size.
//!
//! This extension experiment measures mean walk latency over random
//! lookups for 4-level radix, 5-level radix and ME-HPT at growing
//! footprints.

use mehpt_core::MeHpt;
use mehpt_ecpt::EcptWalker;
use mehpt_mem::{AllocCostModel, PhysMem};
use mehpt_radix::{RadixPageTable, RadixWalker};
use mehpt_tlb::MemoryModel;
use mehpt_types::rng::Xoshiro256;
use mehpt_types::{PageSize, Ppn, Vpn, GIB};

const LOOKUPS: u64 = 200_000;

fn mem() -> PhysMem {
    PhysMem::with_cost_model(8 * GIB, AllocCostModel::zero_cost())
}

/// Sparse random VPNs over a 44-bit VA space (defeats the PWCs, like the
/// paper's big-memory applications).
fn vpns(count: u64) -> Vec<Vpn> {
    let mut rng = Xoshiro256::seed_from_u64(1234);
    (0..count).map(|_| Vpn(rng.next_below(1 << 32))).collect()
}

fn main() {
    bench::announce(
        "Extension: radix depth vs hashed translation at scale",
        "Sections I/II-A (la57 motivation; 'hardly scalable')",
    );
    println!(
        "{:<12} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "pages", "warm rdx4", "warm rdx5", "warm HPT", "cold rdx4", "cold rdx5", "cold HPT"
    );
    println!("  (mean walk cycles; cold = walker caches flushed before the walk)");
    println!("{}", "-".repeat(86));
    for pages in [10_000u64, 100_000, 1_000_000] {
        let vpns = vpns(pages);
        // Build all three tables with identical mappings.
        let mut m4 = mem();
        let mut m5 = mem();
        let mut mh = mem();
        let mut pt4 = RadixPageTable::new(&mut m4).unwrap();
        let mut pt5 = RadixPageTable::with_levels(5, &mut m5).unwrap();
        let mut hpt = MeHpt::new(&mut mh).unwrap();
        for (i, &vpn) in vpns.iter().enumerate() {
            let ppn = Ppn(i as u64);
            let _ = pt4.map(vpn, PageSize::Base4K, ppn, &mut m4);
            let _ = pt5.map(vpn, PageSize::Base4K, ppn, &mut m5);
            let _ = hpt.map(vpn, PageSize::Base4K, ppn, &mut mh);
        }
        // Random lookups with realistic cache behaviour.
        let mut w4 = RadixWalker::paper_default();
        let mut w5 = RadixWalker::paper_default();
        let mut wh = EcptWalker::paper_default();
        let mut d4 = MemoryModel::paper_default();
        let mut d5 = MemoryModel::paper_default();
        let mut dh = MemoryModel::paper_default();
        let mut rng = Xoshiro256::seed_from_u64(99);
        for _ in 0..LOOKUPS {
            let vpn = vpns[rng.next_index(vpns.len())];
            let va = vpn.base_addr(PageSize::Base4K);
            w4.walk(&pt4, va, &mut d4);
            w5.walk(&pt5, va, &mut d5);
            wh.walk(&hpt, va, &mut dh);
        }
        // Cold walks (PWC/CWC and caches flushed each time): the raw
        // dependent-chain length, where la57's extra level shows.
        let mut cold = [0u64; 3];
        for i in 0..500 {
            let va = vpns[(i * 37) % vpns.len()].base_addr(PageSize::Base4K);
            w4.flush();
            w5.flush();
            wh.flush();
            let mut dc4 = MemoryModel::paper_default();
            let mut dc5 = MemoryModel::paper_default();
            let mut dch = MemoryModel::paper_default();
            cold[0] += w4.walk(&pt4, va, &mut dc4).cycles;
            cold[1] += w5.walk(&pt5, va, &mut dc5).cycles;
            cold[2] += wh.walk(&hpt, va, &mut dch).cycles;
        }
        println!(
            "{:<12} | {:>10.0} {:>10.0} {:>10.0} | {:>10.0} {:>10.0} {:>10.0}",
            pages,
            w4.mean_cycles(),
            w5.mean_cycles(),
            wh.mean_cycles(),
            cold[0] as f64 / 500.0,
            cold[1] as f64 / 500.0,
            cold[2] as f64 / 500.0,
        );
    }
    println!();
    println!("Warm radix walks degrade as the footprint overflows the PWCs.");
    println!("Cold walks expose the dependent chain: 4 vs 5 vs 1 memory round");
    println!("trips — the paper's scalability argument for hashed translation.");
}
