//! Shared harness for the benchmark targets that regenerate every table and
//! figure of *Memory-Efficient Hashed Page Tables* (HPCA 2023).
//!
//! The heavy lifting lives in the `mehpt-lab` crate: each paper table or
//! figure is a [`Preset`] there, and the `[[bench]]` targets here
//! (`table1`, `fig8` … `fig16`) are thin wrappers that run the matching
//! preset on the lab's parallel, deterministic engine. Prefer the
//! `mehpt-lab` binary directly — it adds `--jobs`, `--quick`, fragmentation
//! sweeps and structured JSON/CSV reports; these targets exist so
//! `cargo bench --bench fig9` keeps working.
//!
//! Environment knobs:
//!
//! * `MEHPT_SCALE` — scales workload footprints and access counts
//!   (default `1.0`, the calibrated paper-matching size; use e.g. `0.1`
//!   for a quick pass).
//! * `MEHPT_JOBS` — worker threads (default: available parallelism).
//!   Results are identical for every value.
//! * `MEHPT_SEEDS` — replicates per cell (default 1); reports gain
//!   mean/min/max/95% CI aggregates over the replicate seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mehpt_lab::cli::LabArgs;
use mehpt_lab::engine::{run_cells, RunOptions};
use mehpt_lab::{ExperimentGrid, LabReport, Preset, Tuning};
use mehpt_workloads::App;

pub use mehpt_lab::fmt::{fmt_bytes, fmt_mb, geomean};
pub use mehpt_lab::Variant;

/// The workload scale factor from `MEHPT_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("MEHPT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Worker threads from `MEHPT_JOBS` (default 0 = available parallelism).
pub fn jobs() -> usize {
    std::env::var("MEHPT_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Replicates per cell from `MEHPT_SEEDS` (default 1; clamped to >= 1).
pub fn seeds() -> u32 {
    std::env::var("MEHPT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// The lab tuning the bench targets run under (`MEHPT_SCALE` applied).
pub fn tuning() -> Tuning {
    Tuning {
        scale: scale(),
        ..Tuning::default()
    }
}

/// Runs one lab preset with the environment's scale/jobs and returns its
/// exit code (0 unless a cell panicked).
pub fn run_preset(preset: Preset) -> i32 {
    // Bench executables run with CWD = crates/bench; anchor the reports at
    // the workspace target/ like a root `mehpt-lab` invocation would.
    let mut out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    out.push("target");
    out.push("lab");
    let args = LabArgs {
        presets: vec![preset],
        jobs: jobs(),
        seeds: seeds(),
        tuning: tuning(),
        out,
        ..LabArgs::default()
    };
    mehpt_lab::cli::run(&args)
}

/// Expands and runs an ad-hoc grid on the lab engine (progress on stderr)
/// and returns the assembled report. Used by the targets that need cells
/// outside any preset (`ablation`, `ctx_switch`).
pub fn run_grid(name: &str, grid: &ExperimentGrid) -> LabReport {
    let t = tuning();
    let specs = grid.expand(&t);
    let opts = RunOptions {
        jobs: jobs(),
        seeds: seeds(),
        retries: 0,
        timeout: None,
    };
    let cells = run_cells(&specs, &opts, &|p| {
        eprintln!(
            "[{:>3}/{}] {:>7}  {}",
            p.done,
            p.total,
            p.status.label(),
            p.id
        );
    });
    LabReport {
        preset: name.to_string(),
        scale: t.scale,
        base_seed: t.base_seed,
        seeds: seeds(),
        retries: 0,
        timeout_secs: None,
        fault: None,
        cells,
    }
}

/// Prints the banner for one experiment.
pub fn announce(title: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("  (reproduces {paper_ref}; MEHPT_SCALE={})", scale());
    println!("================================================================");
}

/// All eleven apps in the paper's order.
pub fn apps() -> [App; 11] {
    App::all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mehpt_sim::PtKind;

    #[test]
    fn ad_hoc_grids_run_on_the_lab_engine() {
        let grid = ExperimentGrid::paper(vec![App::Mummer], vec![PtKind::MeHpt], vec![false]);
        let t = Tuning {
            scale: 0.002,
            ..Tuning::quick()
        };
        let specs = grid.expand(&t);
        let cells = run_cells(&specs, &RunOptions::with_jobs(1), &|_| {});
        assert_eq!(cells.len(), 1);
        assert!(cells[0].metrics.is_some());
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
    }
}
