//! Shared harness for the benchmark targets that regenerate every table and
//! figure of *Memory-Efficient Hashed Page Tables* (HPCA 2023).
//!
//! Each `[[bench]]` target (`table1`, `fig8` … `fig16`, `alloc_cost`,
//! `ablation`, `levelhash`) is a standalone binary printing the same rows or
//! series the paper reports. Because most figures derive from the same
//! simulation runs, completed [`SimReport`]s are cached on disk under
//! `target/mehpt-results/`; the first bench target to need a run performs
//! it, later targets reload it.
//!
//! Environment knobs:
//!
//! * `MEHPT_SCALE` — scales workload footprints and access counts
//!   (default `1.0`, the calibrated paper-matching size; use e.g. `0.1`
//!   for a quick pass).
//! * `MEHPT_RESULTS` — overrides the cache directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use mehpt_core::{ChunkSizePolicy, MeHptConfig};
use mehpt_sim::{PtKind, SimConfig, SimReport, Simulator};
use mehpt_workloads::{App, WorkloadCfg};

/// Bump to invalidate all cached runs after a model change.
const CACHE_VERSION: u32 = 5;

/// The workload scale factor from `MEHPT_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("MEHPT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// An ME-HPT design variant for the ablation experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The full design (both techniques on).
    Full,
    /// In-place resizing disabled (per-way only).
    NoInPlace,
    /// Per-way resizing disabled (in-place only).
    NoPerWay,
    /// Both disabled: chunked storage only.
    Neither,
    /// Single-size 1MB chunk ladder (Figure 15's `ME-HPT 1MB`).
    Fixed1Mb,
}

impl Variant {
    /// Short cache/display tag.
    pub fn tag(self) -> &'static str {
        match self {
            Variant::Full => "full",
            Variant::NoInPlace => "noinplace",
            Variant::NoPerWay => "noperway",
            Variant::Neither => "neither",
            Variant::Fixed1Mb => "fixed1mb",
        }
    }

    /// The ME-HPT configuration for this variant.
    pub fn config(self) -> MeHptConfig {
        let base = MeHptConfig::default();
        match self {
            Variant::Full => base,
            Variant::NoInPlace => MeHptConfig {
                in_place: false,
                ..base
            },
            Variant::NoPerWay => MeHptConfig {
                per_way: false,
                ..base
            },
            Variant::Neither => MeHptConfig {
                in_place: false,
                per_way: false,
                ..base
            },
            Variant::Fixed1Mb => MeHptConfig {
                chunk_policy: ChunkSizePolicy::fixed(1 << 20),
                ..base
            },
        }
    }
}

/// Identifies one simulation run for caching.
#[derive(Clone, Debug)]
pub struct RunKey {
    /// Application under test.
    pub app: App,
    /// Page-table organization.
    pub kind: PtKind,
    /// THP on/off.
    pub thp: bool,
    /// ME-HPT variant (ignored for radix/ECPT).
    pub variant: Variant,
    /// Graph node count (graph apps only).
    pub graph_nodes: u64,
}

impl RunKey {
    /// A paper-default run of `app` under `kind` (±THP).
    pub fn paper(app: App, kind: PtKind, thp: bool) -> RunKey {
        RunKey {
            app,
            kind,
            thp,
            variant: Variant::Full,
            graph_nodes: 1_000_000,
        }
    }

    fn filename(&self, scale: f64) -> String {
        format!(
            "v{}-{}-{:?}-{}-{}-{}-s{}.run",
            CACHE_VERSION,
            self.app.name(),
            self.kind,
            if self.thp { "thp" } else { "nothp" },
            self.variant.tag(),
            self.graph_nodes,
            scale,
        )
    }
}

fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("MEHPT_RESULTS") {
        return PathBuf::from(dir);
    }
    // CARGO_MANIFEST_DIR = crates/bench; cache under the workspace target.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("target");
    p.push("mehpt-results");
    p
}

/// Runs (or reloads from cache) one simulation.
pub fn run(key: &RunKey) -> SimReport {
    let s = scale();
    let dir = results_dir();
    let path = dir.join(key.filename(s));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Some(report) = decode(&text) {
            return report;
        }
    }
    eprintln!(
        "  [running {} / {:?} / thp={} / {} …]",
        key.app.name(),
        key.kind,
        key.thp,
        key.variant.tag()
    );
    let wl = key.app.build(&WorkloadCfg {
        scale: s,
        seed: 42,
        graph_nodes: key.graph_nodes,
    });
    let mut cfg = SimConfig::paper(key.kind, key.thp);
    cfg.mehpt = key.variant.config();
    let report = Simulator::run(wl, cfg);
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(&path, encode(&report));
    report
}

// ---- SimReport text codec (no external serialization deps) ----

fn encode(r: &SimReport) -> String {
    let mut s = String::new();
    let join = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
    let _ = writeln!(s, "app={}", r.app);
    let _ = writeln!(s, "kind={:?}", r.kind);
    let _ = writeln!(s, "thp={}", r.thp);
    let _ = writeln!(s, "accesses={}", r.accesses);
    let _ = writeln!(s, "total_cycles={}", r.total_cycles);
    let _ = writeln!(s, "base_cycles={}", r.base_cycles);
    let _ = writeln!(s, "translation_cycles={}", r.translation_cycles);
    let _ = writeln!(s, "fault_cycles={}", r.fault_cycles);
    let _ = writeln!(s, "alloc_cycles={}", r.alloc_cycles);
    let _ = writeln!(s, "os_pt_cycles={}", r.os_pt_cycles);
    let _ = writeln!(s, "faults={}", r.faults);
    let _ = writeln!(s, "pages_4k={}", r.pages_4k);
    let _ = writeln!(s, "pages_2m={}", r.pages_2m);
    let _ = writeln!(s, "tlb_miss_rate={}", r.tlb_miss_rate);
    let _ = writeln!(s, "walks={}", r.walks);
    let _ = writeln!(s, "mean_walk_accesses={}", r.mean_walk_accesses);
    let _ = writeln!(s, "mean_walk_cycles={}", r.mean_walk_cycles);
    let _ = writeln!(s, "pt_final_bytes={}", r.pt_final_bytes);
    let _ = writeln!(s, "pt_peak_bytes={}", r.pt_peak_bytes);
    let _ = writeln!(s, "pt_max_contiguous={}", r.pt_max_contiguous);
    let _ = writeln!(s, "way_sizes_4k={}", join(&r.way_sizes_4k));
    let _ = writeln!(s, "way_phys_4k={}", join(&r.way_phys_4k));
    let _ = writeln!(s, "upsizes_per_way_4k={}", join(&r.upsizes_per_way_4k));
    let _ = writeln!(s, "upsizes_per_way_2m={}", join(&r.upsizes_per_way_2m));
    let _ = writeln!(s, "moved_fraction_4k={}", r.moved_fraction_4k);
    let _ = writeln!(s, "kicks_histogram={}", join(&r.kicks_histogram));
    let _ = writeln!(s, "l2p_entries_used={}", r.l2p_entries_used);
    let _ = writeln!(s, "chunk_switches={}", r.chunk_switches);
    let _ = writeln!(s, "data_bytes_nominal={}", r.data_bytes_nominal);
    let _ = writeln!(s, "aborted={}", r.aborted.clone().unwrap_or_default());
    s
}

fn decode(text: &str) -> Option<SimReport> {
    let map: HashMap<&str, &str> = text.lines().filter_map(|l| l.split_once('=')).collect();
    let get = |k: &str| map.get(k).copied();
    let num = |k: &str| get(k)?.parse::<u64>().ok();
    let fnum = |k: &str| get(k)?.parse::<f64>().ok();
    let vec = |k: &str| -> Option<Vec<u64>> {
        let v = get(k)?;
        if v.is_empty() {
            return Some(Vec::new());
        }
        v.split(',').map(|x| x.parse().ok()).collect()
    };
    let kind = match get("kind")? {
        "Radix" => PtKind::Radix,
        "Ecpt" => PtKind::Ecpt,
        "MeHpt" => PtKind::MeHpt,
        _ => return None,
    };
    let aborted = match get("aborted")? {
        "" => None,
        msg => Some(msg.to_string()),
    };
    Some(SimReport {
        app: get("app")?.to_string(),
        kind,
        thp: get("thp")? == "true",
        accesses: num("accesses")?,
        total_cycles: num("total_cycles")?,
        base_cycles: num("base_cycles")?,
        translation_cycles: num("translation_cycles")?,
        fault_cycles: num("fault_cycles")?,
        alloc_cycles: num("alloc_cycles")?,
        os_pt_cycles: num("os_pt_cycles")?,
        faults: num("faults")?,
        pages_4k: num("pages_4k")?,
        pages_2m: num("pages_2m")?,
        tlb_miss_rate: fnum("tlb_miss_rate")?,
        walks: num("walks")?,
        mean_walk_accesses: fnum("mean_walk_accesses")?,
        mean_walk_cycles: fnum("mean_walk_cycles")?,
        pt_final_bytes: num("pt_final_bytes")?,
        pt_peak_bytes: num("pt_peak_bytes")?,
        pt_max_contiguous: num("pt_max_contiguous")?,
        way_sizes_4k: vec("way_sizes_4k")?,
        way_phys_4k: vec("way_phys_4k")?,
        upsizes_per_way_4k: vec("upsizes_per_way_4k")?,
        upsizes_per_way_2m: vec("upsizes_per_way_2m")?,
        moved_fraction_4k: fnum("moved_fraction_4k")?,
        kicks_histogram: vec("kicks_histogram")?,
        l2p_entries_used: num("l2p_entries_used")? as usize,
        chunk_switches: num("chunk_switches")?,
        data_bytes_nominal: num("data_bytes_nominal")?,
        aborted,
    })
}

// ---- output helpers ----

/// Prints the banner for one experiment.
pub fn announce(title: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("  (reproduces {paper_ref}; MEHPT_SCALE={})", scale());
    println!("================================================================");
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats bytes the way the paper's tables do (KB/MB/GB).
pub fn fmt_bytes(bytes: u64) -> String {
    mehpt_types::ByteSize(bytes).to_string()
}

/// Formats a byte count in MB with one decimal (Table I style).
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

/// All eleven apps in the paper's order.
pub fn apps() -> [App; 11] {
    App::all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let key = RunKey::paper(App::Mummer, PtKind::MeHpt, false);
        std::env::set_var("MEHPT_SCALE", "0.002");
        std::env::set_var(
            "MEHPT_RESULTS",
            std::env::temp_dir().join("mehpt-test-cache"),
        );
        let first = run(&key);
        let again = run(&key); // must come from cache
        assert_eq!(first.total_cycles, again.total_cycles);
        assert_eq!(first.way_sizes_4k, again.way_sizes_4k);
        assert_eq!(first.kicks_histogram, again.kicks_histogram);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn variants_toggle_the_right_switches() {
        assert!(!Variant::NoInPlace.config().in_place);
        assert!(Variant::NoInPlace.config().per_way);
        assert!(!Variant::Neither.config().per_way);
        assert_eq!(Variant::Fixed1Mb.config().chunk_policy.first(), 1 << 20);
    }
}
