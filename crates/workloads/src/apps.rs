use mehpt_types::{VirtAddr, GIB, MIB};

use crate::trace::{Phase, Region, Workload};

/// The eleven applications of the paper's evaluation (Section VI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum App {
    Bc,
    Bfs,
    Cc,
    Dc,
    Dfs,
    Gups,
    Mummer,
    Pr,
    Sssp,
    Sysbench,
    Tc,
}

/// Workload construction parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadCfg {
    /// Scales every footprint and access count (1.0 = the calibrated,
    /// paper-matching size; smaller values for quick tests).
    pub scale: f64,
    /// Trace seed.
    pub seed: u64,
    /// Graph size for the GraphBIG applications (the paper's default input
    /// is 1M nodes; Figure 15 uses 1K/10K/100K).
    pub graph_nodes: u64,
}

impl Default for WorkloadCfg {
    fn default() -> WorkloadCfg {
        WorkloadCfg {
            scale: 1.0,
            seed: 42,
            graph_nodes: 1_000_000,
        }
    }
}

/// Per-application calibration: touched footprints chosen so the resulting
/// page-table sizes match Table I (see DESIGN.md §3 and §6).
struct GraphSpec {
    name: &'static str,
    nominal_gb: f64,
    /// Dense pages touched at 1M nodes (drives the ECPT way size).
    dense_pages: u64,
    /// Probability a steady-state access is a random property gather.
    rand_ratio: f64,
}

const GRAPH_SPECS: &[(App, GraphSpec)] = &[
    (
        App::Bc,
        GraphSpec {
            name: "BC",
            nominal_gb: 17.3,
            dense_pages: 1_260_000,
            rand_ratio: 0.50,
        },
    ),
    (
        App::Bfs,
        GraphSpec {
            name: "BFS",
            nominal_gb: 9.3,
            dense_pages: 2_400_000,
            rand_ratio: 0.50,
        },
    ),
    (
        App::Cc,
        GraphSpec {
            name: "CC",
            nominal_gb: 9.3,
            dense_pages: 2_420_000,
            rand_ratio: 0.45,
        },
    ),
    (
        App::Dc,
        GraphSpec {
            name: "DC",
            nominal_gb: 9.3,
            dense_pages: 2_380_000,
            rand_ratio: 0.25,
        },
    ),
    (
        App::Dfs,
        GraphSpec {
            name: "DFS",
            nominal_gb: 9.0,
            dense_pages: 2_360_000,
            rand_ratio: 0.60,
        },
    ),
    (
        App::Pr,
        GraphSpec {
            name: "PR",
            nominal_gb: 9.3,
            dense_pages: 2_400_000,
            rand_ratio: 0.35,
        },
    ),
    (
        App::Sssp,
        GraphSpec {
            name: "SSSP",
            nominal_gb: 9.3,
            dense_pages: 2_410_000,
            rand_ratio: 0.55,
        },
    ),
    (
        App::Tc,
        GraphSpec {
            name: "TC",
            nominal_gb: 11.9,
            dense_pages: 315_000,
            rand_ratio: 0.30,
        },
    ),
];

impl App {
    /// All applications, in the paper's table order.
    pub fn all() -> [App; 11] {
        [
            App::Bc,
            App::Bfs,
            App::Cc,
            App::Dc,
            App::Dfs,
            App::Gups,
            App::Mummer,
            App::Pr,
            App::Sssp,
            App::Sysbench,
            App::Tc,
        ]
    }

    /// The eight GraphBIG applications.
    pub fn graph_apps() -> [App; 8] {
        [
            App::Bc,
            App::Bfs,
            App::Cc,
            App::Dc,
            App::Dfs,
            App::Pr,
            App::Sssp,
            App::Tc,
        ]
    }

    /// The application's display name.
    pub fn name(self) -> &'static str {
        match self {
            App::Gups => "GUPS",
            App::Mummer => "MUMmer",
            App::Sysbench => "SysBench",
            app => {
                &GRAPH_SPECS
                    .iter()
                    .find(|(a, _)| *a == app)
                    .expect("graph app")
                    .1
                    .name
            }
        }
    }

    /// Whether this is a GraphBIG application (affected by `graph_nodes`).
    pub fn is_graph(self) -> bool {
        GRAPH_SPECS.iter().any(|(a, _)| *a == self)
    }

    /// Builds the calibrated workload trace.
    pub fn build(self, cfg: &WorkloadCfg) -> Workload {
        match self {
            App::Gups => build_gups(cfg),
            App::Sysbench => build_sysbench(cfg),
            App::Mummer => build_mummer(cfg),
            graph => build_graph(graph, cfg),
        }
    }
}

fn scaled(v: u64, scale: f64) -> u64 {
    ((v as f64 * scale) as u64).max(1)
}

/// Base virtual addresses keep regions far apart (distinct PUD regions).
const REGION_BASES: [u64; 3] = [0x1000_0000_0000, 0x2000_0000_0000, 0x3000_0000_0000];

fn region(name: &'static str, idx: usize, bytes: u64, thp: bool) -> Region {
    Region {
        name,
        base: VirtAddr::new(REGION_BASES[idx]),
        bytes: bytes.next_multiple_of(2 * MIB),
        thp_eligible: thp,
    }
}

/// A GraphBIG application: dense vertex-property and edge arrays loaded
/// sequentially, then a steady state mixing a wrapping edge scan with
/// random property gathers. Graph regions are not THP-friendly (the paper:
/// graph applications see no page-table change under THP).
fn build_graph(app: App, cfg: &WorkloadCfg) -> Workload {
    let spec = &GRAPH_SPECS
        .iter()
        .find(|(a, _)| *a == app)
        .expect("graph app")
        .1;
    let node_scale = cfg.graph_nodes as f64 / 1_000_000.0;
    let dense_pages = scaled(spec.dense_pages, cfg.scale * node_scale);
    let props_pages = (dense_pages * 3 / 5).max(1);
    let edges_pages = (dense_pages - props_pages).max(1);
    let regions = vec![
        region("props", 0, props_pages * 4096, false),
        region("edges", 1, edges_pages * 4096, false),
    ];
    let steady = scaled(12_000_000, cfg.scale * node_scale.min(1.0)).max(dense_pages / 4);
    let phases = vec![
        // Graph load: build CSR arrays.
        Phase::SeqScan {
            region: 0,
            pages: props_pages,
            reps_per_page: 1,
        },
        Phase::SeqScan {
            region: 1,
            pages: edges_pages,
            reps_per_page: 1,
        },
        // Analytics: edge scan + random neighbour-property gathers.
        Phase::Mixed {
            seq_region: 1,
            seq_pages: edges_pages,
            seq_reps: 4,
            rand_region: 0,
            rand_span_pages: props_pages,
            rand_ratio: spec.rand_ratio,
            count: steady,
        },
    ];
    Workload::new(
        spec.name,
        (spec.nominal_gb * GIB as f64) as u64,
        regions,
        phases,
        cfg.seed ^ (app as u64) << 8,
    )
}

/// GUPS: uniform random 8-byte updates over a huge table. Sparse touches
/// (≈1 page per 8-page cluster) are what drive ECPT to 64MB ways; the
/// table is one giant allocation, so THP backs it fully.
fn build_gups(cfg: &WorkloadCfg) -> Workload {
    let table_pages = scaled(16 * 1024 * 1024, cfg.scale); // 64GB
                                                           // 1.5M clusters touched (one page each) grow the ECPT 4KB ways to the
                                                           // paper's 64MB; 16M updates keep the run translation-dominated.
    let clusters = scaled(1_500_000, cfg.scale);
    let draws = scaled(16_000_000, cfg.scale);
    let regions = vec![region("table", 0, table_pages * 4096, true)];
    let phases = vec![
        Phase::SeqScan {
            region: 0,
            pages: scaled(16_384, cfg.scale), // init a 64MB prefix
            reps_per_page: 1,
        },
        Phase::SparseRand {
            region: 0,
            count: draws,
            clusters_span: clusters,
        },
    ];
    Workload::new("GUPS", 64 * GIB, regions, phases, cfg.seed ^ 0x6e5)
}

/// SysBench memory: large sequential block transfers over a window plus
/// random reads over the whole buffer; THP-friendly like GUPS.
fn build_sysbench(cfg: &WorkloadCfg) -> Workload {
    let buf_pages = scaled(16 * 1024 * 1024, cfg.scale); // 64GB
    let window = scaled(131_072, cfg.scale); // 512MB sequential window
    let clusters = scaled(1_450_000, cfg.scale);
    let regions = vec![region("buffer", 0, buf_pages * 4096, true)];
    let phases = vec![
        Phase::SeqScan {
            region: 0,
            pages: window,
            reps_per_page: 2,
        },
        // Random block reads over the whole buffer: sparse at cluster
        // granularity, like GUPS, plus a recurring sequential component.
        Phase::SparseRand {
            region: 0,
            count: scaled(12_000_000, cfg.scale),
            clusters_span: clusters,
        },
        Phase::SeqScan {
            region: 0,
            pages: window,
            reps_per_page: 2,
        },
        Phase::SparseRand {
            region: 0,
            count: scaled(4_000_000, cfg.scale),
            clusters_span: clusters,
        },
    ];
    Workload::new("SysBench", 64 * GIB, regions, phases, cfg.seed ^ 0x5b)
}

/// MUMmer: genome alignment — a sequential reference stream (one large
/// mmap, THP-friendly) and random suffix-tree node walks (pointer-heavy
/// heap, not THP-friendly).
fn build_mummer(cfg: &WorkloadCfg) -> Workload {
    // Calibrated so the 4KB HPT sits at the 8KB->1MB chunk boundary, as in
    // the paper: the ECPT way reaches 1MB (Table I), while ME-HPT's per-way
    // resizing leaves two ways on 8KB chunks and switches one to a 1MB
    // chunk - the mixed state behind MUMmer's 195 L2P entries (Figure 14).
    let ref_pages = scaled(66_000, cfg.scale); // ~270MB reference
    let tree_pages = scaled(60_000, cfg.scale); // ~246MB suffix tree
    let regions = vec![
        region("reference", 0, ref_pages * 4096, true),
        region("tree", 1, tree_pages * 4096, false),
    ];
    let phases = vec![
        Phase::SeqScan {
            region: 0,
            pages: ref_pages,
            reps_per_page: 2,
        },
        Phase::SeqScan {
            region: 1,
            pages: tree_pages,
            reps_per_page: 1,
        },
        Phase::Mixed {
            seq_region: 0,
            seq_pages: ref_pages,
            seq_reps: 8,
            rand_region: 1,
            rand_span_pages: tree_pages,
            rand_ratio: 0.55,
            count: scaled(3_000_000, cfg.scale),
        },
    ];
    Workload::new(
        "MUMmer",
        (6.9 * GIB as f64) as u64,
        regions,
        phases,
        cfg.seed ^ 0x30a3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_apps_build_and_emit() {
        let cfg = WorkloadCfg {
            scale: 0.001,
            ..WorkloadCfg::default()
        };
        for app in App::all() {
            let mut w = app.build(&cfg);
            assert!(w.total_accesses() > 0, "{}", app.name());
            let first = w.next().expect("non-empty trace");
            assert!(
                w.regions().iter().any(|r| r.contains(first)),
                "{}: first access outside regions",
                app.name()
            );
        }
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = App::all().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            ["BC", "BFS", "CC", "DC", "DFS", "GUPS", "MUMmer", "PR", "SSSP", "SysBench", "TC"]
        );
    }

    #[test]
    fn gups_touches_sparsely() {
        // GUPS's defining property: touched pages land in mostly-distinct
        // clusters (few pages per 32KB cluster).
        let cfg = WorkloadCfg {
            scale: 0.01,
            ..WorkloadCfg::default()
        };
        let w = App::Gups.build(&cfg);
        let mut pages = HashSet::new();
        let mut clusters = HashSet::new();
        for va in w {
            pages.insert(va.0 >> 12);
            clusters.insert(va.0 >> 15);
        }
        let density = pages.len() as f64 / clusters.len() as f64;
        assert!(
            density < 2.0,
            "GUPS should be sparse: {density} pages/cluster"
        );
    }

    #[test]
    fn graph_apps_touch_densely() {
        let cfg = WorkloadCfg {
            scale: 0.01,
            ..WorkloadCfg::default()
        };
        let w = App::Bfs.build(&cfg);
        let mut pages = HashSet::new();
        let mut clusters = HashSet::new();
        for va in w {
            pages.insert(va.0 >> 12);
            clusters.insert(va.0 >> 15);
        }
        let density = pages.len() as f64 / clusters.len() as f64;
        assert!(
            density > 6.0,
            "BFS should be dense: {density} pages/cluster"
        );
    }

    #[test]
    fn graph_nodes_scales_footprint() {
        let small = App::Pr.build(&WorkloadCfg {
            graph_nodes: 1_000,
            ..WorkloadCfg::default()
        });
        let large = App::Pr.build(&WorkloadCfg {
            graph_nodes: 100_000,
            ..WorkloadCfg::default()
        });
        let bytes = |w: &Workload| -> u64 { w.regions().iter().map(|r| r.bytes).sum() };
        assert!(bytes(&large) > 50 * bytes(&small));
    }

    #[test]
    fn thp_eligibility_matches_the_paper() {
        let cfg = WorkloadCfg {
            scale: 0.001,
            ..WorkloadCfg::default()
        };
        assert!(App::Gups
            .build(&cfg)
            .regions()
            .iter()
            .all(|r| r.thp_eligible));
        assert!(App::Bfs
            .build(&cfg)
            .regions()
            .iter()
            .all(|r| !r.thp_eligible));
        let mummer = App::Mummer.build(&cfg);
        assert!(mummer.regions().iter().any(|r| r.thp_eligible));
        assert!(mummer.regions().iter().any(|r| !r.thp_eligible));
    }

    #[test]
    fn nominal_footprints_match_table_1() {
        let cfg = WorkloadCfg {
            scale: 0.001,
            ..WorkloadCfg::default()
        };
        let gb = |app: App| App::build(app, &cfg).nominal_data_bytes() as f64 / GIB as f64;
        assert!((gb(App::Gups) - 64.0).abs() < 0.1);
        assert!((gb(App::Bfs) - 9.3).abs() < 0.1);
        assert!((gb(App::Mummer) - 6.9).abs() < 0.1);
    }
}
