//! Synthetic versions of the paper's eleven workloads.
//!
//! The paper evaluates eight GraphBIG graph-analytics applications (BC,
//! BFS, CC, DC, DFS, PR, SSSP, TC with 1M-node inputs), GUPS from the HPC
//! Challenge suite, MUMmer from BioBench, and SysBench's memory benchmark
//! (Section VI). We cannot run those binaries under a full-system
//! simulator, so each is reproduced as a *translation-equivalent* virtual
//! address trace (see DESIGN.md §3):
//!
//! * the **touched footprint** is calibrated so the resulting page tables
//!   match Table I (e.g. a 9.3GB dense graph footprint yields the 16MB ECPT
//!   ways the paper reports; GUPS's sparse random touches over 64GB yield
//!   64MB ways);
//! * the **access pattern** preserves what matters to translation:
//!   sequential scans (dense clusters, TLB-friendly), random gathers
//!   (TLB-hostile), and their per-application mix;
//! * the **THP friendliness** per region matches the paper's observations:
//!   GUPS/SysBench back their tables with huge pages, graph applications do
//!   not, MUMmer is mixed.
//!
//! # Examples
//!
//! ```
//! use mehpt_workloads::{App, WorkloadCfg};
//!
//! let mut trace = App::Gups.build(&WorkloadCfg { scale: 0.01, ..WorkloadCfg::default() });
//! let first = trace.next().unwrap();
//! assert!(trace.regions().iter().any(|r| r.contains(first)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod file;
mod trace;

pub use apps::{App, WorkloadCfg};
pub use file::{FileTrace, TraceFileError};
pub use trace::{Phase, Region, Workload};
