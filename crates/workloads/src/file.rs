use std::io::{BufRead, BufReader, Read, Write};

use mehpt_types::VirtAddr;

use crate::{Region, Workload};

/// Errors parsing a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl core::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceFileError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> TraceFileError {
        TraceFileError::Io(e)
    }
}

/// A recorded virtual-address trace, importable from (and exportable to) a
/// simple text format — the bridge for replaying *real* application traces
/// (e.g. from `perf mem` or a PIN tool) through the simulator.
///
/// Format: `#`-comments; region declarations
/// `region <name> <base-hex> <bytes> <thp|nothp>`; then one hexadecimal
/// virtual address per line.
///
/// # Examples
///
/// ```
/// use mehpt_workloads::FileTrace;
///
/// let text = "# demo\nregion heap 0x10000000 0x200000 nothp\n0x10000040\n0x10001040\n";
/// let trace = FileTrace::parse(text.as_bytes())?;
/// assert_eq!(trace.accesses().len(), 2);
/// let workload = trace.into_workload("demo");
/// assert_eq!(workload.total_accesses(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct FileTrace {
    regions: Vec<Region>,
    accesses: Vec<VirtAddr>,
}

impl FileTrace {
    /// Parses the text format from any reader.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed lines (with line numbers).
    pub fn parse<R: Read>(reader: R) -> Result<FileTrace, TraceFileError> {
        let mut trace = FileTrace::default();
        for (idx, line) in BufReader::new(reader).lines().enumerate() {
            let line = line?;
            let line = line.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("region ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 4 {
                    return Err(TraceFileError::Parse {
                        line: lineno,
                        message: "expected: region <name> <base-hex> <bytes> <thp|nothp>".into(),
                    });
                }
                let base = parse_hex(parts[1]).ok_or_else(|| TraceFileError::Parse {
                    line: lineno,
                    message: format!("bad base address {:?}", parts[1]),
                })?;
                let bytes = parse_hex(parts[2]).ok_or_else(|| TraceFileError::Parse {
                    line: lineno,
                    message: format!("bad region size {:?}", parts[2]),
                })?;
                let thp = match parts[3] {
                    "thp" => true,
                    "nothp" => false,
                    other => {
                        return Err(TraceFileError::Parse {
                            line: lineno,
                            message: format!("expected thp|nothp, got {other:?}"),
                        })
                    }
                };
                trace.regions.push(Region {
                    name: leak_name(parts[0]),
                    base: VirtAddr::new(base),
                    bytes,
                    thp_eligible: thp,
                });
                continue;
            }
            let va = parse_hex(line).ok_or_else(|| TraceFileError::Parse {
                line: lineno,
                message: format!("bad address {line:?}"),
            })?;
            trace.accesses.push(VirtAddr::new(va));
        }
        Ok(trace)
    }

    /// Records a trace for later replay.
    pub fn from_parts(regions: Vec<Region>, accesses: Vec<VirtAddr>) -> FileTrace {
        FileTrace { regions, accesses }
    }

    /// The declared regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The recorded accesses.
    pub fn accesses(&self) -> &[VirtAddr] {
        &self.accesses
    }

    /// Serializes to the text format.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "# mehpt trace: {} regions, {} accesses",
            self.regions.len(),
            self.accesses.len()
        )?;
        for r in &self.regions {
            writeln!(
                w,
                "region {} {:#x} {:#x} {}",
                r.name,
                r.base.0,
                r.bytes,
                if r.thp_eligible { "thp" } else { "nothp" }
            )?;
        }
        for a in &self.accesses {
            writeln!(w, "{:#x}", a.0)?;
        }
        Ok(())
    }

    /// Converts into a replayable [`Workload`].
    ///
    /// If no regions were declared, one covering the accessed range is
    /// synthesized (not THP-eligible).
    pub fn into_workload(self, name: &str) -> Workload {
        let FileTrace {
            mut regions,
            accesses,
        } = self;
        if regions.is_empty() && !accesses.is_empty() {
            let lo = accesses.iter().map(|a| a.0).min().unwrap() & !((2 << 20) - 1);
            let hi = accesses.iter().map(|a| a.0).max().unwrap();
            regions.push(Region {
                name: "trace",
                base: VirtAddr::new(lo),
                bytes: (hi - lo + 1).next_multiple_of(2 << 20),
                thp_eligible: false,
            });
        }
        Workload::from_recorded(leak_name(name), regions, accesses)
    }
}

fn parse_hex(s: &str) -> Option<u64> {
    let s = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    u64::from_str_radix(s, 16).ok()
}

/// Region/workload names are `&'static str` throughout the crate (they
/// come from compile-time app specs); file-loaded names are leaked once.
fn leak_name(name: &str) -> &'static str {
    Box::leak(name.to_string().into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a sample trace
region heap 0x10000000 0x400000 nothp
region table 0x20000000 0x200000 thp

0x10000040
0x10001080
0x200000c0
";

    #[test]
    fn parse_round_trip() {
        let t = FileTrace::parse(SAMPLE.as_bytes()).unwrap();
        assert_eq!(t.regions().len(), 2);
        assert_eq!(t.accesses().len(), 3);
        assert!(t.regions()[1].thp_eligible);
        let mut out = Vec::new();
        t.write_to(&mut out).unwrap();
        let again = FileTrace::parse(&out[..]).unwrap();
        assert_eq!(again.regions(), t.regions());
        assert_eq!(again.accesses(), t.accesses());
    }

    #[test]
    fn becomes_a_replayable_workload() {
        let t = FileTrace::parse(SAMPLE.as_bytes()).unwrap();
        let w = t.into_workload("sample");
        assert_eq!(w.name(), "sample");
        assert_eq!(w.total_accesses(), 3);
        let vas: Vec<u64> = w.map(|a| a.0).collect();
        assert_eq!(vas, vec![0x10000040, 0x10001080, 0x200000c0]);
    }

    #[test]
    fn synthesizes_a_region_when_missing() {
        let t = FileTrace::parse("0x1234000\n0x1239000\n".as_bytes()).unwrap();
        let w = t.into_workload("raw");
        assert_eq!(w.regions().len(), 1);
        let region = &w.regions()[0];
        assert!(region.contains(VirtAddr::new(0x1234000)));
        assert!(region.contains(VirtAddr::new(0x1239000)));
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let err = FileTrace::parse("0x10\nnot-hex\n".as_bytes()).unwrap_err();
        match err {
            TraceFileError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
        let err = FileTrace::parse("region x 0x0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceFileError::Parse { line: 1, .. }));
    }
}
