use mehpt_types::rng::Xoshiro256;
use mehpt_types::VirtAddr;

/// A virtual-memory region (VMA) of a workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Human-readable name ("props", "edges", "table", …).
    pub name: &'static str,
    /// Base virtual address (2MB-aligned).
    pub base: VirtAddr,
    /// Region length in bytes.
    pub bytes: u64,
    /// Whether the OS may back this region with transparent huge pages.
    ///
    /// Models the paper's observation that GUPS/SysBench benefit from THP
    /// while the graph applications' allocation patterns do not.
    pub thp_eligible: bool,
}

impl Region {
    /// Whether `va` falls inside the region.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va.0 >= self.base.0 && va.0 < self.base.0 + self.bytes
    }

    /// 4KB pages spanned.
    pub fn pages_4k(&self) -> u64 {
        self.bytes / 4096
    }
}

/// One phase of a workload's access program.
#[derive(Clone, Debug)]
pub enum Phase {
    /// Scan `pages` pages of a region sequentially from its start,
    /// issuing `reps_per_page` accesses within each page (512B stride).
    SeqScan {
        /// Index into the workload's region list.
        region: usize,
        /// Number of 4KB pages to touch.
        pages: u64,
        /// Accesses issued per page (models intra-page locality).
        reps_per_page: u32,
    },
    /// `count` accesses at uniformly random pages within the first
    /// `span_pages` pages of a region.
    RandPages {
        /// Index into the workload's region list.
        region: usize,
        /// Total accesses to issue.
        count: u64,
        /// The number of pages the random accesses spread over.
        span_pages: u64,
    },
    /// `count` accesses at random *clusters* (32KB / 8-page groups),
    /// touching one fixed page per cluster — the sparse pattern of GUPS and
    /// SysBench. Sparse touches are what blow up clustered HPTs: every
    /// touched page occupies its own cluster entry, so 1.5M touched pages
    /// need 1.5M entries and the ECPT way grows to 64MB.
    SparseRand {
        /// Index into the workload's region list.
        region: usize,
        /// Total accesses to issue.
        count: u64,
        /// The number of 8-page clusters the accesses spread over.
        clusters_span: u64,
    },
    /// `count` accesses mixing a wrapping sequential stream over one
    /// region with random accesses into another — the steady state of the
    /// graph workloads (edge scan + property gather).
    Mixed {
        /// Region scanned sequentially (wrapping).
        seq_region: usize,
        /// Pages of the sequential window.
        seq_pages: u64,
        /// Accesses per sequential page before advancing.
        seq_reps: u32,
        /// Region accessed randomly.
        rand_region: usize,
        /// Pages the random accesses spread over.
        rand_span_pages: u64,
        /// Probability an access is random rather than sequential.
        rand_ratio: f64,
        /// Total accesses to issue.
        count: u64,
    },
}

impl Phase {
    /// The number of accesses this phase will produce.
    pub fn len(&self) -> u64 {
        match *self {
            Phase::SeqScan {
                pages,
                reps_per_page,
                ..
            } => pages * reps_per_page as u64,
            Phase::RandPages { count, .. } => count,
            Phase::SparseRand { count, .. } => count,
            Phase::Mixed { count, .. } => count,
        }
    }

    /// Whether the phase produces no accesses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A workload: a set of regions plus a program of phases producing the
/// virtual-address trace — or a recorded trace replayed verbatim.
///
/// Implements [`Iterator`] over [`VirtAddr`]; deterministic for a given
/// seed.
#[derive(Clone, Debug)]
pub struct Workload {
    name: &'static str,
    nominal_data_bytes: u64,
    regions: Vec<Region>,
    phases: Vec<Phase>,
    rng: Xoshiro256,
    /// A verbatim recorded trace; when set, phases are ignored.
    recorded: Vec<VirtAddr>,
    // Cursor state.
    phase_idx: usize,
    emitted_in_phase: u64,
    seq_cursor: u64,
}

impl Workload {
    /// Assembles a workload.
    ///
    /// # Panics
    ///
    /// Panics if a phase references a region out of range or spans more
    /// pages than its region holds.
    pub fn new(
        name: &'static str,
        nominal_data_bytes: u64,
        regions: Vec<Region>,
        phases: Vec<Phase>,
        seed: u64,
    ) -> Workload {
        for phase in &phases {
            let check = |region: usize, pages: u64| {
                assert!(
                    region < regions.len(),
                    "{name}: region {region} out of range"
                );
                assert!(
                    pages <= regions[region].pages_4k(),
                    "{name}: phase spans {pages} pages but region {region} has {}",
                    regions[region].pages_4k()
                );
            };
            match *phase {
                Phase::SeqScan { region, pages, .. } => check(region, pages),
                Phase::RandPages {
                    region, span_pages, ..
                } => check(region, span_pages),
                Phase::SparseRand {
                    region,
                    clusters_span,
                    ..
                } => check(region, clusters_span * 8),
                Phase::Mixed {
                    seq_region,
                    seq_pages,
                    rand_region,
                    rand_span_pages,
                    ..
                } => {
                    check(seq_region, seq_pages);
                    check(rand_region, rand_span_pages);
                }
            }
        }
        Workload {
            name,
            nominal_data_bytes,
            regions,
            phases,
            rng: Xoshiro256::seed_from_u64(seed),
            recorded: Vec::new(),
            phase_idx: 0,
            emitted_in_phase: 0,
            seq_cursor: 0,
        }
    }

    /// Wraps a recorded access sequence (e.g. loaded from a trace file) as
    /// a replayable workload.
    pub fn from_recorded(
        name: &'static str,
        regions: Vec<Region>,
        accesses: Vec<VirtAddr>,
    ) -> Workload {
        let bytes: u64 = regions.iter().map(|r| r.bytes).sum();
        Workload {
            name,
            nominal_data_bytes: bytes,
            regions,
            phases: Vec::new(),
            rng: Xoshiro256::seed_from_u64(0),
            recorded: accesses,
            phase_idx: 0,
            emitted_in_phase: 0,
            seq_cursor: 0,
        }
    }

    /// The workload's name (e.g. `"BFS"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The application's nominal data footprint (Table I column 2), for
    /// reporting; the *touched* footprint emerges from the trace.
    pub fn nominal_data_bytes(&self) -> u64 {
        self.nominal_data_bytes
    }

    /// The workload's memory regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total accesses the full trace will produce.
    pub fn total_accesses(&self) -> u64 {
        if !self.recorded.is_empty() {
            return self.recorded.len() as u64;
        }
        self.phases.iter().map(Phase::len).sum()
    }

    fn page_addr(&mut self, region: usize, page: u64, offset_slots: u64) -> VirtAddr {
        let r = &self.regions[region];
        let off = (self.rng.next_below(offset_slots)) * 512;
        VirtAddr::new(r.base.0 + page * 4096 + off)
    }
}

impl Iterator for Workload {
    type Item = VirtAddr;

    fn next(&mut self) -> Option<VirtAddr> {
        if !self.recorded.is_empty() {
            let i = self.seq_cursor as usize;
            self.seq_cursor += 1;
            return self.recorded.get(i).copied();
        }
        loop {
            let phase = self.phases.get(self.phase_idx)?.clone();
            if self.emitted_in_phase >= phase.len() {
                self.phase_idx += 1;
                self.emitted_in_phase = 0;
                self.seq_cursor = 0;
                continue;
            }
            let i = self.emitted_in_phase;
            self.emitted_in_phase += 1;
            let va = match phase {
                Phase::SeqScan {
                    region,
                    reps_per_page,
                    ..
                } => {
                    let page = i / reps_per_page as u64;
                    self.page_addr(region, page, 8)
                }
                Phase::RandPages {
                    region, span_pages, ..
                } => {
                    let page = self.rng.next_below(span_pages);
                    self.page_addr(region, page, 8)
                }
                Phase::SparseRand {
                    region,
                    clusters_span,
                    ..
                } => {
                    let cluster = self.rng.next_below(clusters_span);
                    // A stable pseudo-random page within the cluster, so
                    // revisits hit the same page (one page per cluster).
                    let mut h = cluster ^ 0x9e37_79b9_7f4a_7c15;
                    let offset = mehpt_types::rng::splitmix64(&mut h) & 7;
                    self.page_addr(region, cluster * 8 + offset, 8)
                }
                Phase::Mixed {
                    seq_region,
                    seq_pages,
                    seq_reps,
                    rand_region,
                    rand_span_pages,
                    rand_ratio,
                    ..
                } => {
                    if self.rng.next_bool(rand_ratio) {
                        let page = self.rng.next_below(rand_span_pages);
                        self.page_addr(rand_region, page, 8)
                    } else {
                        let step = self.seq_cursor;
                        self.seq_cursor += 1;
                        let page = (step / seq_reps as u64) % seq_pages;
                        self.page_addr(seq_region, page, 8)
                    }
                }
            };
            return Some(va);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(bytes: u64) -> Region {
        Region {
            name: "r",
            base: VirtAddr::new(0x10_0000_0000),
            bytes,
            thp_eligible: false,
        }
    }

    #[test]
    fn seq_scan_touches_every_page_in_order() {
        let mut w = Workload::new(
            "t",
            0,
            vec![region(16 * 4096)],
            vec![Phase::SeqScan {
                region: 0,
                pages: 16,
                reps_per_page: 2,
            }],
            1,
        );
        let pages: Vec<u64> = (&mut w).map(|va| (va.0 - 0x10_0000_0000) / 4096).collect();
        assert_eq!(pages.len(), 32);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(*p, (i / 2) as u64);
        }
    }

    #[test]
    fn rand_pages_stay_in_span() {
        let mut w = Workload::new(
            "t",
            0,
            vec![region(1 << 24)],
            vec![Phase::RandPages {
                region: 0,
                count: 1000,
                span_pages: 7,
            }],
            2,
        );
        for va in &mut w {
            let page = (va.0 - 0x10_0000_0000) / 4096;
            assert!(page < 7);
        }
    }

    #[test]
    fn mixed_produces_both_streams() {
        let far = Region {
            name: "far",
            base: VirtAddr::new(0x20_0000_0000),
            bytes: 1 << 22,
            thp_eligible: false,
        };
        let mut w = Workload::new(
            "t",
            0,
            vec![region(1 << 22), far],
            vec![Phase::Mixed {
                seq_region: 0,
                seq_pages: 64,
                seq_reps: 1,
                rand_region: 1,
                rand_span_pages: 1024,
                rand_ratio: 0.5,
                count: 10_000,
            }],
            3,
        );
        let r1_base = w.regions()[1].base.0;
        let (mut seq, mut rand) = (0, 0);
        for va in &mut w {
            if va.0 >= r1_base {
                rand += 1;
            } else {
                seq += 1;
            }
        }
        assert!(seq > 4000 && rand > 4000, "seq {seq} rand {rand}");
    }

    #[test]
    fn trace_is_deterministic() {
        let build = || {
            Workload::new(
                "t",
                0,
                vec![region(1 << 24)],
                vec![Phase::RandPages {
                    region: 0,
                    count: 100,
                    span_pages: 4096,
                }],
                7,
            )
            .collect::<Vec<VirtAddr>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn total_accesses_matches_iteration() {
        let w = Workload::new(
            "t",
            0,
            vec![region(1 << 22)],
            vec![
                Phase::SeqScan {
                    region: 0,
                    pages: 10,
                    reps_per_page: 3,
                },
                Phase::RandPages {
                    region: 0,
                    count: 55,
                    span_pages: 10,
                },
            ],
            4,
        );
        assert_eq!(w.total_accesses(), 85);
        assert_eq!(w.count(), 85);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_region_rejected() {
        Workload::new(
            "t",
            0,
            vec![region(4096)],
            vec![Phase::SeqScan {
                region: 1,
                pages: 1,
                reps_per_page: 1,
            }],
            0,
        );
    }
}
