use mehpt_mem::{AllocError, PhysMem};
use mehpt_types::{PageSize, PhysAddr, Ppn, VirtAddr, Vpn, PAGE_SIZES};

use crate::cwt::CwtSet;
use crate::table::{EcptConfig, EcptTable, InsertReport};
use crate::view::HptView;

/// Bitmask bit for a page size (bit 0 = 4KB, bit 1 = 2MB, bit 2 = 1GB).
pub(crate) fn size_bit(ps: PageSize) -> u8 {
    1 << ps.index()
}

/// A process's full ECPT: one elastic cuckoo table per page size, plus the
/// Cuckoo Walk Tables (CWTs).
///
/// The CWTs record, per virtual-memory region, which page sizes have
/// mappings inside it: the PUD-CWT covers 1GB regions, the PMD-CWT 2MB
/// regions. The hardware walker caches CWT entries in its Cuckoo Walk
/// Caches and uses them to probe only the right page size's table
/// (Section V-D, Figure 7).
#[derive(Debug)]
pub struct Ecpt {
    /// Per-page-size tables, created lazily on the first mapping of that
    /// size — an unused page size consumes no page-table memory, matching
    /// the paper's accounting (e.g. GUPS without THP only ever has 4KB
    /// tables; Table I's 288MB is exactly 3 × (64+32)MB of 4KB ways).
    tables: Vec<Option<EcptTable>>,
    cfg: EcptConfig,
    cwt: CwtSet,
}

impl Ecpt {
    /// Creates the three per-page-size tables with default configuration.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure of the initial ways.
    pub fn new(mem: &mut PhysMem) -> Result<Ecpt, AllocError> {
        Ecpt::with_config(EcptConfig::default(), mem)
    }

    /// Creates the tables from an explicit per-table configuration.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure of the initial ways.
    pub fn with_config(cfg: EcptConfig, mem: &mut PhysMem) -> Result<Ecpt, AllocError> {
        let _ = mem;
        Ok(Ecpt {
            tables: vec![None, None, None],
            cfg,
            cwt: CwtSet::new(),
        })
    }

    /// The table for one page size, if any page of that size was ever
    /// mapped.
    pub fn table(&self, ps: PageSize) -> Option<&EcptTable> {
        self.tables[ps.index()].as_ref()
    }

    /// Returns the table for `ps`, creating it (initial 8KB ways) on first
    /// use.
    fn table_mut(&mut self, ps: PageSize, mem: &mut PhysMem) -> Result<&mut EcptTable, AllocError> {
        let slot = &mut self.tables[ps.index()];
        if slot.is_none() {
            let table_cfg = EcptConfig {
                seed: self.cfg.seed.wrapping_add(ps.index() as u64 * 0x9e37_79b9),
                ..self.cfg.clone()
            };
            *slot = Some(EcptTable::with_config(table_cfg, mem)?);
        }
        Ok(slot.as_mut().expect("just created"))
    }

    /// Maps `vpn` (of size `ps`) to `ppn`.
    ///
    /// # Errors
    ///
    /// Fails when a table resize cannot allocate its contiguous ways.
    pub fn map(
        &mut self,
        vpn: Vpn,
        ps: PageSize,
        ppn: Ppn,
        mem: &mut PhysMem,
    ) -> Result<InsertReport, AllocError> {
        let report = self.table_mut(ps, mem)?.insert(vpn, ppn, mem)?;
        self.cwt.note_map(vpn, ps);
        Ok(report)
    }

    /// Unmaps `vpn` (of size `ps`), returning the previous translation.
    pub fn unmap(&mut self, vpn: Vpn, ps: PageSize, mem: &mut PhysMem) -> Option<Ppn> {
        let ppn = self.tables[ps.index()].as_mut()?.remove(vpn, mem)?;
        self.cwt.note_unmap(vpn, ps);
        Some(ppn)
    }

    /// Functional translation (no timing): probes the tables largest page
    /// size first.
    pub fn translate(&self, va: VirtAddr) -> Option<(Ppn, PageSize)> {
        for ps in PAGE_SIZES.iter().rev() {
            if let Some(table) = &self.tables[ps.index()] {
                if let Some(ppn) = table.lookup(va.vpn(*ps)) {
                    return Some((ppn, *ps));
                }
            }
        }
        None
    }

    /// The PMD-CWT mask for the 2MB region containing `va` (bit 0 = 4KB
    /// pages present, bit 1 = a 2MB page present). `None` if the region has
    /// no CWT entry at all.
    pub fn pmd_mask(&self, va: VirtAddr) -> Option<u8> {
        self.cwt.pmd_mask(va)
    }

    /// The PUD-CWT mask for the 1GB region containing `va`.
    pub fn pud_mask(&self, va: VirtAddr) -> Option<u8> {
        self.cwt.pud_mask(va)
    }

    /// Total mapped pages across page sizes.
    pub fn pages(&self) -> u64 {
        self.tables.iter().flatten().map(EcptTable::pages).sum()
    }

    /// Total page-table memory (including CWTs, modeled at 8 bytes per
    /// region entry).
    pub fn memory_bytes(&self) -> u64 {
        let tables: u64 = self
            .tables
            .iter()
            .flatten()
            .map(EcptTable::memory_bytes)
            .sum();
        tables + 8 * self.cwt.entries() as u64
    }

    /// The largest single way across the tables — the contiguity
    /// requirement (Table I column 4, Figure 8).
    pub fn max_way_bytes(&self) -> u64 {
        self.tables
            .iter()
            .flatten()
            .flat_map(|t| t.way_sizes())
            .max()
            .unwrap_or(0)
    }

    /// Releases all physical memory.
    pub fn destroy(self, mem: &mut PhysMem) {
        for t in self.tables.into_iter().flatten() {
            t.destroy(mem);
        }
    }
}

impl HptView for Ecpt {
    fn pud_mask(&self, va: VirtAddr) -> Option<u8> {
        Ecpt::pud_mask(self, va)
    }

    fn pmd_mask(&self, va: VirtAddr) -> Option<u8> {
        Ecpt::pmd_mask(self, va)
    }

    fn probe_addrs(&self, ps: PageSize, vpn: Vpn) -> Vec<PhysAddr> {
        self.tables[ps.index()]
            .as_ref()
            .map(|t| t.probe_addrs(vpn))
            .unwrap_or_default()
    }

    fn translate(&self, va: VirtAddr) -> Option<(Ppn, PageSize)> {
        Ecpt::translate(self, va)
    }
}
