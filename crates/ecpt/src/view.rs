use mehpt_types::{PageSize, PhysAddr, Ppn, VirtAddr, Vpn};

/// What the hardware cuckoo walker needs from a hashed page table.
///
/// Implemented by the ECPT baseline ([`Ecpt`](crate::Ecpt)) and by ME-HPT
/// (`mehpt_core::MeHpt`), so the same [`EcptWalker`](crate::EcptWalker)
/// hardware model times walks over both designs — which is faithful to the
/// paper: ME-HPT reuses the ECPT walker and hides its extra L2P access
/// behind the CWC probe (Section V-D).
pub trait HptView {
    /// The page sizes mapped somewhere in `va`'s 1GB region
    /// (bit 0 = 4KB, bit 1 = 2MB, bit 2 = 1GB), or `None` if untracked.
    fn pud_mask(&self, va: VirtAddr) -> Option<u8>;

    /// The page sizes mapped in `va`'s 2MB region (bits 0–1), or `None`.
    fn pmd_mask(&self, va: VirtAddr) -> Option<u8>;

    /// The physical addresses of the W way slots a walker probes for `vpn`
    /// in the `ps` table, honoring in-flight resize state.
    fn probe_addrs(&self, ps: PageSize, vpn: Vpn) -> Vec<PhysAddr>;

    /// Functional translation (ground truth).
    fn translate(&self, va: VirtAddr) -> Option<(Ppn, PageSize)>;
}
