//! Elastic Cuckoo Page Tables (ECPT) — the state-of-the-art HPT baseline.
//!
//! This crate reproduces the design of Skarlatos et al. (ASPLOS'20), which
//! the paper uses as its baseline (Section II-B, Table III):
//!
//! * one [`EcptTable`] per page size (4KB / 2MB / 1GB), each a 3-way cuckoo
//!   hash table of **clustered entries** — one 64-byte entry holds the
//!   translations of 8 contiguous pages (Yaniv & Tsafrir's page-table-entry
//!   clustering), keyed by `VPN >> 3`;
//! * each way stored in **one contiguous physical-memory chunk** — the
//!   memory-contiguity problem ME-HPT solves: a way can grow to 64MB, and on
//!   a fragmented machine that allocation is slow or impossible;
//! * **gradual out-of-place resizing** with per-way rehash pointers: upsizes
//!   above 0.6 occupancy, downsizes below 0.2, entries migrated as inserts
//!   arrive; old and new tables coexist during the migration;
//! * **Cuckoo Walk Tables** ([`Ecpt`] keeps per-region page-size masks) and
//!   **Cuckoo Walk Caches** (in [`EcptWalker`]) that tell the hardware
//!   walker which page size's table to probe, keeping a walk at one
//!   (parallel) memory access in the common case.
//!
//! # Examples
//!
//! ```
//! use mehpt_ecpt::Ecpt;
//! use mehpt_mem::PhysMem;
//! use mehpt_types::{PageSize, Ppn, VirtAddr, MIB};
//!
//! let mut mem = PhysMem::new(64 * MIB);
//! let mut ecpt = Ecpt::new(&mut mem)?;
//! let va = VirtAddr::new(0x7000_2000);
//! ecpt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(99), &mut mem)?;
//! assert_eq!(ecpt.translate(va), Some((Ppn(99), PageSize::Base4K)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cwt;
mod entry;
mod process;
mod table;
mod view;
mod walker;

pub use cwt::CwtSet;
pub use entry::{ClusterEntry, CLUSTER_PTES};
pub use process::Ecpt;
pub use table::{EcptConfig, EcptTable, InsertReport};
pub use view::HptView;
pub use walker::{EcptWalker, EcptWalkerConfig, HptWalkResult};
