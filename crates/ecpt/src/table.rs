use std::mem;

use mehpt_hash::{HashFamily, ResizeEvent, ResizeKind};
use mehpt_mem::{AllocError, AllocTag, Chunk, PhysMem};
use mehpt_types::rng::Xoshiro256;
use mehpt_types::{PhysAddr, Ppn, Vpn};

use crate::entry::ClusterEntry;

/// Configuration of one per-page-size ECPT table.
///
/// Defaults are Table III's parameters: 3 ways of 128 entries (8KB per
/// way), upsize above 0.6 occupancy, downsize below 0.2.
#[derive(Clone, Debug, PartialEq)]
pub struct EcptConfig {
    /// Number of cuckoo ways.
    pub ways: usize,
    /// Initial (and minimum) entries per way; a power of two.
    pub initial_entries_per_way: usize,
    /// Occupancy fraction that triggers an upsize.
    pub upsize_threshold: f64,
    /// Occupancy fraction that triggers a downsize.
    pub downsize_threshold: f64,
    /// Entries migrated from each resizing way per insert.
    pub migrate_per_insert: usize,
    /// Cuckoo kicks before an insert forces a resize.
    pub max_kicks: usize,
    /// Seed for hash functions and way choice.
    pub seed: u64,
}

impl Default for EcptConfig {
    fn default() -> EcptConfig {
        EcptConfig {
            ways: 3,
            initial_entries_per_way: 128,
            upsize_threshold: 0.6,
            downsize_threshold: 0.2,
            migrate_per_insert: 2,
            max_kicks: 128,
            seed: 0xec9_7ab1e,
        }
    }
}

/// What one insert did, for OS cost accounting in the simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InsertReport {
    /// Cuckoo re-insertions needed to place the entry.
    pub kicks: u32,
    /// Entries migrated on behalf of an in-flight resize.
    pub migrated: u32,
    /// Whether this insert triggered a resize.
    pub started_resize: bool,
}

/// One cuckoo way backed by a single contiguous physical-memory chunk.
#[derive(Debug)]
struct WayArray {
    slots: Vec<Option<ClusterEntry>>,
    chunk: Chunk,
}

impl WayArray {
    fn new(entries: usize, mem: &mut PhysMem) -> Result<WayArray, AllocError> {
        let chunk = mem.alloc(entries as u64 * ClusterEntry::BYTES, AllocTag::PageTable)?;
        Ok(WayArray {
            slots: (0..entries).map(|_| None).collect(),
            chunk,
        })
    }

    fn addr(&self, idx: usize) -> PhysAddr {
        self.chunk.addr(idx as u64 * ClusterEntry::BYTES)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

#[derive(Debug)]
struct Way {
    cur: WayArray,
    /// `(old array, rehash pointer, kind, moved)` during a resize.
    old: Option<(WayArray, usize, ResizeKind, u64)>,
    occupied: usize,
}

impl Way {
    fn is_resizing(&self) -> bool {
        self.old.is_some()
    }

    /// Resolves a hash value to `(in_old_table, index)`.
    fn locate(&self, h: u64) -> (bool, usize) {
        match &self.old {
            Some((old, ptr, _, _)) => {
                let old_idx = h as usize & (old.len() - 1);
                if old_idx >= *ptr {
                    (true, old_idx)
                } else {
                    (false, h as usize & (self.cur.len() - 1))
                }
            }
            None => (false, h as usize & (self.cur.len() - 1)),
        }
    }

    fn slot_mut(&mut self, in_old: bool, idx: usize) -> &mut Option<ClusterEntry> {
        if in_old {
            &mut self.old.as_mut().unwrap().0.slots[idx]
        } else {
            &mut self.cur.slots[idx]
        }
    }

    fn slot(&self, in_old: bool, idx: usize) -> &Option<ClusterEntry> {
        if in_old {
            &self.old.as_ref().unwrap().0.slots[idx]
        } else {
            &self.cur.slots[idx]
        }
    }

    fn addr(&self, in_old: bool, idx: usize) -> PhysAddr {
        if in_old {
            self.old.as_ref().unwrap().0.addr(idx)
        } else {
            self.cur.addr(idx)
        }
    }

    fn bytes(&self) -> u64 {
        self.cur.chunk.bytes()
            + self
                .old
                .as_ref()
                .map(|(o, _, _, _)| o.chunk.bytes())
                .unwrap_or(0)
    }
}

/// Statistics of one [`EcptTable`].
#[derive(Clone, Debug, Default)]
pub(crate) struct EcptStats {
    pub resizes: Vec<ResizeEvent>,
    pub kicks_histogram: Vec<u64>,
    pub entries_migrated: u64,
    pub peak_bytes: u64,
}

impl EcptStats {
    fn record_kicks(&mut self, kicks: usize) {
        if self.kicks_histogram.len() <= kicks {
            self.kicks_histogram.resize(kicks + 1, 0);
        }
        self.kicks_histogram[kicks] += 1;
    }
}

/// The elastic cuckoo page table for one page size (ECPT baseline).
///
/// A W-way cuckoo table of [`ClusterEntry`]s. Each way occupies **one
/// contiguous chunk** of physical memory allocated from [`PhysMem`] — the
/// design whose contiguity requirement (up to 64MB per way, Table I)
/// motivates the paper. Resizing is gradual and **out of place**: new
/// chunks are allocated at double (half) the size, per-way rehash pointers
/// split the old ways into migrated/live regions, and old chunks are freed
/// once migration completes. An upsize *fails* if physical memory cannot
/// supply the contiguous chunks — exactly how ECPT dies on a highly
/// fragmented machine in the paper's experiments.
#[derive(Debug)]
pub struct EcptTable {
    ways: Vec<Way>,
    family: HashFamily,
    cfg: EcptConfig,
    rng: Xoshiro256,
    clusters: usize,
    pages: u64,
    stats: EcptStats,
}

impl EcptTable {
    /// Creates a table with the default (Table III) configuration.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure of the initial 8KB ways.
    pub fn new(mem: &mut PhysMem) -> Result<EcptTable, AllocError> {
        EcptTable::with_config(EcptConfig::default(), mem)
    }

    /// Creates a table from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure of the initial ways.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid (fewer than two
    /// ways or a non-power-of-two initial size).
    pub fn with_config(cfg: EcptConfig, mem: &mut PhysMem) -> Result<EcptTable, AllocError> {
        assert!(cfg.ways >= 2, "cuckoo hashing needs at least 2 ways");
        assert!(
            cfg.initial_entries_per_way.is_power_of_two(),
            "way sizes must be powers of two"
        );
        let mut ways = Vec::with_capacity(cfg.ways);
        for _ in 0..cfg.ways {
            match WayArray::new(cfg.initial_entries_per_way, mem) {
                Ok(w) => ways.push(Way {
                    cur: w,
                    old: None,
                    occupied: 0,
                }),
                Err(e) => {
                    for w in ways {
                        mem.free(w.cur.chunk);
                    }
                    return Err(e);
                }
            }
        }
        let family = HashFamily::new(cfg.ways, cfg.seed);
        let rng = Xoshiro256::seed_from_u64(cfg.seed ^ 0xdead_10cc);
        Ok(EcptTable {
            ways,
            family,
            cfg,
            rng,
            clusters: 0,
            pages: 0,
            stats: EcptStats::default(),
        })
    }

    /// The number of valid translations (pages) stored.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// The number of occupied cluster entries.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Logical capacity in cluster entries (sum of current way sizes).
    pub fn capacity(&self) -> usize {
        self.ways.iter().map(|w| w.cur.len()).sum()
    }

    /// Bytes held per way (current + old during a resize).
    pub fn way_bytes(&self) -> Vec<u64> {
        self.ways.iter().map(Way::bytes).collect()
    }

    /// The size of each way's *current* table in bytes.
    pub fn way_sizes(&self) -> Vec<u64> {
        self.ways.iter().map(|w| w.cur.chunk.bytes()).collect()
    }

    /// Total bytes of physical memory held by the table right now.
    pub fn memory_bytes(&self) -> u64 {
        self.ways.iter().map(Way::bytes).sum()
    }

    /// High-water mark of [`EcptTable::memory_bytes`].
    pub fn peak_bytes(&self) -> u64 {
        self.stats.peak_bytes
    }

    /// Whether any way has a resize in flight.
    pub fn is_resizing(&self) -> bool {
        self.ways.iter().any(Way::is_resizing)
    }

    /// Completed resize events.
    pub fn resizes(&self) -> &[ResizeEvent] {
        &self.stats.resizes
    }

    /// Histogram of cuckoo re-insertions per insert or rehash (Figure 16).
    pub fn kicks_histogram(&self) -> &[u64] {
        &self.stats.kicks_histogram
    }

    /// Entries migrated by gradual resizing so far.
    pub fn entries_migrated(&self) -> u64 {
        self.stats.entries_migrated
    }

    /// Functional lookup (no timing).
    pub fn lookup(&self, vpn: Vpn) -> Option<Ppn> {
        let tag = ClusterEntry::tag_of(vpn);
        for w in 0..self.ways.len() {
            let h = self.family.hash(w, &tag);
            let (in_old, idx) = self.ways[w].locate(h);
            if let Some(cluster) = self.ways[w].slot(in_old, idx) {
                if cluster.tag() == tag {
                    return cluster.get(vpn);
                }
            }
        }
        None
    }

    /// The physical addresses a hardware walker probes for `vpn` — one per
    /// way, honoring the rehash pointers (Section II-B: "a lookup operation
    /// during resizing only needs W probes").
    pub fn probe_addrs(&self, vpn: Vpn) -> Vec<PhysAddr> {
        let tag = ClusterEntry::tag_of(vpn);
        (0..self.ways.len())
            .map(|w| {
                let h = self.family.hash(w, &tag);
                let (in_old, idx) = self.ways[w].locate(h);
                self.ways[w].addr(in_old, idx)
            })
            .collect()
    }

    /// Inserts (or updates) the translation `vpn → ppn`.
    ///
    /// # Errors
    ///
    /// Fails only when a resize is needed and physical memory cannot
    /// provide the new contiguous ways — the paper's failure mode for ECPT
    /// on fragmented machines. The table is left consistent (the insert
    /// itself is rolled back).
    pub fn insert(
        &mut self,
        vpn: Vpn,
        ppn: Ppn,
        mem: &mut PhysMem,
    ) -> Result<InsertReport, AllocError> {
        let mut report = InsertReport::default();
        let tag = ClusterEntry::tag_of(vpn);
        // Update in place if the cluster already exists.
        for w in 0..self.ways.len() {
            let h = self.family.hash(w, &tag);
            let (in_old, idx) = self.ways[w].locate(h);
            if let Some(cluster) = self.ways[w].slot_mut(in_old, idx).as_mut() {
                if cluster.tag() == tag {
                    if cluster.set(vpn, ppn).is_none() {
                        self.pages += 1;
                    }
                    return Ok(report);
                }
            }
        }
        // A new cluster is needed: resize bookkeeping first.
        report.started_resize = self.maybe_resize(mem)?;
        report.migrated = self.migration_step(mem);
        let way = self.rng.next_index(self.ways.len());
        let mut cluster = ClusterEntry::new(tag);
        cluster.set(vpn, ppn);
        report.kicks = self.place(way, cluster, mem)? as u32;
        self.clusters += 1;
        self.pages += 1;
        self.stats.record_kicks(report.kicks as usize);
        self.note_bytes();
        Ok(report)
    }

    /// Removes the translation for `vpn`, returning it.
    ///
    /// Empty clusters are deleted; a downsize may be triggered (and is
    /// skipped silently if its allocation fails — the OS retries later).
    pub fn remove(&mut self, vpn: Vpn, mem: &mut PhysMem) -> Option<Ppn> {
        let tag = ClusterEntry::tag_of(vpn);
        for w in 0..self.ways.len() {
            let h = self.family.hash(w, &tag);
            let (in_old, idx) = self.ways[w].locate(h);
            let slot = self.ways[w].slot_mut(in_old, idx);
            if let Some(cluster) = slot.as_mut() {
                if cluster.tag() == tag {
                    let ppn = cluster.clear(vpn)?;
                    self.pages -= 1;
                    if cluster.is_empty() {
                        *slot = None;
                        self.ways[w].occupied -= 1;
                        self.clusters -= 1;
                    }
                    let _ = self.maybe_resize(mem);
                    self.migration_step(mem);
                    return Some(ppn);
                }
            }
        }
        None
    }

    /// Releases all physical memory held by the table.
    pub fn destroy(mut self, mem: &mut PhysMem) {
        for way in self.ways.drain(..) {
            mem.free(way.cur.chunk);
            if let Some((old, _, _, _)) = way.old {
                mem.free(old.chunk);
            }
        }
    }

    // ---- internals ----

    fn note_bytes(&mut self) {
        let bytes = self.memory_bytes();
        self.stats.peak_bytes = self.stats.peak_bytes.max(bytes);
    }

    /// Places a cluster starting at `way`, cuckoo-kicking occupants.
    fn place(
        &mut self,
        way: usize,
        cluster: ClusterEntry,
        mem: &mut PhysMem,
    ) -> Result<usize, AllocError> {
        let mut way = way;
        let mut entry = cluster;
        let mut kicks = 0usize;
        loop {
            let h = self.family.hash(way, &entry.tag());
            let (in_old, idx) = self.ways[way].locate(h);
            let slot = self.ways[way].slot_mut(in_old, idx);
            match slot {
                None => {
                    *slot = Some(entry);
                    self.ways[way].occupied += 1;
                    return Ok(kicks);
                }
                Some(_) => {
                    entry = mem::replace(slot, Some(entry)).unwrap();
                    kicks += 1;
                    if kicks % self.cfg.max_kicks == 0 {
                        // Pressure valve: force an upsize so the pending
                        // entry can land.
                        self.finish_all_resizes(mem);
                        self.start_resize(ResizeKind::Upsize, mem)?;
                    }
                    way = self.other_way(way);
                }
            }
        }
    }

    fn other_way(&mut self, not: usize) -> usize {
        let pick = self.rng.next_index(self.ways.len() - 1);
        if pick >= not {
            pick + 1
        } else {
            pick
        }
    }

    /// Checks thresholds; returns whether a resize started.
    fn maybe_resize(&mut self, mem: &mut PhysMem) -> Result<bool, AllocError> {
        if self.is_resizing() {
            return Ok(false);
        }
        let cap = self.capacity();
        if (self.clusters + 1) as f64 > self.cfg.upsize_threshold * cap as f64 {
            self.start_resize(ResizeKind::Upsize, mem)?;
            return Ok(true);
        }
        if (self.clusters as f64) < self.cfg.downsize_threshold * cap as f64
            && self.ways[0].cur.len() > self.cfg.initial_entries_per_way
        {
            self.start_resize(ResizeKind::Downsize, mem)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Starts an all-way out-of-place resize: allocates every new way
    /// first (rolling back on failure), then swaps them in.
    fn start_resize(&mut self, kind: ResizeKind, mem: &mut PhysMem) -> Result<(), AllocError> {
        debug_assert!(!self.is_resizing());
        let mut new_arrays = Vec::with_capacity(self.ways.len());
        for way in &self.ways {
            let new_len = match kind {
                ResizeKind::Upsize => way.cur.len() * 2,
                ResizeKind::Downsize => way.cur.len() / 2,
            };
            match WayArray::new(new_len, mem) {
                Ok(a) => new_arrays.push(a),
                Err(e) => {
                    for a in new_arrays {
                        mem.free(a.chunk);
                    }
                    return Err(e);
                }
            }
        }
        for (way, new_array) in self.ways.iter_mut().zip(new_arrays) {
            let old = mem::replace(&mut way.cur, new_array);
            way.old = Some((old, 0, kind, 0));
        }
        self.note_bytes();
        Ok(())
    }

    /// Advances all in-flight migrations by the per-insert quota; returns
    /// entries migrated.
    fn migration_step(&mut self, mem: &mut PhysMem) -> u32 {
        let mut migrated = 0;
        for w in 0..self.ways.len() {
            for _ in 0..self.cfg.migrate_per_insert {
                if !self.ways[w].is_resizing() {
                    break;
                }
                migrated += self.migrate_one(w, mem);
            }
        }
        migrated
    }

    fn finish_all_resizes(&mut self, mem: &mut PhysMem) {
        for w in 0..self.ways.len() {
            while self.ways[w].is_resizing() {
                self.migrate_one(w, mem);
            }
        }
    }

    /// Migrates the entry under way `w`'s rehash pointer. Returns 1 if an
    /// entry actually moved.
    fn migrate_one(&mut self, w: usize, mem: &mut PhysMem) -> u32 {
        // Collect state and, if migration is done, complete the resize.
        let (idx, done) = {
            let (old, ptr, _, _) = self.ways[w].old.as_mut().unwrap();
            if *ptr >= old.len() {
                (0, true)
            } else {
                let i = *ptr;
                *ptr += 1;
                (i, false)
            }
        };
        if done {
            self.complete_resize(w, mem);
            return 0;
        }
        let taken = self.ways[w].old.as_mut().unwrap().0.slots[idx].take();
        let Some(cluster) = taken else {
            return 0;
        };
        self.ways[w].old.as_mut().unwrap().3 += 1;
        self.stats.entries_migrated += 1;
        self.ways[w].occupied -= 1;
        // Insert into the new table of the same way.
        let h = self.family.hash(w, &cluster.tag());
        let new_idx = h as usize & (self.ways[w].cur.len() - 1);
        let dst = &mut self.ways[w].cur.slots[new_idx];
        match dst {
            None => {
                *dst = Some(cluster);
                self.ways[w].occupied += 1;
                self.stats.record_kicks(0);
            }
            Some(_) => {
                let victim = mem::replace(dst, Some(cluster)).unwrap();
                self.ways[w].occupied += 1;
                let other = self.other_way(w);
                let kicks = self.place_infallible(other, victim);
                self.stats.record_kicks(kicks + 1);
            }
        }
        1
    }

    /// Like `place`, but for displaced victims during migration: if the
    /// kick budget is exceeded it drains the active resize (guaranteed to
    /// open space) rather than allocating.
    fn place_infallible(&mut self, way: usize, cluster: ClusterEntry) -> usize {
        let mut way = way;
        let mut entry = cluster;
        let mut kicks = 0usize;
        loop {
            let h = self.family.hash(way, &entry.tag());
            let (in_old, idx) = self.ways[way].locate(h);
            let slot = self.ways[way].slot_mut(in_old, idx);
            match slot {
                None => {
                    *slot = Some(entry);
                    self.ways[way].occupied += 1;
                    return kicks;
                }
                Some(_) => {
                    entry = mem::replace(slot, Some(entry)).unwrap();
                    kicks += 1;
                    way = self.other_way(way);
                    assert!(
                        kicks < 10_000,
                        "victim placement diverged; table pathologically full"
                    );
                }
            }
        }
    }

    /// Finalizes a way's migration: frees the old chunk, records the event.
    fn complete_resize(&mut self, w: usize, mem: &mut PhysMem) {
        let (old, _, kind, moved) = self.ways[w].old.take().unwrap();
        debug_assert!(old.slots.iter().all(Option::is_none));
        let event = ResizeEvent {
            way: w,
            kind,
            from_entries: old.len(),
            to_entries: self.ways[w].cur.len(),
            moved,
            kept: 0, // out-of-place migration always moves
        };
        self.stats.resizes.push(event);
        mem.free(old.chunk);
    }
}
