use mehpt_types::{Ppn, Vpn};

/// Translations per clustered entry (one 64-byte cache line).
pub const CLUSTER_PTES: usize = 8;

/// A clustered page-table entry: the translations of 8 contiguous virtual
/// pages in one cache-line-sized entry.
///
/// This is Yaniv & Tsafrir's *page table entry clustering* as adopted by
/// ECPT (Section II-B): placing 8 contiguous PTEs together restores the
/// spatial locality that plain hashing destroys, and the hash tag
/// (`VPN >> 3`) is stored compactly (*page table entry compaction* models
/// the tag inside otherwise-unused PTE bits, so the entry still fits one
/// 64-byte line — which is why sizing math throughout uses
/// [`ClusterEntry::BYTES`] = 64).
///
/// # Examples
///
/// ```
/// use mehpt_ecpt::ClusterEntry;
/// use mehpt_types::{Ppn, Vpn};
///
/// let vpn = Vpn(0x1234);
/// let mut e = ClusterEntry::new(ClusterEntry::tag_of(vpn));
/// e.set(vpn, Ppn(55));
/// assert_eq!(e.get(vpn), Some(Ppn(55)));
/// assert_eq!(e.get(Vpn(0x1235)), None); // same cluster, different slot
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterEntry {
    tag: u64,
    /// `0` marks an invalid translation; otherwise `ppn + 1`.
    ptes: [u64; CLUSTER_PTES],
}

impl ClusterEntry {
    /// The modeled size of one entry: a 64-byte cache line.
    pub const BYTES: u64 = 64;

    /// Creates an empty cluster with the given tag.
    pub fn new(tag: u64) -> ClusterEntry {
        ClusterEntry {
            tag,
            ptes: [0; CLUSTER_PTES],
        }
    }

    /// The cluster tag (hash key) of a VPN.
    #[inline]
    pub fn tag_of(vpn: Vpn) -> u64 {
        vpn.0 / CLUSTER_PTES as u64
    }

    /// The PTE slot of a VPN within its cluster.
    #[inline]
    pub fn slot_of(vpn: Vpn) -> usize {
        (vpn.0 % CLUSTER_PTES as u64) as usize
    }

    /// This cluster's tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Whether this cluster holds `vpn`'s translation slot.
    pub fn covers(&self, vpn: Vpn) -> bool {
        self.tag == Self::tag_of(vpn)
    }

    /// Reads the translation for `vpn`, if valid.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `vpn` belongs to a different cluster.
    pub fn get(&self, vpn: Vpn) -> Option<Ppn> {
        debug_assert!(self.covers(vpn));
        match self.ptes[Self::slot_of(vpn)] {
            0 => None,
            raw => Some(Ppn(raw - 1)),
        }
    }

    /// Writes the translation for `vpn`; returns the previous one.
    pub fn set(&mut self, vpn: Vpn, ppn: Ppn) -> Option<Ppn> {
        debug_assert!(self.covers(vpn));
        let slot = &mut self.ptes[Self::slot_of(vpn)];
        let prev = match *slot {
            0 => None,
            raw => Some(Ppn(raw - 1)),
        };
        *slot = ppn.0 + 1;
        prev
    }

    /// Invalidates the translation for `vpn`; returns it.
    pub fn clear(&mut self, vpn: Vpn) -> Option<Ppn> {
        debug_assert!(self.covers(vpn));
        let slot = &mut self.ptes[Self::slot_of(vpn)];
        let prev = match *slot {
            0 => None,
            raw => Some(Ppn(raw - 1)),
        };
        *slot = 0;
        prev
    }

    /// The number of valid translations in the cluster.
    pub fn valid_count(&self) -> usize {
        self.ptes.iter().filter(|&&p| p != 0).count()
    }

    /// Whether no translation is valid.
    pub fn is_empty(&self) -> bool {
        self.valid_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_contiguous_vpns_share_a_cluster() {
        let base = Vpn(0x1000);
        let tag = ClusterEntry::tag_of(base);
        for i in 0..8 {
            assert_eq!(ClusterEntry::tag_of(Vpn(base.0 + i)), tag);
            assert_eq!(ClusterEntry::slot_of(Vpn(base.0 + i)), i as usize);
        }
        assert_ne!(ClusterEntry::tag_of(Vpn(base.0 + 8)), tag);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let vpn = Vpn(42);
        let mut e = ClusterEntry::new(ClusterEntry::tag_of(vpn));
        assert_eq!(e.get(vpn), None);
        assert_eq!(e.set(vpn, Ppn(7)), None);
        assert_eq!(e.get(vpn), Some(Ppn(7)));
        assert_eq!(e.set(vpn, Ppn(8)), Some(Ppn(7)));
        assert_eq!(e.clear(vpn), Some(Ppn(8)));
        assert!(e.is_empty());
    }

    #[test]
    fn ppn_zero_is_representable() {
        let vpn = Vpn(0);
        let mut e = ClusterEntry::new(0);
        e.set(vpn, Ppn(0));
        assert_eq!(e.get(vpn), Some(Ppn(0)));
        assert_eq!(e.valid_count(), 1);
    }

    #[test]
    fn valid_count_tracks_slots() {
        let mut e = ClusterEntry::new(0);
        for i in 0..8u64 {
            e.set(Vpn(i), Ppn(i + 100));
        }
        assert_eq!(e.valid_count(), 8);
        e.clear(Vpn(3));
        assert_eq!(e.valid_count(), 7);
        assert!(!e.is_empty());
    }
}
