use std::collections::HashMap;

use mehpt_types::{PageSize, VirtAddr, Vpn};

/// The Cuckoo Walk Tables of one process: per-region page-size presence.
///
/// The PUD-CWT tracks 1GB regions, the PMD-CWT 2MB regions. Entries are
/// reference-counted per page size so unmaps clear bits exactly when the
/// last mapping of that size leaves the region. Shared by the ECPT baseline
/// and ME-HPT (both designs keep CWTs; the walker caches them in CWCs).
///
/// # Examples
///
/// ```
/// use mehpt_ecpt::CwtSet;
/// use mehpt_types::{PageSize, VirtAddr};
///
/// let mut cwt = CwtSet::new();
/// let va = VirtAddr::new(0x20_0000);
/// cwt.note_map(va.vpn(PageSize::Base4K), PageSize::Base4K);
/// assert_eq!(cwt.pmd_mask(va), Some(0b001));
/// cwt.note_unmap(va.vpn(PageSize::Base4K), PageSize::Base4K);
/// assert_eq!(cwt.pmd_mask(va), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CwtSet {
    /// 1GB region (`va >> 30`) → per-page-size mapping counts.
    pud: HashMap<u64, [u64; 3]>,
    /// 2MB region (`va >> 21`) → mapping counts for 4KB and 2MB pages.
    pmd: HashMap<u64, [u64; 2]>,
}

impl CwtSet {
    /// Creates empty walk tables.
    pub fn new() -> CwtSet {
        CwtSet::default()
    }

    /// Records that `vpn` (of size `ps`) was mapped.
    pub fn note_map(&mut self, vpn: Vpn, ps: PageSize) {
        let va = vpn.base_addr(ps);
        self.pud.entry(va.0 >> 30).or_default()[ps.index()] += 1;
        if ps != PageSize::Giant1G {
            self.pmd.entry(va.0 >> 21).or_default()[ps.index()] += 1;
        }
    }

    /// Records that `vpn` (of size `ps`) was unmapped.
    pub fn note_unmap(&mut self, vpn: Vpn, ps: PageSize) {
        let va = vpn.base_addr(ps);
        if let Some(counts) = self.pud.get_mut(&(va.0 >> 30)) {
            counts[ps.index()] = counts[ps.index()].saturating_sub(1);
            if counts.iter().all(|&c| c == 0) {
                self.pud.remove(&(va.0 >> 30));
            }
        }
        if ps != PageSize::Giant1G {
            if let Some(counts) = self.pmd.get_mut(&(va.0 >> 21)) {
                counts[ps.index()] = counts[ps.index()].saturating_sub(1);
                if counts.iter().all(|&c| c == 0) {
                    self.pmd.remove(&(va.0 >> 21));
                }
            }
        }
    }

    /// The page-size mask of `va`'s 1GB region, or `None` if untracked.
    pub fn pud_mask(&self, va: VirtAddr) -> Option<u8> {
        self.pud.get(&(va.0 >> 30)).map(|counts| {
            counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .fold(0u8, |m, (i, _)| m | (1 << i))
        })
    }

    /// The page-size mask of `va`'s 2MB region, or `None` if untracked.
    pub fn pmd_mask(&self, va: VirtAddr) -> Option<u8> {
        self.pmd.get(&(va.0 >> 21)).map(|counts| {
            counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .fold(0u8, |m, (i, _)| m | (1 << i))
        })
    }

    /// Total CWT entries (for memory accounting; ~8B each in the model).
    pub fn entries(&self) -> usize {
        self.pud.len() + self.pmd.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_combine_page_sizes() {
        let mut cwt = CwtSet::new();
        let va = VirtAddr::new(0x4000_0000);
        cwt.note_map(va.vpn(PageSize::Base4K), PageSize::Base4K);
        cwt.note_map(va.vpn(PageSize::Huge2M), PageSize::Huge2M);
        assert_eq!(cwt.pmd_mask(va), Some(0b011));
        assert_eq!(cwt.pud_mask(va), Some(0b011));
        cwt.note_map(va.vpn(PageSize::Giant1G), PageSize::Giant1G);
        assert_eq!(cwt.pud_mask(va), Some(0b111));
        // 1GB pages do not appear in the PMD-CWT.
        assert_eq!(cwt.pmd_mask(va), Some(0b011));
    }

    #[test]
    fn refcounts_keep_bits_until_last_unmap() {
        let mut cwt = CwtSet::new();
        let a = VirtAddr::new(0x1000);
        let b = VirtAddr::new(0x2000); // same 2MB region
        cwt.note_map(a.vpn(PageSize::Base4K), PageSize::Base4K);
        cwt.note_map(b.vpn(PageSize::Base4K), PageSize::Base4K);
        cwt.note_unmap(a.vpn(PageSize::Base4K), PageSize::Base4K);
        assert_eq!(cwt.pmd_mask(a), Some(0b001));
        cwt.note_unmap(b.vpn(PageSize::Base4K), PageSize::Base4K);
        assert_eq!(cwt.pmd_mask(a), None);
        assert_eq!(cwt.entries(), 0);
    }

    #[test]
    fn regions_are_independent() {
        let mut cwt = CwtSet::new();
        let a = VirtAddr::new(0);
        let b = VirtAddr::new(1 << 21);
        cwt.note_map(a.vpn(PageSize::Base4K), PageSize::Base4K);
        assert_eq!(cwt.pmd_mask(b), None);
        assert_eq!(cwt.pud_mask(b), Some(0b001), "same 1GB region");
    }
}
