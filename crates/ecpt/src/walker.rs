use mehpt_tlb::{MemoryModel, SetAssocCache};
use mehpt_types::{PageSize, PhysAddr, Ppn, VirtAddr, PAGE_SIZES};

use crate::process::size_bit;
use crate::view::HptView;

/// Synthetic physical base of the in-memory PUD-CWT, placed far above the
/// modeled DRAM so CWT lines never alias page-table or data lines in the
/// cache model.
const PUD_CWT_BASE: u64 = 1 << 40;
/// Synthetic physical base of the in-memory PMD-CWT.
const PMD_CWT_BASE: u64 = 1 << 41;

/// Configuration of the hardware cuckoo walker (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EcptWalkerConfig {
    /// PMD-CWC capacity in entries.
    pub pmd_cwc_entries: usize,
    /// PUD-CWC capacity in entries.
    pub pud_cwc_entries: usize,
    /// CWC round-trip latency in cycles.
    pub cwc_latency: u64,
    /// CRC hash latency in cycles.
    pub hash_latency: u64,
    /// Extra serial latency per probe group, e.g. an L2P-table access that
    /// could not be hidden. Zero for the ECPT baseline; ME-HPT sets it only
    /// on paths where the CWC overlap cannot hide the L2P lookup.
    pub extra_latency: u64,
}

impl Default for EcptWalkerConfig {
    fn default() -> EcptWalkerConfig {
        EcptWalkerConfig {
            pmd_cwc_entries: 16,
            pud_cwc_entries: 2,
            cwc_latency: 4,
            hash_latency: 2,
            extra_latency: 0,
        }
    }
}

/// The outcome of one timed HPT walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HptWalkResult {
    /// The translation found, or `None` on a page fault.
    pub translation: Option<(Ppn, PageSize)>,
    /// Total walk latency in cycles.
    pub cycles: u64,
    /// Memory accesses performed (they run in parallel per probe group, so
    /// latency is the max of each group, but every access occupies
    /// bandwidth and cache state).
    pub memory_accesses: u32,
}

/// The hardware walker for elastic cuckoo page tables.
///
/// On a TLB miss, the walker consults its Cuckoo Walk Caches to learn which
/// page sizes exist in the faulting region, then probes the corresponding
/// tables' ways *in parallel* — one memory-access latency in the common
/// case, versus up to four dependent accesses for radix (Figure 7).
///
/// CWC entries mirror CWT state; the OS must call
/// [`EcptWalker::invalidate_region`] when a mapping changes a region's
/// page-size mask.
#[derive(Clone, Debug)]
pub struct EcptWalker {
    pmd_cwc: SetAssocCache,
    pud_cwc: SetAssocCache,
    cfg: EcptWalkerConfig,
    walks: u64,
    total_cycles: u64,
    total_accesses: u64,
    cwt_walks: u64,
}

impl EcptWalker {
    /// Builds the walker with Table III's CWC geometry.
    pub fn paper_default() -> EcptWalker {
        EcptWalker::new(EcptWalkerConfig::default())
    }

    /// Builds the walker from an explicit configuration.
    pub fn new(cfg: EcptWalkerConfig) -> EcptWalker {
        EcptWalker {
            pmd_cwc: SetAssocCache::fully_associative(cfg.pmd_cwc_entries),
            pud_cwc: SetAssocCache::fully_associative(cfg.pud_cwc_entries),
            cfg,
            walks: 0,
            total_cycles: 0,
            total_accesses: 0,
            cwt_walks: 0,
        }
    }

    /// Performs one timed walk for `va` over any hashed page table.
    pub fn walk<T: HptView>(
        &mut self,
        ecpt: &T,
        va: VirtAddr,
        mem: &mut MemoryModel,
    ) -> HptWalkResult {
        self.walks += 1;
        let pud_key = va.0 >> 30;
        let pmd_key = va.0 >> 21;
        // One parallel probe of both CWCs, overlapped with hashing (and
        // with the L2P access in ME-HPT, Section V-D).
        let mut cycles = self.cfg.cwc_latency.max(self.cfg.hash_latency) + self.cfg.extra_latency;

        let pud_cached = self.pud_cwc.contains(pud_key);
        let pmd_cached = self.pmd_cwc.contains(pmd_key);
        let pud_mask = ecpt.pud_mask(va).unwrap_or(0);
        let pmd_mask = ecpt.pmd_mask(va).unwrap_or(0);
        // Which page sizes to probe. With warm CWCs the masks are known
        // exactly; on a CWC miss the walker does NOT serialize behind the
        // in-memory CWT — per Figure 7 it generates all potential accesses
        // up front, fetching the missing CWT entries *in parallel* with
        // speculative probes of every page size the coarser knowledge
        // allows. Latency stays one memory round trip; the price is extra
        // (parallel) probes, which is why the CWCs exist at all.
        let sizes = match (pud_cached, pmd_cached) {
            (true, true) => (pmd_mask & 0b011) | (pud_mask & 0b100),
            (true, false) => pud_mask, // refine small sizes speculatively
            (false, _) => 0b111,       // probe everything
        };
        let mut group: Vec<PhysAddr> = Vec::with_capacity(11);
        if !pud_cached {
            group.push(PhysAddr::new(PUD_CWT_BASE + pud_key * 8));
            self.cwt_walks += 1;
            self.pud_cwc.fill(pud_key);
        }
        if !pmd_cached {
            group.push(PhysAddr::new(PMD_CWT_BASE + pmd_key * 8));
            self.cwt_walks += 1;
            self.pmd_cwc.fill(pmd_key);
        }
        for ps in PAGE_SIZES {
            if sizes & size_bit(ps) != 0 {
                group.extend(ecpt.probe_addrs(ps, va.vpn(ps)));
            }
        }
        let accesses = group.len() as u32;
        if !group.is_empty() {
            cycles += mem.access_parallel(&group);
        }
        let translation = ecpt.translate(va);
        self.total_cycles += cycles;
        self.total_accesses += accesses as u64;
        HptWalkResult {
            translation,
            cycles,
            memory_accesses: accesses,
        }
    }

    /// Drops cached CWC state for the regions containing `va`; the OS calls
    /// this when a map/unmap changes the region's page-size mask.
    pub fn invalidate_region(&mut self, va: VirtAddr) {
        self.pud_cwc.invalidate(va.0 >> 30);
        self.pmd_cwc.invalidate(va.0 >> 21);
    }

    /// Flushes the CWCs (context switch).
    pub fn flush(&mut self) {
        self.pmd_cwc.flush();
        self.pud_cwc.flush();
    }

    /// Walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// CWT memory walks performed (CWC misses).
    pub fn cwt_walks(&self) -> u64 {
        self.cwt_walks
    }

    /// Mean walk latency in cycles.
    pub fn mean_cycles(&self) -> f64 {
        if self.walks == 0 {
            return 0.0;
        }
        self.total_cycles as f64 / self.walks as f64
    }

    /// Mean memory accesses per walk.
    pub fn mean_accesses(&self) -> f64 {
        if self.walks == 0 {
            return 0.0;
        }
        self.total_accesses as f64 / self.walks as f64
    }
}
