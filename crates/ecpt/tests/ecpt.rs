//! Integration tests of the ECPT baseline: table mechanics, contiguity
//! behaviour, walker timing and the fragmentation failure mode.

use mehpt_ecpt::{ClusterEntry, Ecpt, EcptConfig, EcptTable, EcptWalker};
use mehpt_mem::{AllocCostModel, AllocError, AllocTag, Fragmenter, PhysMem};
use mehpt_tlb::MemoryModel;
use mehpt_types::rng::Xoshiro256;
use mehpt_types::{PageSize, Ppn, VirtAddr, Vpn, GIB, MIB};

fn mem(bytes: u64) -> PhysMem {
    PhysMem::with_cost_model(bytes, AllocCostModel::zero_cost())
}

#[test]
fn table_insert_lookup_remove_roundtrip() {
    let mut m = mem(GIB);
    let mut t = EcptTable::new(&mut m).unwrap();
    for i in 0..20_000u64 {
        t.insert(Vpn(i * 3), Ppn(i), &mut m).unwrap();
    }
    assert_eq!(t.pages(), 20_000);
    for i in 0..20_000u64 {
        assert_eq!(t.lookup(Vpn(i * 3)), Some(Ppn(i)), "lookup {i}");
    }
    assert_eq!(t.lookup(Vpn(1)), None);
    for i in 0..20_000u64 {
        assert_eq!(t.remove(Vpn(i * 3), &mut m), Some(Ppn(i)));
    }
    assert_eq!(t.pages(), 0);
}

#[test]
fn clustering_keeps_contiguous_pages_together() {
    let mut m = mem(GIB);
    let mut t = EcptTable::new(&mut m).unwrap();
    // 8 contiguous VPNs consume exactly one cluster entry.
    for i in 0..8u64 {
        t.insert(Vpn(0x100 + i), Ppn(i), &mut m).unwrap();
    }
    assert_eq!(t.clusters(), 1);
    assert_eq!(t.pages(), 8);
    // The walker probes the same addresses for all eight.
    let base_probes = t.probe_addrs(Vpn(0x100));
    for i in 1..8u64 {
        assert_eq!(t.probe_addrs(Vpn(0x100 + i)), base_probes);
    }
}

#[test]
fn ways_grow_as_contiguous_chunks() {
    let mut m = mem(GIB);
    let mut t = EcptTable::new(&mut m).unwrap();
    // Initial ways are 128 entries = 8KB.
    assert_eq!(t.way_sizes(), vec![8192, 8192, 8192]);
    // Scatter enough clusters to force several upsizes.
    for i in 0..30_000u64 {
        t.insert(Vpn(i * 8), Ppn(i), &mut m).unwrap();
    }
    let max_way = t.way_sizes().into_iter().max().unwrap();
    assert!(max_way >= MIB, "ways should have grown past 1MB: {max_way}");
    // The ECPT contiguity requirement: the allocator had to produce a
    // single chunk as large as a full way.
    assert_eq!(
        m.stats().tag(AllocTag::PageTable).max_contiguous_bytes,
        max_way
    );
    // All ways resize together (all-way sizing).
    let sizes = t.way_sizes();
    assert!(sizes.iter().all(|&s| s == sizes[0]), "{sizes:?}");
}

#[test]
fn resize_fails_on_fragmented_memory() {
    // The paper: above 0.7 FMFI the 64MB allocation fails and the ECPT run
    // cannot finish. Reproduce at small scale: fragment a small memory so
    // the next way doubling cannot be satisfied.
    let mut m = mem(64 * MIB);
    let mut rng = Xoshiro256::seed_from_u64(3);
    Fragmenter::fragment(&mut m, 0.9, &mut rng);
    let mut t = EcptTable::new(&mut m).unwrap();
    let mut failed = None;
    for i in 0..200_000u64 {
        if let Err(e) = t.insert(Vpn(i * 8), Ppn(i), &mut m) {
            failed = Some(e);
            break;
        }
    }
    let err = failed.expect("fragmentation must eventually kill an upsize");
    assert!(matches!(err, AllocError::TooFragmented { .. }), "{err}");
}

#[test]
fn gradual_resize_keeps_lookups_correct() {
    let mut m = mem(GIB);
    let mut t = EcptTable::new(&mut m).unwrap();
    for i in 0..50_000u64 {
        t.insert(Vpn(i), Ppn(i + 7), &mut m).unwrap();
        if i % 13 == 0 {
            let probe = i / 2;
            assert_eq!(t.lookup(Vpn(probe)), Some(Ppn(probe + 7)), "at i={i}");
        }
    }
    assert!(!t.resizes().is_empty());
    // Out-of-place migration moves every entry it touches.
    for e in t.resizes() {
        assert_eq!(e.kept, 0);
    }
}

#[test]
fn peak_memory_includes_old_and_new() {
    let mut m = mem(GIB);
    let mut t = EcptTable::new(&mut m).unwrap();
    for i in 0..50_000u64 {
        t.insert(Vpn(i * 8), Ppn(i), &mut m).unwrap();
    }
    // During each resize old+new coexist: peak ≥ 1.5 × the largest steady
    // state the table reached at that point.
    let steady: u64 = t.way_sizes().iter().sum();
    assert!(
        t.peak_bytes() >= steady + steady / 4,
        "peak {} vs steady {steady}",
        t.peak_bytes()
    );
}

#[test]
fn process_ecpt_multiple_page_sizes() {
    let mut m = mem(GIB);
    let mut ecpt = Ecpt::new(&mut m).unwrap();
    let va4k = VirtAddr::new(0x1000_0000);
    let va2m = VirtAddr::new(0x8000_0000);
    let va1g = VirtAddr::new(0x40_0000_0000);
    ecpt.map(va4k.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(1), &mut m)
        .unwrap();
    ecpt.map(va2m.vpn(PageSize::Huge2M), PageSize::Huge2M, Ppn(2), &mut m)
        .unwrap();
    ecpt.map(
        va1g.vpn(PageSize::Giant1G),
        PageSize::Giant1G,
        Ppn(3),
        &mut m,
    )
    .unwrap();
    assert_eq!(ecpt.translate(va4k), Some((Ppn(1), PageSize::Base4K)));
    assert_eq!(
        ecpt.translate(va2m + 0x1234),
        Some((Ppn(2), PageSize::Huge2M))
    );
    assert_eq!(
        ecpt.translate(va1g + 123 * MIB),
        Some((Ppn(3), PageSize::Giant1G))
    );
    assert_eq!(ecpt.translate(VirtAddr::new(0x777_0000)), None);
    assert_eq!(ecpt.pages(), 3);
}

#[test]
fn cwt_masks_track_mappings() {
    let mut m = mem(GIB);
    let mut ecpt = Ecpt::new(&mut m).unwrap();
    let va = VirtAddr::new(0x1234_5000);
    assert_eq!(ecpt.pmd_mask(va), None);
    ecpt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(9), &mut m)
        .unwrap();
    assert_eq!(ecpt.pmd_mask(va), Some(0b001));
    assert_eq!(ecpt.pud_mask(va), Some(0b001));
    ecpt.unmap(va.vpn(PageSize::Base4K), PageSize::Base4K, &mut m);
    assert_eq!(ecpt.pmd_mask(va), None);
    assert_eq!(ecpt.pud_mask(va), None);
}

#[test]
fn walker_parallel_probe_beats_radix_chain() {
    let mut m = mem(GIB);
    let mut ecpt = Ecpt::new(&mut m).unwrap();
    let mut walker = EcptWalker::paper_default();
    let mut dram = MemoryModel::paper_default();
    let va = VirtAddr::new(0x5000_2000);
    ecpt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(5), &mut m)
        .unwrap();
    // Cold walk: CWT walks + parallel probes.
    let cold = walker.walk(&ecpt, va, &mut dram);
    assert_eq!(cold.translation, Some((Ppn(5), PageSize::Base4K)));
    // Warm walk: CWCs hit, one parallel probe group — a single memory
    // round trip regardless of how many ways are probed.
    let warm = walker.walk(&ecpt, va, &mut dram);
    assert_eq!(warm.memory_accesses, 3, "3 ways probed in parallel");
    assert!(
        warm.cycles <= 4 + 200,
        "warm HPT walk must cost one parallel memory round trip: {} cycles",
        warm.cycles
    );
    // Latency is one parallel round trip either way; warmth shows up as
    // fewer probes (the speculative CWT fetches and page-size probes are
    // gone).
    assert!(warm.cycles <= cold.cycles);
    assert!(
        warm.memory_accesses < cold.memory_accesses,
        "warm ({}) must probe fewer lines than cold ({})",
        warm.memory_accesses,
        cold.memory_accesses
    );
    assert_eq!(warm.translation, Some((Ppn(5), PageSize::Base4K)));
}

#[test]
fn walker_faults_report_none() {
    let mut m = mem(GIB);
    let ecpt = Ecpt::new(&mut m).unwrap();
    let mut walker = EcptWalker::paper_default();
    let mut dram = MemoryModel::paper_default();
    let r = walker.walk(&ecpt, VirtAddr::new(0xabc_d000), &mut dram);
    assert_eq!(r.translation, None);
}

#[test]
fn walker_probes_only_present_page_sizes() {
    let mut m = mem(GIB);
    let mut ecpt = Ecpt::new(&mut m).unwrap();
    let mut walker = EcptWalker::paper_default();
    let mut dram = MemoryModel::paper_default();
    let va = VirtAddr::new(0x6000_0000);
    ecpt.map(va.vpn(PageSize::Huge2M), PageSize::Huge2M, Ppn(4), &mut m)
        .unwrap();
    walker.walk(&ecpt, va, &mut dram); // cold: fills CWCs
    let warm = walker.walk(&ecpt, va, &mut dram);
    assert_eq!(
        warm.memory_accesses, 3,
        "only the 2MB table's 3 ways are probed"
    );
}

#[test]
fn kick_distribution_mostly_zero() {
    let mut m = mem(GIB);
    let mut t = EcptTable::new(&mut m).unwrap();
    for i in 0..100_000u64 {
        t.insert(Vpn(i * 8), Ppn(i), &mut m).unwrap();
    }
    let hist = t.kicks_histogram();
    let total: u64 = hist.iter().sum();
    assert!(hist[0] as f64 / total as f64 > 0.5, "{hist:?}");
}

#[test]
fn insert_is_idempotent_update() {
    let mut m = mem(GIB);
    let mut t = EcptTable::new(&mut m).unwrap();
    t.insert(Vpn(5), Ppn(1), &mut m).unwrap();
    t.insert(Vpn(5), Ppn(2), &mut m).unwrap();
    assert_eq!(t.pages(), 1);
    assert_eq!(t.lookup(Vpn(5)), Some(Ppn(2)));
}

#[test]
fn destroy_returns_all_memory() {
    let mut m = mem(GIB);
    let before = m.stats().tag(AllocTag::PageTable).current_bytes;
    let mut ecpt = Ecpt::new(&mut m).unwrap();
    for i in 0..10_000u64 {
        ecpt.map(Vpn(i), PageSize::Base4K, Ppn(i), &mut m).unwrap();
    }
    ecpt.destroy(&mut m);
    assert_eq!(m.stats().tag(AllocTag::PageTable).current_bytes, before);
}

#[test]
fn cluster_entry_is_cache_line_sized_in_the_model() {
    assert_eq!(ClusterEntry::BYTES, 64);
    // 128 entries × 64B = the paper's 8KB initial way.
    assert_eq!(128 * ClusterEntry::BYTES, 8192);
}

#[test]
fn custom_config_is_respected() {
    let mut m = mem(GIB);
    let cfg = EcptConfig {
        ways: 4,
        initial_entries_per_way: 256,
        ..EcptConfig::default()
    };
    let t = EcptTable::with_config(cfg, &mut m).unwrap();
    assert_eq!(t.way_sizes().len(), 4);
    assert_eq!(t.capacity(), 1024);
}
