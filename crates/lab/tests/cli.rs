//! The CLI exit-code contract, exercised end-to-end through
//! [`mehpt_lab::cli::run_command`]: 0 success, 1 drift, 2 usage errors,
//! 3 I/O or parse errors. Scripts (and `scripts/ci.sh`) branch on these,
//! so each code is pinned by a test.

use mehpt_lab::cli::{parse_command, run_diff, DiffArgs};
use mehpt_lab::diff::DiffOptions;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mehpt-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A minimal but structurally complete schema-v4 report.
fn tiny_report(total_cycles: u64) -> String {
    use mehpt_lab::engine::{run_cells_with, RunOptions};
    use mehpt_lab::grid::{ExperimentGrid, Tuning};
    use mehpt_lab::report::LabReport;
    use mehpt_sim::{PtKind, SimReport};
    use mehpt_workloads::App;

    let grid = ExperimentGrid::paper(vec![App::Gups], vec![PtKind::MeHpt], vec![false]);
    let specs = grid.expand(&Tuning::quick());
    let cells = run_cells_with(
        &specs,
        &RunOptions::with_jobs(1),
        move |spec| SimReport {
            app: spec.app.name().to_string(),
            kind: spec.kind,
            thp: spec.thp,
            accesses: 100,
            total_cycles,
            base_cycles: 0,
            translation_cycles: 0,
            fault_cycles: 0,
            alloc_cycles: 0,
            os_pt_cycles: 0,
            faults: 0,
            pages_4k: 0,
            pages_2m: 0,
            tlb_miss_rate: 0.0,
            walks: 0,
            mean_walk_accesses: 0.0,
            mean_walk_cycles: 0.0,
            pt_final_bytes: 0,
            pt_peak_bytes: 0,
            pt_max_contiguous: 0,
            way_sizes_4k: vec![],
            way_phys_4k: vec![],
            upsizes_per_way_4k: vec![],
            upsizes_per_way_2m: vec![],
            moved_fraction_4k: 0.0,
            kicks_histogram: vec![],
            l2p_entries_used: 0,
            chunk_switches: 0,
            data_bytes_nominal: 0,
            aborted: None,
        },
        &|_| {},
    );
    LabReport {
        preset: "tiny".into(),
        scale: 0.005,
        base_seed: 0x5eed,
        seeds: 1,
        retries: 0,
        timeout_secs: None,
        fault: None,
        cells,
    }
    .to_json()
}

fn diff_args(a: PathBuf, b: PathBuf) -> DiffArgs {
    DiffArgs {
        a,
        b,
        opts: DiffOptions::default(),
    }
}

#[test]
fn diff_exit_codes_follow_the_contract() {
    let dir = tmp_dir("exit-codes");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    std::fs::write(&a, tiny_report(10_000)).unwrap();
    std::fs::write(&b, tiny_report(10_000)).unwrap();

    // 0: identical reports diff clean.
    assert_eq!(run_diff(&diff_args(a.clone(), b.clone())), 0);

    // 1: a drifted metric.
    std::fs::write(&b, tiny_report(99_999)).unwrap();
    assert_eq!(run_diff(&diff_args(a.clone(), b.clone())), 1);

    // 3: a missing report is an I/O error, not drift and not usage.
    assert_eq!(run_diff(&diff_args(a.clone(), dir.join("missing.json"))), 3);

    // 3: a truncated report (torn mid-write without atomic rename).
    let full = tiny_report(10_000);
    std::fs::write(&b, &full[..full.len() / 2]).unwrap();
    assert_eq!(
        run_diff(&diff_args(a.clone(), b.clone())),
        3,
        "truncated JSON must parse-fail into exit 3"
    );

    // 3: structurally valid JSON that is not a report at all.
    std::fs::write(&b, "{\"not\": \"a report\"}").unwrap();
    assert_eq!(run_diff(&diff_args(a, b)), 3);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_are_distinct_from_io_errors() {
    // Exit 2 comes from the parse layer: the binary maps a parse error to
    // 2 before run_diff is ever reached. Pin the split here: bad flags
    // fail to parse (→2 in main), unreadable files fail in run_diff (→3).
    let args: Vec<String> = ["diff", "a.json"].iter().map(|s| s.to_string()).collect();
    assert!(
        parse_command(&args).is_err(),
        "one path is a usage error, surfaced before any I/O"
    );
    let args: Vec<String> = ["diff", "a.json", "b.json", "--wat"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert!(parse_command(&args).is_err());
}
