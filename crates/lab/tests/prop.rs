//! Property tests for the replication axis: aggregation must not care
//! about the order replicates are collected in (different `--jobs`
//! interleavings deliver them in arbitrary order).

use mehpt_lab::grid::{ExperimentGrid, Tuning};
use mehpt_lab::report::{CellMetrics, CellResult, CellStatus, RepResult};
use mehpt_lab::stats::{CellStats, MetricStats};
use mehpt_sim::PtKind;
use mehpt_types::proptest_lite::{check, Gen};
use mehpt_workloads::App;

fn shuffle<T>(g: &mut Gen, v: &mut [T]) {
    for i in (1..v.len()).rev() {
        v.swap(i, g.index(i + 1));
    }
}

fn metrics(g: &mut Gen) -> CellMetrics {
    CellMetrics {
        accesses: 1 + g.below(1_000_000),
        total_cycles: 1 + g.below(100_000_000),
        base_cycles: g.below(1_000_000),
        translation_cycles: g.below(1_000_000),
        fault_cycles: g.below(1_000_000),
        alloc_cycles: g.below(1_000_000),
        os_pt_cycles: g.below(1_000_000),
        faults: g.below(10_000),
        pages_4k: g.below(10_000),
        pages_2m: g.below(100),
        tlb_miss_rate: g.below(1000) as f64 / 1000.0,
        walks: g.below(10_000),
        mean_walk_accesses: 1.0 + g.below(40) as f64 / 10.0,
        mean_walk_cycles: g.below(2000) as f64 / 10.0,
        pt_final_bytes: g.below(1 << 30),
        pt_peak_bytes: g.below(1 << 30),
        pt_max_contiguous: g.below(1 << 26),
        way_sizes_4k: vec![8192; 3],
        way_phys_4k: vec![8192; 3],
        upsizes_per_way_4k: vec![g.below(20); 3],
        upsizes_per_way_2m: vec![],
        moved_fraction_4k: g.below(1000) as f64 / 1000.0,
        kicks_histogram: vec![g.below(100), g.below(10)],
        l2p_entries_used: g.below(288),
        chunk_switches: g.below(2),
        data_bytes_nominal: 1 << 30,
    }
}

#[test]
fn metric_stats_are_bitwise_order_invariant() {
    check("metric_stats_order_invariance", 128, |g: &mut Gen| {
        let mut values: Vec<f64> = (0..1 + g.len(24))
            .map(|_| g.below(1_000_000) as f64 / 7.0)
            .collect();
        let original = MetricStats::from_values(&values).unwrap();
        shuffle(g, &mut values);
        let shuffled = MetricStats::from_values(&values).unwrap();
        assert_eq!(original.mean.to_bits(), shuffled.mean.to_bits());
        assert_eq!(original.min.to_bits(), shuffled.min.to_bits());
        assert_eq!(original.max.to_bits(), shuffled.max.to_bits());
        assert_eq!(original.ci95.to_bits(), shuffled.ci95.to_bits());
    });
}

#[test]
fn cell_stats_are_order_invariant_over_replicates() {
    check("cell_stats_order_invariance", 64, |g: &mut Gen| {
        let mut reps: Vec<CellMetrics> = (0..1 + g.len(9)).map(|_| metrics(g)).collect();
        let original = CellStats::from_metrics(&reps.iter().collect::<Vec<_>>()).unwrap();
        shuffle(g, &mut reps);
        let shuffled = CellStats::from_metrics(&reps.iter().collect::<Vec<_>>()).unwrap();
        assert_eq!(original, shuffled);
        for ((_, a), (_, b)) in original.named().zip(shuffled.named()) {
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            assert_eq!(a.ci95.to_bits(), b.ci95.to_bits());
        }
    });
}

#[test]
fn cell_results_serialize_identically_for_any_arrival_order() {
    let grid = ExperimentGrid::paper(vec![App::Gups], vec![PtKind::MeHpt], vec![false]);
    let spec = grid.expand(&Tuning::quick()).remove(0);
    check("cell_result_arrival_order", 64, |g: &mut Gen| {
        let n = 1 + g.len(7) as u32;
        let mut reps: Vec<RepResult> = (0..n)
            .map(|r| {
                let failed = g.below(8) == 0 && r != 0;
                RepResult {
                    replicate: r,
                    seed: spec.replicate_seed(r),
                    status: if failed {
                        CellStatus::Failed
                    } else {
                        CellStatus::Ok
                    },
                    error: failed.then(|| "injected".to_string()),
                    metrics: (!failed).then(|| metrics(g)),
                    wall_millis: g.below(100),
                    attempts: vec![],
                }
            })
            .collect();
        let in_order = CellResult::from_replicates(spec.clone(), reps.clone());
        shuffle(g, &mut reps);
        let shuffled = CellResult::from_replicates(spec.clone(), reps);
        assert_eq!(in_order.status, shuffled.status);
        assert_eq!(in_order.stats, shuffled.stats);
        assert_eq!(in_order.metrics, shuffled.metrics);
        // The strongest form: the serialized report is byte-identical.
        let report = |cell: CellResult| {
            mehpt_lab::LabReport {
                preset: "prop".into(),
                scale: 1.0,
                base_seed: 0x5eed,
                seeds: n,
                retries: 0,
                timeout_secs: None,
                fault: None,
                cells: vec![cell],
            }
            .to_json()
        };
        assert_eq!(report(in_order), report(shuffled));
    });
}

#[test]
fn aggregation_over_failed_replicate_subsets_is_order_invariant() {
    // A random subset of replicates fails or times out (no metrics), the
    // rest survive: the aggregate must depend only on *which* replicates
    // failed, never on the order outcomes were collected in.
    let grid = ExperimentGrid::paper(vec![App::Bfs], vec![PtKind::MeHpt], vec![false]);
    let spec = grid.expand(&Tuning::quick()).remove(0);
    check("failed_subset_order_invariance", 96, |g: &mut Gen| {
        let n = 2 + g.len(8) as u32;
        let mut reps: Vec<RepResult> = (0..n)
            .map(|r| {
                // ~1 in 3 replicates is a failure; alternate the flavor so
                // panicked and timed-out records mix in one cell.
                let status = match g.below(6) {
                    0 => CellStatus::Failed,
                    1 => CellStatus::TimedOut,
                    _ => CellStatus::Ok,
                };
                let failed = status != CellStatus::Ok;
                RepResult {
                    replicate: r,
                    seed: spec.replicate_seed(r),
                    status,
                    error: failed.then(|| format!("injected {}", status.label())),
                    metrics: (!failed).then(|| metrics(g)),
                    wall_millis: g.below(100),
                    attempts: vec![],
                }
            })
            .collect();
        let in_order = CellResult::from_replicates(spec.clone(), reps.clone());
        shuffle(g, &mut reps);
        let shuffled = CellResult::from_replicates(spec.clone(), reps.clone());
        assert_eq!(in_order.status, shuffled.status);
        assert_eq!(in_order.error, shuffled.error, "first error is by index");
        assert_eq!(in_order.stats, shuffled.stats);
        let survivors = reps.iter().filter(|r| r.metrics.is_some()).count() as u32;
        match &in_order.stats {
            None => assert_eq!(survivors, 0, "stats vanish only when all fail"),
            Some(st) => assert_eq!(st.replicates, survivors),
        }
        let report = |cell: CellResult| {
            mehpt_lab::LabReport {
                preset: "prop".into(),
                scale: 1.0,
                base_seed: 0x5eed,
                seeds: n,
                retries: 0,
                timeout_secs: Some(2.0),
                fault: Some("panic:@2".into()),
                cells: vec![cell],
            }
            .to_json()
        };
        assert_eq!(report(in_order), report(shuffled));
    });
}

#[test]
fn ci95_degrades_gracefully_under_failures() {
    // n − failures < 2 ⇒ no confidence band (0.0), never NaN; and every
    // serialized ci95 stays finite whatever subset of replicates failed.
    let grid = ExperimentGrid::paper(vec![App::Gups], vec![PtKind::MeHpt], vec![false]);
    let spec = grid.expand(&Tuning::quick()).remove(0);
    check("ci95_graceful_degradation", 96, |g: &mut Gen| {
        let n = 1 + g.len(6) as u32;
        // Leave 0, 1 or more survivors, chosen at random.
        let survivors = g.below(u64::from(n) + 1) as u32;
        let reps: Vec<RepResult> = (0..n)
            .map(|r| {
                let failed = r >= survivors;
                RepResult {
                    replicate: r,
                    seed: spec.replicate_seed(r),
                    status: if failed {
                        CellStatus::TimedOut
                    } else {
                        CellStatus::Ok
                    },
                    error: failed.then(|| "deadline".to_string()),
                    metrics: (!failed).then(|| metrics(g)),
                    wall_millis: 1,
                    attempts: vec![],
                }
            })
            .collect();
        let cell = CellResult::from_replicates(spec.clone(), reps);
        match survivors {
            0 => assert!(cell.stats.is_none(), "no survivors, no stats"),
            1 => {
                let st = cell.stats.as_ref().unwrap();
                assert_eq!(st.replicates, 1);
                for (name, f) in st.named() {
                    assert_eq!(f.ci95, 0.0, "{name}: a single survivor has no band");
                    assert_eq!(f.min, f.max, "{name}");
                }
            }
            _ => {
                let st = cell.stats.as_ref().unwrap();
                assert_eq!(st.replicates, survivors);
                for (name, f) in st.named() {
                    assert!(f.ci95.is_finite() && f.ci95 >= 0.0, "{name}: {}", f.ci95);
                    assert!(f.mean.is_finite(), "{name}");
                }
            }
        }
    });
}
