//! Golden-file pin of the schema v2 JSON report.
//!
//! The committed `tests/golden/report_v2.json` is the contract external
//! tooling parses: `schema_version`, `seeds`, per-cell `replicates` and
//! `stats` blocks. Any serialization change shows up as a diff against the
//! golden file; regenerate deliberately with
//! `MEHPT_BLESS=1 cargo test -p mehpt-lab --test golden`.

use mehpt_lab::grid::{ExperimentGrid, Tuning};
use mehpt_lab::json::Json;
use mehpt_lab::report::{CellMetrics, CellResult, CellStatus, LabReport, RepResult};
use mehpt_sim::PtKind;
use mehpt_workloads::App;

/// Hand-built metrics: the golden file pins the schema, not the simulator.
fn metrics(total_cycles: u64) -> CellMetrics {
    CellMetrics {
        accesses: 1000,
        total_cycles,
        base_cycles: 1000,
        translation_cycles: 2000,
        fault_cycles: 300,
        alloc_cycles: 200,
        os_pt_cycles: 100,
        faults: 42,
        pages_4k: 512,
        pages_2m: 2,
        tlb_miss_rate: 0.125,
        walks: 125,
        mean_walk_accesses: 1.5,
        mean_walk_cycles: 33.25,
        pt_final_bytes: 65536,
        pt_peak_bytes: 131072,
        pt_max_contiguous: 8192,
        way_sizes_4k: vec![16384, 16384, 8192],
        way_phys_4k: vec![16384, 8192, 8192],
        upsizes_per_way_4k: vec![1, 1, 0],
        upsizes_per_way_2m: vec![],
        moved_fraction_4k: 0.5,
        kicks_histogram: vec![900, 90, 10],
        l2p_entries_used: 7,
        chunk_switches: 0,
        data_bytes_nominal: 1 << 30,
    }
}

fn golden_report() -> LabReport {
    let grid = ExperimentGrid::paper(vec![App::Gups, App::Bfs], vec![PtKind::MeHpt], vec![false]);
    let specs = grid.expand(&Tuning::quick());
    let cells = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let reps = (0..3u32)
                .map(|r| {
                    // Cell 1's replicate 2 fails, exercising the mixed-status
                    // aggregate and the error field.
                    let failed = i == 1 && r == 2;
                    RepResult {
                        replicate: r,
                        seed: spec.replicate_seed(r),
                        status: if failed {
                            CellStatus::Failed
                        } else {
                            CellStatus::Ok
                        },
                        error: failed.then(|| "injected golden failure".to_string()),
                        metrics: (!failed).then(|| metrics(10_000 + 100 * (i as u64 + r as u64))),
                        wall_millis: 1,
                    }
                })
                .collect();
            CellResult::from_replicates(spec, reps)
        })
        .collect();
    LabReport {
        preset: "golden".into(),
        scale: 0.005,
        base_seed: 0x5eed,
        seeds: 3,
        cells,
    }
}

#[test]
fn report_v2_json_matches_the_golden_file() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("report_v2.json");
    let rendered = golden_report().to_json();
    if std::env::var_os("MEHPT_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect(
        "missing tests/golden/report_v2.json — regenerate with \
         MEHPT_BLESS=1 cargo test -p mehpt-lab --test golden",
    );
    assert_eq!(
        rendered, golden,
        "schema v2 serialization drifted from the golden file; if the \
         change is intentional, re-bless with MEHPT_BLESS=1"
    );
}

#[test]
fn golden_file_parses_and_carries_the_v2_shape() {
    let doc = Json::parse(&golden_report().to_json()).expect("report parses");
    assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(2.0));
    assert_eq!(doc.get("seeds").and_then(Json::as_f64), Some(3.0));
    let cells = doc.get("cells").and_then(Json::as_arr).expect("cells");
    assert_eq!(cells.len(), 2);
    for cell in cells {
        let reps = cell.get("replicates").and_then(Json::as_arr).expect("reps");
        assert_eq!(reps.len(), 3);
        let stats = cell.get("stats").expect("stats");
        let cpa = stats.get("cycles_per_access").expect("cpa block");
        for field in ["mean", "min", "max", "ci95"] {
            assert!(cpa.get(field).and_then(Json::as_f64).is_some());
        }
    }
    // The mixed-status cell: failed aggregate, 2 metric-bearing replicates.
    let failed = &cells[1];
    assert_eq!(failed.get("status").and_then(Json::as_str), Some("failed"));
    let stats = failed.get("stats").expect("stats survive a failed rep");
    assert_eq!(stats.get("replicates").and_then(Json::as_f64), Some(2.0));
}
