//! Golden-file pins of the serialized JSON report schema.
//!
//! Two contracts live here:
//!
//! * `tests/golden/report_v3.json` — the **current** schema, byte-pinned
//!   against [`golden_report`]: failure records (a timed-out, a panicked
//!   and an ok cell in one report), the report-level `timeout_secs` and
//!   `fault` configuration, and the `summary.timed_out` count. Any
//!   serialization change shows up as a diff; regenerate deliberately
//!   with `MEHPT_BLESS=1 cargo test -p mehpt-lab --test golden`.
//! * `tests/golden/report_v2.json` — a **frozen fixture** from before
//!   failure records existed. The writer no longer produces it (blessing
//!   never touches it); it pins the *reader* side: `mehpt-lab diff` must
//!   keep accepting v2 documents through its fallback path.

use mehpt_lab::diff::{diff_texts, DiffOptions};
use mehpt_lab::grid::{ExperimentGrid, Tuning};
use mehpt_lab::json::Json;
use mehpt_lab::report::{CellMetrics, CellResult, CellStatus, LabReport, RepResult};
use mehpt_sim::PtKind;
use mehpt_workloads::App;

/// Hand-built metrics: the golden file pins the schema, not the simulator.
fn metrics(total_cycles: u64) -> CellMetrics {
    CellMetrics {
        accesses: 1000,
        total_cycles,
        base_cycles: 1000,
        translation_cycles: 2000,
        fault_cycles: 300,
        alloc_cycles: 200,
        os_pt_cycles: 100,
        faults: 42,
        pages_4k: 512,
        pages_2m: 2,
        tlb_miss_rate: 0.125,
        walks: 125,
        mean_walk_accesses: 1.5,
        mean_walk_cycles: 33.25,
        pt_final_bytes: 65536,
        pt_peak_bytes: 131072,
        pt_max_contiguous: 8192,
        way_sizes_4k: vec![16384, 16384, 8192],
        way_phys_4k: vec![16384, 8192, 8192],
        upsizes_per_way_4k: vec![1, 1, 0],
        upsizes_per_way_2m: vec![],
        moved_fraction_4k: 0.5,
        kicks_histogram: vec![900, 90, 10],
        l2p_entries_used: 7,
        chunk_switches: 0,
        data_bytes_nominal: 1 << 30,
    }
}

/// One ok cell, one with a panicked replicate, one with a timed-out
/// replicate — the full failure-record shape in a single report.
fn golden_report() -> LabReport {
    let grid = ExperimentGrid::paper(
        vec![App::Gups, App::Bfs, App::Mummer],
        vec![PtKind::MeHpt],
        vec![false],
    );
    let specs = grid.expand(&Tuning::quick());
    let cells = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let reps = (0..3u32)
                .map(|r| {
                    // Cell 1's replicate 2 panics; cell 2's replicate 1
                    // hits the watchdog. Cell 0 stays healthy.
                    let status = match (i, r) {
                        (1, 2) => CellStatus::Failed,
                        (2, 1) => CellStatus::TimedOut,
                        _ => CellStatus::Ok,
                    };
                    let error = match status {
                        CellStatus::Failed => Some("injected golden failure".to_string()),
                        CellStatus::TimedOut => {
                            Some("replicate exceeded the 2s deadline; worker abandoned".to_string())
                        }
                        _ => None,
                    };
                    RepResult {
                        replicate: r,
                        seed: spec.replicate_seed(r),
                        status,
                        metrics: (status == CellStatus::Ok)
                            .then(|| metrics(10_000 + 100 * (i as u64 + r as u64))),
                        error,
                        wall_millis: 1,
                    }
                })
                .collect();
            CellResult::from_replicates(spec, reps)
        })
        .collect();
    LabReport {
        preset: "golden".into(),
        scale: 0.005,
        base_seed: 0x5eed,
        seeds: 3,
        timeout_secs: Some(2.0),
        fault: Some("panic:bfs,hang:mummer".into()),
        cells,
    }
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

#[test]
fn report_v3_json_matches_the_golden_file() {
    let path = golden_path("report_v3.json");
    let rendered = golden_report().to_json();
    if std::env::var_os("MEHPT_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect(
        "missing tests/golden/report_v3.json — regenerate with \
         MEHPT_BLESS=1 cargo test -p mehpt-lab --test golden",
    );
    assert_eq!(
        rendered, golden,
        "schema v3 serialization drifted from the golden file; if the \
         change is intentional, re-bless with MEHPT_BLESS=1"
    );
}

#[test]
fn golden_file_pins_the_v3_failure_record_shape() {
    let doc = Json::parse(&golden_report().to_json()).expect("report parses");
    assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(3.0));
    assert_eq!(doc.get("seeds").and_then(Json::as_f64), Some(3.0));
    // The failure-handling configuration is part of the document.
    assert_eq!(doc.get("timeout_secs").and_then(Json::as_f64), Some(2.0));
    assert_eq!(
        doc.get("fault").and_then(Json::as_str),
        Some("panic:bfs,hang:mummer")
    );
    let summary = doc.get("summary").expect("summary");
    assert_eq!(summary.get("ok").and_then(Json::as_f64), Some(1.0));
    assert_eq!(summary.get("failed").and_then(Json::as_f64), Some(1.0));
    assert_eq!(summary.get("timed_out").and_then(Json::as_f64), Some(1.0));

    let cells = doc.get("cells").and_then(Json::as_arr).expect("cells");
    assert_eq!(cells.len(), 3);
    for cell in cells {
        let reps = cell.get("replicates").and_then(Json::as_arr).expect("reps");
        assert_eq!(reps.len(), 3);
    }
    // The panicked cell: failed aggregate, 2 metric-bearing replicates.
    let failed = &cells[1];
    assert_eq!(failed.get("status").and_then(Json::as_str), Some("failed"));
    let stats = failed.get("stats").expect("stats survive a failed rep");
    assert_eq!(stats.get("replicates").and_then(Json::as_f64), Some(2.0));
    // The timed-out cell: deterministic failure record — status plus the
    // configured deadline in the error text, never measured wall-clock.
    let timed = &cells[2];
    assert_eq!(
        timed.get("status").and_then(Json::as_str),
        Some("timed_out")
    );
    let rep1 = &timed.get("replicates").and_then(Json::as_arr).unwrap()[1];
    assert_eq!(rep1.get("status").and_then(Json::as_str), Some("timed_out"));
    assert_eq!(
        rep1.get("error").and_then(Json::as_str),
        Some("replicate exceeded the 2s deadline; worker abandoned")
    );
}

#[test]
fn v2_golden_still_reads_through_the_fallback_path() {
    // The frozen v2 fixture: parses, identifies as schema 2, and diffs
    // clean against itself — including its failed cell, which the diff
    // fallback reader must skip (and count) rather than reject.
    let text = std::fs::read_to_string(golden_path("report_v2.json"))
        .expect("tests/golden/report_v2.json is a frozen fixture and must stay committed");
    let doc = Json::parse(&text).expect("v2 fixture parses");
    assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(2.0));
    assert!(
        doc.get("timeout_secs").is_none(),
        "v2 predates the watchdog"
    );

    let d = diff_texts(&text, &text, &DiffOptions::default()).expect("v2 diffs");
    assert!(d.clean(), "{}", d.render());
    assert_eq!(d.cells_compared, 1, "the ok cell compares field-by-field");
    assert_eq!(d.cells_skipped, 1, "the failed cell is skipped, not fatal");
    assert!(d.values_compared > 0);
}
