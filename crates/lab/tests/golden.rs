//! Golden-file pins of the serialized JSON report schema and the result
//! journal's on-disk format.
//!
//! Four contracts live here:
//!
//! * `tests/golden/report_v4.json` — the **current** schema, byte-pinned
//!   against [`golden_report`]: failure records (a timed-out, a panicked
//!   and an ok cell in one report), per-replicate attempt histories, the
//!   report-level `timeout_secs` / `fault` / `retries` configuration, and
//!   the `summary.timed_out` / `summary.workers_abandoned` counts. Any
//!   serialization change shows up as a diff; regenerate deliberately
//!   with `MEHPT_BLESS=1 cargo test -p mehpt-lab --test golden`.
//! * `tests/golden/report_v3.json` — a **frozen fixture** from before
//!   attempt histories existed. The writer no longer produces it
//!   (blessing never touches it); it pins the *reader* side: `mehpt-lab
//!   diff` must keep accepting v3 documents.
//! * `tests/golden/report_v2.json` — the older frozen fixture, from
//!   before failure records existed; pins the diff fallback path.
//! * `tests/golden/journal_v1.bin` — the journal format (magic, framed
//!   CRC-checksummed records), byte-pinned against the same report; the
//!   same fixture, corrupted on copies, pins the recovery semantics.

use mehpt_lab::diff::{diff_texts, DiffOptions};
use mehpt_lab::grid::{ExperimentGrid, Tuning};
use mehpt_lab::json::Json;
use mehpt_lab::report::{AttemptRecord, CellMetrics, CellResult, CellStatus, LabReport, RepResult};
use mehpt_lab::{journal, JournalWriter};
use mehpt_sim::PtKind;
use mehpt_workloads::App;

/// Hand-built metrics: the golden file pins the schema, not the simulator.
fn metrics(total_cycles: u64) -> CellMetrics {
    CellMetrics {
        accesses: 1000,
        total_cycles,
        base_cycles: 1000,
        translation_cycles: 2000,
        fault_cycles: 300,
        alloc_cycles: 200,
        os_pt_cycles: 100,
        faults: 42,
        pages_4k: 512,
        pages_2m: 2,
        tlb_miss_rate: 0.125,
        walks: 125,
        mean_walk_accesses: 1.5,
        mean_walk_cycles: 33.25,
        pt_final_bytes: 65536,
        pt_peak_bytes: 131072,
        pt_max_contiguous: 8192,
        way_sizes_4k: vec![16384, 16384, 8192],
        way_phys_4k: vec![16384, 8192, 8192],
        upsizes_per_way_4k: vec![1, 1, 0],
        upsizes_per_way_2m: vec![],
        moved_fraction_4k: 0.5,
        kicks_histogram: vec![900, 90, 10],
        l2p_entries_used: 7,
        chunk_switches: 0,
        data_bytes_nominal: 1 << 30,
    }
}

const DEADLINE: &str = "replicate exceeded the 2s deadline; worker abandoned";

/// One ok cell, one with a panicked replicate, one with a timed-out
/// replicate that exhausted a one-retry budget — the full failure-record
/// and attempt-history shape in a single report.
fn golden_report() -> LabReport {
    let grid = ExperimentGrid::paper(
        vec![App::Gups, App::Bfs, App::Mummer],
        vec![PtKind::MeHpt],
        vec![false],
    );
    let specs = grid.expand(&Tuning::quick());
    let cells = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let reps = (0..3u32)
                .map(|r| {
                    // Cell 1's replicate 2 panics; cell 2's replicate 1
                    // hits the watchdog on both of its attempts (the
                    // report runs with retries=1). Cell 0 stays healthy.
                    let status = match (i, r) {
                        (1, 2) => CellStatus::Failed,
                        (2, 1) => CellStatus::TimedOut,
                        _ => CellStatus::Ok,
                    };
                    let error = match status {
                        CellStatus::Failed => Some("injected golden failure".to_string()),
                        CellStatus::TimedOut => Some(DEADLINE.to_string()),
                        _ => None,
                    };
                    // The timed-out replicate carries an explicit
                    // two-attempt history; everything else records a
                    // single attempt (the empty vector, serialized as
                    // one synthesized attempt).
                    let (seed, attempts) = if status == CellStatus::TimedOut {
                        (
                            spec.retry_seed(r, 1),
                            vec![
                                AttemptRecord {
                                    attempt: 0,
                                    seed: spec.replicate_seed(r),
                                    status: CellStatus::TimedOut,
                                    error: Some(DEADLINE.to_string()),
                                },
                                AttemptRecord {
                                    attempt: 1,
                                    seed: spec.retry_seed(r, 1),
                                    status: CellStatus::TimedOut,
                                    error: Some(DEADLINE.to_string()),
                                },
                            ],
                        )
                    } else {
                        (spec.replicate_seed(r), vec![])
                    };
                    RepResult {
                        replicate: r,
                        seed,
                        status,
                        metrics: (status == CellStatus::Ok)
                            .then(|| metrics(10_000 + 100 * (i as u64 + r as u64))),
                        error,
                        wall_millis: 1,
                        attempts,
                    }
                })
                .collect();
            CellResult::from_replicates(spec, reps)
        })
        .collect();
    LabReport {
        preset: "golden".into(),
        scale: 0.005,
        base_seed: 0x5eed,
        seeds: 3,
        retries: 1,
        timeout_secs: Some(2.0),
        fault: Some("panic:bfs,hang:mummer".into()),
        cells,
    }
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

#[test]
fn report_v4_json_matches_the_golden_file() {
    let path = golden_path("report_v4.json");
    let rendered = golden_report().to_json();
    if std::env::var_os("MEHPT_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect(
        "missing tests/golden/report_v4.json — regenerate with \
         MEHPT_BLESS=1 cargo test -p mehpt-lab --test golden",
    );
    assert_eq!(
        rendered, golden,
        "schema v4 serialization drifted from the golden file; if the \
         change is intentional, re-bless with MEHPT_BLESS=1"
    );
}

#[test]
fn golden_file_pins_the_v4_failure_record_shape() {
    let doc = Json::parse(&golden_report().to_json()).expect("report parses");
    assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(4.0));
    assert_eq!(doc.get("seeds").and_then(Json::as_f64), Some(3.0));
    // The failure-handling configuration is part of the document.
    assert_eq!(doc.get("retries").and_then(Json::as_f64), Some(1.0));
    assert_eq!(doc.get("timeout_secs").and_then(Json::as_f64), Some(2.0));
    assert_eq!(
        doc.get("fault").and_then(Json::as_str),
        Some("panic:bfs,hang:mummer")
    );
    let summary = doc.get("summary").expect("summary");
    assert_eq!(summary.get("ok").and_then(Json::as_f64), Some(1.0));
    assert_eq!(summary.get("failed").and_then(Json::as_f64), Some(1.0));
    assert_eq!(summary.get("timed_out").and_then(Json::as_f64), Some(1.0));
    // Both attempts of the doubly-timed-out replicate abandoned a worker.
    assert_eq!(
        summary.get("workers_abandoned").and_then(Json::as_f64),
        Some(2.0)
    );

    let cells = doc.get("cells").and_then(Json::as_arr).expect("cells");
    assert_eq!(cells.len(), 3);
    for cell in cells {
        let reps = cell.get("replicates").and_then(Json::as_arr).expect("reps");
        assert_eq!(reps.len(), 3);
        for rep in reps {
            let attempts = rep
                .get("attempts")
                .and_then(Json::as_arr)
                .expect("every v4 replicate carries an attempt history");
            assert!(!attempts.is_empty());
            assert_eq!(attempts[0].get("attempt").and_then(Json::as_f64), Some(0.0));
        }
    }
    // The panicked cell: failed aggregate, 2 metric-bearing replicates.
    let failed = &cells[1];
    assert_eq!(failed.get("status").and_then(Json::as_str), Some("failed"));
    let stats = failed.get("stats").expect("stats survive a failed rep");
    assert_eq!(stats.get("replicates").and_then(Json::as_f64), Some(2.0));
    // The timed-out cell: deterministic failure record — status plus the
    // configured deadline in the error text, never measured wall-clock —
    // and the full two-attempt history with distinct retry seeds.
    let timed = &cells[2];
    assert_eq!(
        timed.get("status").and_then(Json::as_str),
        Some("timed_out")
    );
    let rep1 = &timed.get("replicates").and_then(Json::as_arr).unwrap()[1];
    assert_eq!(rep1.get("status").and_then(Json::as_str), Some("timed_out"));
    assert_eq!(rep1.get("error").and_then(Json::as_str), Some(DEADLINE));
    let attempts = rep1.get("attempts").and_then(Json::as_arr).unwrap();
    assert_eq!(attempts.len(), 2);
    assert_ne!(
        attempts[0].get("seed").and_then(Json::as_u64),
        attempts[1].get("seed").and_then(Json::as_u64),
        "each attempt runs a distinct identity-derived seed"
    );
    assert_eq!(
        rep1.get("seed").and_then(Json::as_u64),
        attempts[1].get("seed").and_then(Json::as_u64),
        "the replicate's seed is the final attempt's"
    );
}

#[test]
fn v3_golden_still_reads_as_a_frozen_fixture() {
    // The frozen v3 fixture (pre-attempt-history schema): parses,
    // identifies as schema 3, and diffs clean against itself — its
    // failed and timed-out cells are skipped (and counted), never fatal.
    let text = std::fs::read_to_string(golden_path("report_v3.json"))
        .expect("tests/golden/report_v3.json is a frozen fixture and must stay committed");
    let doc = Json::parse(&text).expect("v3 fixture parses");
    assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(3.0));
    assert!(
        doc.get("cells").and_then(Json::as_arr).unwrap()[0]
            .get("replicates")
            .and_then(Json::as_arr)
            .unwrap()[0]
            .get("attempts")
            .is_none(),
        "v3 predates attempt histories"
    );

    let d = diff_texts(&text, &text, &DiffOptions::default()).expect("v3 diffs");
    assert!(d.clean(), "{}", d.render());
    assert_eq!(d.cells_compared, 1, "the ok cell compares field-by-field");
    assert_eq!(d.cells_skipped, 2, "failed + timed-out cells are skipped");
}

#[test]
fn v2_golden_still_reads_through_the_fallback_path() {
    // The frozen v2 fixture: parses, identifies as schema 2, and diffs
    // clean against itself — including its failed cell, which the diff
    // fallback reader must skip (and count) rather than reject.
    let text = std::fs::read_to_string(golden_path("report_v2.json"))
        .expect("tests/golden/report_v2.json is a frozen fixture and must stay committed");
    let doc = Json::parse(&text).expect("v2 fixture parses");
    assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(2.0));
    assert!(
        doc.get("timeout_secs").is_none(),
        "v2 predates the watchdog"
    );

    let d = diff_texts(&text, &text, &DiffOptions::default()).expect("v2 diffs");
    assert!(d.clean(), "{}", d.render());
    assert_eq!(d.cells_compared, 1, "the ok cell compares field-by-field");
    assert_eq!(d.cells_skipped, 1, "the failed cell is skipped, not fatal");
    assert!(d.values_compared > 0);
}

/// Writes the golden report's replicates through [`JournalWriter`]
/// exactly as a sweep would (same fingerprint inputs).
fn write_golden_journal(path: &std::path::Path) {
    let report = golden_report();
    let timeout = Some(std::time::Duration::from_secs(2));
    let fault = report.fault.clone();
    let mut w = JournalWriter::create(path).expect("create journal");
    for cell in &report.cells {
        let fp = journal::fingerprint(
            &cell.spec,
            timeout,
            report.retries,
            fault.as_deref(),
            report.seeds,
        );
        for rep in &cell.replicates {
            // Journaled results never carry wall-clock.
            let mut rep = rep.clone();
            rep.wall_millis = 0;
            w.append(&cell.spec.id(), rep.replicate, fp, &rep)
                .expect("append");
        }
    }
    w.sync().expect("sync");
}

#[test]
fn journal_v1_matches_the_golden_file_and_recovers_from_corruption() {
    let tmp = std::env::temp_dir().join(format!("mehpt-golden-journal-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let fresh = tmp.join("journal_v1.bin");
    write_golden_journal(&fresh);
    let rendered = std::fs::read(&fresh).unwrap();

    let path = golden_path("journal_v1.bin");
    if std::env::var_os("MEHPT_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden journal");
    }
    let golden = std::fs::read(&path).expect(
        "missing tests/golden/journal_v1.bin — regenerate with \
         MEHPT_BLESS=1 cargo test -p mehpt-lab --test golden",
    );
    assert_eq!(
        rendered, golden,
        "journal v1 framing drifted from the golden file; if the change \
         is intentional, re-bless with MEHPT_BLESS=1 (and bump the \
         journal format version if old journals can no longer be read)"
    );

    // The fixture reads back losslessly: 3 cells × 3 replicates, and the
    // recovered results match the report (modulo journaled wall-clock).
    let recovered = journal::read(&path).expect("read golden journal");
    assert!(!recovered.truncated);
    assert_eq!(recovered.records.len(), 9);
    let report = golden_report();
    for (rec, rep) in recovered
        .records
        .iter()
        .zip(report.cells.iter().flat_map(|c| c.replicates.iter()))
    {
        assert_eq!(rec.result.status, rep.status);
        assert_eq!(rec.result.seed, rep.seed);
        assert_eq!(rec.result.error, rep.error);
        assert_eq!(rec.result.metrics, rep.metrics);
        assert_eq!(rec.result.attempt_history(), rep.attempt_history());
        assert_eq!(rec.result.wall_millis, 0);
    }

    // A torn tail on a copy: the last record drops, everything else holds.
    let torn = tmp.join("torn.bin");
    std::fs::write(&torn, &golden[..golden.len() - 3]).unwrap();
    let r = journal::read(&torn).expect("torn journal still reads");
    assert!(r.truncated);
    assert_eq!(r.records.len(), 8);

    // A flipped byte mid-file: the scan stops at the damage, salvaging
    // every record before it — never a panic, never zero.
    let flipped = tmp.join("flipped.bin");
    let mut bytes = golden.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&flipped, &bytes).unwrap();
    let r = journal::read(&flipped).expect("flipped journal still reads");
    assert!(r.truncated);
    assert!(!r.records.is_empty() && r.records.len() < 9);

    let _ = std::fs::remove_dir_all(&tmp);
}
