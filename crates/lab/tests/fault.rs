//! Fault-matrix integration suite: the engine's isolation guarantees as
//! assertions, exercised through deterministic fault injection.
//!
//! For every fault kind in {panic, hang, poison} × jobs in {1, 4} × seeds
//! in {1, 3}, a small sweep runs with one targeted cell and the resulting
//! reports must be byte-identical across the jobs axis, carry the correct
//! per-replicate statuses, and leave every healthy cell's metrics and
//! stats exactly equal to a fault-free baseline run.

use std::time::Duration;

use mehpt_lab::engine::{run_cells_injected, RunOptions};
use mehpt_lab::fault::{FaultKind, FaultPlan};
use mehpt_lab::grid::{CellSpec, ExperimentGrid, Tuning};
use mehpt_lab::report::{CellResult, CellStatus, LabReport};
use mehpt_sim::{PtKind, SimReport};
use mehpt_types::rng::Xoshiro256;
use mehpt_workloads::App;

/// The hang timeout. Long enough that a healthy fake cell (microseconds)
/// never trips it, short enough to keep the matrix fast.
const TIMEOUT: Duration = Duration::from_millis(250);

/// A cheap, deterministic stand-in for the simulator: metrics are a pure
/// function of the cell seed, so two runs of the same spec always agree.
fn fake_sim(spec: &CellSpec) -> SimReport {
    let mut rng = Xoshiro256::seed_from_u64(spec.seed);
    SimReport {
        app: spec.app.name().to_string(),
        kind: spec.kind,
        thp: spec.thp,
        accesses: 100 + rng.next_below(100),
        total_cycles: 10_000 + rng.next_below(1_000_000),
        base_cycles: 0,
        translation_cycles: 0,
        fault_cycles: 0,
        alloc_cycles: 0,
        os_pt_cycles: 0,
        faults: rng.next_below(50),
        pages_4k: 0,
        pages_2m: 0,
        tlb_miss_rate: 0.25,
        walks: 0,
        mean_walk_accesses: 0.0,
        mean_walk_cycles: 0.0,
        pt_final_bytes: 0,
        pt_peak_bytes: 4096 + rng.next_below(4096),
        pt_max_contiguous: 0,
        way_sizes_4k: vec![],
        way_phys_4k: vec![],
        upsizes_per_way_4k: vec![],
        upsizes_per_way_2m: vec![],
        moved_fraction_4k: 0.0,
        kicks_histogram: vec![],
        l2p_entries_used: 0,
        chunk_switches: 0,
        data_bytes_nominal: 0,
        aborted: None,
    }
}

/// Three single-variant cells; the GUPS one is the fault target.
fn specs() -> Vec<CellSpec> {
    ExperimentGrid::paper(
        vec![App::Gups, App::Bfs, App::Mummer],
        vec![PtKind::MeHpt],
        vec![false],
    )
    .expand(&Tuning::quick())
}

const TARGET: &str = "gups";

fn spec_for(kind: FaultKind) -> String {
    format!("{}:{TARGET}", kind.label())
}

fn run_retrying(
    jobs: usize,
    seeds: u32,
    retries: u32,
    fault: Option<&FaultPlan>,
) -> Vec<CellResult> {
    let timeout = fault.map(|_| TIMEOUT);
    let opts = RunOptions {
        jobs,
        seeds,
        retries,
        timeout,
    };
    run_cells_injected(&specs(), &opts, fault, fake_sim, &|_| {})
}

fn run(jobs: usize, seeds: u32, fault: Option<&FaultPlan>) -> Vec<CellResult> {
    run_retrying(jobs, seeds, 0, fault)
}

fn report_retrying(
    seeds: u32,
    retries: u32,
    fault: Option<&FaultPlan>,
    cells: Vec<CellResult>,
) -> String {
    LabReport {
        preset: "fault-matrix".into(),
        scale: Tuning::quick().scale,
        base_seed: Tuning::quick().base_seed,
        seeds,
        retries,
        timeout_secs: fault.map(|_| TIMEOUT.as_secs_f64()),
        fault: fault.map(|p| p.spec().to_string()),
        cells,
    }
    .to_json()
}

fn report(seeds: u32, fault: Option<&FaultPlan>, cells: Vec<CellResult>) -> String {
    report_retrying(seeds, 0, fault, cells)
}

/// The per-replicate status a given fault kind must produce.
fn faulted_status(kind: FaultKind) -> CellStatus {
    match kind {
        FaultKind::Panic => CellStatus::Failed,
        FaultKind::Hang => CellStatus::TimedOut,
        // Poison completes "successfully" — the corruption is silent.
        FaultKind::Poison => CellStatus::Ok,
    }
}

#[test]
fn fault_matrix_is_deterministic_and_isolates_failures() {
    let baseline_by_seeds: Vec<Vec<CellResult>> = [1, 3].iter().map(|&s| run(1, s, None)).collect();

    for kind in [FaultKind::Panic, FaultKind::Hang, FaultKind::Poison] {
        let plan = FaultPlan::parse(&spec_for(kind)).unwrap();
        for (si, &seeds) in [1u32, 3].iter().enumerate() {
            let baseline = &baseline_by_seeds[si];
            let serial = run(1, seeds, Some(&plan));
            let parallel = run(4, seeds, Some(&plan));

            // Byte-identical reports across the jobs axis.
            let a = report(seeds, Some(&plan), serial.clone());
            let b = report(seeds, Some(&plan), parallel);
            assert_eq!(
                a, b,
                "{kind:?} seeds={seeds}: --jobs 1 and --jobs 4 must serialize identically"
            );

            for (cell, base) in serial.iter().zip(baseline) {
                let id = cell.spec.id();
                let targeted = id.to_ascii_lowercase().contains(TARGET);
                if !targeted {
                    // Healthy cells: bit-for-bit equal to the fault-free
                    // baseline — a failed sibling cell changes nothing.
                    assert_eq!(cell.status, CellStatus::Ok, "{id}");
                    assert_eq!(cell.metrics, base.metrics, "{id}");
                    assert_eq!(cell.stats, base.stats, "{id}");
                    continue;
                }

                // The targeted cell faults at exactly its identity-derived
                // replicate; every sibling replicate matches the baseline.
                let fr = FaultPlan::fault_replicate(&id, seeds);
                assert_eq!(cell.replicates.len(), seeds as usize, "{id}");
                for (rep, brep) in cell.replicates.iter().zip(&base.replicates) {
                    if rep.replicate == fr {
                        assert_eq!(rep.status, faulted_status(kind), "{id} r{fr}");
                        match kind {
                            FaultKind::Panic => {
                                assert!(rep.metrics.is_none());
                                assert!(rep
                                    .error
                                    .as_deref()
                                    .unwrap()
                                    .contains("injected fault: panic"));
                            }
                            FaultKind::Hang => {
                                assert!(rep.metrics.is_none());
                                assert_eq!(
                                    rep.error.as_deref(),
                                    Some("replicate exceeded the 0.25s deadline; worker abandoned"),
                                    "the record is the configured deadline, not wall-clock"
                                );
                            }
                            FaultKind::Poison => {
                                let m = rep.metrics.as_ref().unwrap();
                                assert_eq!(m.accesses, 1, "poison is recognizably absurd");
                                assert!(m.total_cycles > 1_000_000_000);
                            }
                        }
                    } else {
                        assert_eq!(rep.status, CellStatus::Ok, "{id} r{}", rep.replicate);
                        assert_eq!(
                            rep.metrics, brep.metrics,
                            "{id} r{}: healthy sibling replicates match the baseline",
                            rep.replicate
                        );
                    }
                }

                // Aggregate view: panic/hang drop one replicate from the
                // stats, poison keeps all of them (and skews them).
                match kind {
                    FaultKind::Poison => {
                        assert_eq!(cell.status, CellStatus::Ok, "{id}");
                        assert_eq!(cell.stats.as_ref().unwrap().replicates, seeds, "{id}");
                    }
                    _ => {
                        assert_eq!(cell.status, faulted_status(kind), "{id}");
                        match seeds {
                            1 => assert!(cell.stats.is_none(), "{id}: sole replicate faulted"),
                            _ => assert_eq!(
                                cell.stats.as_ref().unwrap().replicates,
                                seeds - 1,
                                "{id}: survivors still aggregate"
                            ),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn poison_is_caught_by_diff_against_a_clean_report() {
    let plan = FaultPlan::parse(&spec_for(FaultKind::Poison)).unwrap();

    // Single-seed sweeps: no CI bands, so the default exact diff flags
    // the corrupted cell immediately.
    let clean = report(1, None, run(2, 1, None));
    let poisoned = report(1, Some(&plan), run(2, 1, Some(&plan)));
    let d =
        mehpt_lab::diff::diff_texts(&clean, &poisoned, &mehpt_lab::diff::DiffOptions::default())
            .unwrap();
    assert!(!d.clean(), "silent corruption must not diff clean");
    assert!(
        d.drifts.iter().any(|x| x.field == "total_cycles"),
        "{}",
        d.render()
    );
    assert_eq!(d.cells_skipped, 0, "poisoned cells still carry metrics");

    // Replicated sweeps: the poisoned replicate inflates the cell's own
    // ci95 until the confidence bands cover anything — the CI-overlap
    // acceptance would swallow the drift, which is exactly what `--no-ci`
    // exists for.
    let clean = report(3, None, run(2, 3, None));
    let poisoned = report(3, Some(&plan), run(2, 3, Some(&plan)));
    let no_ci = mehpt_lab::diff::DiffOptions {
        ci_overlap: false,
        ..mehpt_lab::diff::DiffOptions::default()
    };
    let d = mehpt_lab::diff::diff_texts(&clean, &poisoned, &no_ci).unwrap();
    assert!(!d.clean(), "--no-ci must catch replicated poison");
    assert!(d.drifts.iter().any(|x| x.field == "total_cycles"));
}

#[test]
fn transient_faults_recover_under_retry_with_recorded_history() {
    // The acceptance-criteria composition: a plain (transient) fault rule
    // fires on attempt 0 only, so `--retries 1` turns the injected panic
    // into an `ok` replicate whose attempt history records the failure —
    // and a hang into an `ok` replicate that abandoned one worker.
    for kind in [FaultKind::Panic, FaultKind::Hang] {
        let plan = FaultPlan::parse(&spec_for(kind)).unwrap();
        let seeds = 3;
        let serial = run_retrying(1, seeds, 1, Some(&plan));
        let parallel = run_retrying(4, seeds, 1, Some(&plan));
        assert_eq!(
            report_retrying(seeds, 1, Some(&plan), serial.clone()),
            report_retrying(seeds, 1, Some(&plan), parallel),
            "{kind:?}: retried sweeps serialize identically across --jobs"
        );

        let baseline = run(1, seeds, None);
        for (cell, base) in serial.iter().zip(&baseline) {
            let id = cell.spec.id();
            assert_eq!(cell.status, CellStatus::Ok, "{id}: the retry healed it");
            if !id.to_ascii_lowercase().contains(TARGET) {
                // Untouched cells aggregate exactly like the fault-free
                // baseline. The targeted cell cannot: its healed replicate
                // ran under the retry seed, so its metrics legitimately
                // differ from the attempt-0 metrics the baseline carries.
                assert_eq!(cell.stats, base.stats, "{id}: aggregates match fault-free");
                continue;
            }
            assert_eq!(
                cell.stats.as_ref().unwrap().replicates,
                seeds,
                "{id}: the healed replicate still contributes to the stats"
            );
            let fr = FaultPlan::fault_replicate(&id, seeds);
            for rep in &cell.replicates {
                if rep.replicate != fr {
                    assert_eq!(rep.attempt_history().len(), 1, "{id} r{}", rep.replicate);
                    continue;
                }
                assert_eq!(rep.status, CellStatus::Ok, "{id} r{fr}");
                assert_eq!(rep.attempts.len(), 2, "{id} r{fr}: fault, then recovery");
                assert_eq!(rep.attempts[0].status, faulted_status(kind));
                assert_eq!(rep.attempts[1].status, CellStatus::Ok);
                assert_eq!(
                    rep.seed,
                    cell.spec.retry_seed(fr, 1),
                    "{id} r{fr}: the surviving attempt ran the retry seed"
                );
                assert!(rep.metrics.is_some());
            }
        }

        // The hang flavor also pins the abandonment count: exactly one
        // attempt hit the watchdog across the whole sweep.
        if kind == FaultKind::Hang {
            let abandoned: u64 = serial
                .iter()
                .flat_map(|c| &c.replicates)
                .flat_map(|r| r.attempt_history())
                .filter(|a| a.status == CellStatus::TimedOut)
                .count() as u64;
            assert_eq!(abandoned, 1);
        }
    }
}

#[test]
fn persistent_faults_exhaust_the_retry_budget() {
    // A `kind*` rule fires on *every* attempt: the replicate burns the
    // whole budget, stays failed/timed_out, and the report carries the
    // full attempt history — identically at any --jobs.
    for (kind, spec) in [
        (FaultKind::Panic, format!("panic*:{TARGET}")),
        (FaultKind::Hang, format!("hang*:{TARGET}")),
    ] {
        let plan = FaultPlan::parse(&spec).unwrap();
        let retries = 2;
        let serial = run_retrying(1, 1, retries, Some(&plan));
        let parallel = run_retrying(4, 1, retries, Some(&plan));
        assert_eq!(
            report_retrying(1, retries, Some(&plan), serial.clone()),
            report_retrying(1, retries, Some(&plan), parallel),
            "{kind:?}: exhausted sweeps serialize identically across --jobs"
        );

        let target = serial
            .iter()
            .find(|c| c.spec.id().to_ascii_lowercase().contains(TARGET))
            .unwrap();
        assert_eq!(target.status, faulted_status(kind), "{}", target.spec.id());
        let rep = &target.replicates[0];
        assert_eq!(rep.attempts.len(), 3, "original + 2 retries, all faulted");
        assert!(rep
            .attempts
            .iter()
            .all(|a| a.status == faulted_status(kind)));
        let distinct: std::collections::HashSet<u64> =
            rep.attempts.iter().map(|a| a.seed).collect();
        assert_eq!(distinct.len(), 3, "every attempt ran its own seed");
        assert!(rep.metrics.is_none());
        // Healthy cells never grew extra attempts: one recorded attempt,
        // and it succeeded on the first try.
        for c in &serial {
            if c.spec.id() != target.spec.id() {
                assert!(c
                    .replicates
                    .iter()
                    .all(|r| r.attempts.len() == 1 && r.attempts[0].status == CellStatus::Ok));
            }
        }
    }
}

#[test]
fn faulted_reports_self_diff_clean_with_failures_skipped() {
    // The acceptance-criteria shape: hang + watchdog across the jobs axis,
    // then `diff` on the two reports — clean, with the timed-out cell
    // skipped (counted) rather than erroring.
    let plan = FaultPlan::parse(&spec_for(FaultKind::Hang)).unwrap();
    let a = report(3, Some(&plan), run(1, 3, Some(&plan)));
    let b = report(3, Some(&plan), run(4, 3, Some(&plan)));
    let d = mehpt_lab::diff::diff_texts(&a, &b, &mehpt_lab::diff::DiffOptions::default()).unwrap();
    assert!(d.clean(), "{}", d.render());
    assert_eq!(d.cells_skipped, 1, "the timed-out cell is skipped");
    assert_eq!(d.cells_compared, 2, "the healthy cells still compare");
}
