//! The `mehpt-lab` command-line driver: sweep runs and report diffing.
//!
//! Kept in the library (rather than the binary) so argument parsing and the
//! preset-union plumbing are unit-testable. The binary is a two-line shim
//! around [`parse_command`] / [`run_command`]. Two commands exist: the
//! (default) sweep runner — presets, `--jobs`, `--seeds`, `--frag`, plus
//! the crash-safety knobs `--resume` / `--journal` / `--retries` backed by
//! [`crate::journal`] — and `mehpt-lab diff`, which compares two
//! `report.json` files within tolerance/CI bands and exits non-zero on
//! drift.
//!
//! Exit codes are a contract (scripts and CI rely on them): **0** success,
//! **1** failed/timed-out cells or report drift, **2** usage errors,
//! **3** I/O or parse errors (an unreadable or corrupt report handed to
//! `diff`).

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use mehpt_sim::SimReport;
use mehpt_workloads::App;

use crate::diff::{diff_texts, DiffOptions};
use crate::engine::{self, Progress, RunOptions, WORKER_THREAD_PREFIX};
use crate::fault::FaultPlan;
use crate::grid::{CellSpec, FmfiAxis, Tuning};
use crate::journal::{self, JournalWriter};
use crate::presets::{Preset, PRESETS};
use crate::report::{LabReport, RepResult, StatusCounts};

/// Usage text.
pub const USAGE: &str = "\
mehpt-lab — parallel, deterministic experiment runner for the ME-HPT model

USAGE:
    mehpt-lab [run] <preset>... [OPTIONS]
    mehpt-lab all [OPTIONS]         run every preset (shared cells run once)
    mehpt-lab list                  list presets and their cell counts
    mehpt-lab diff <a.json> <b.json> [DIFF OPTIONS]
                                    compare two reports; exit 1 on drift

PRESETS:
    table1 table2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16

OPTIONS:
    --preset NAME      add a preset (same as the bare word)
    --jobs N           worker threads (default: available parallelism;
                       results are identical for every N)
    --seeds N          replicates per cell (default 1); reports gain
                       mean/min/max/95% CI aggregates over the replicates
    --quick            tiny footprints for smoke runs (scale 0.005, 2GB)
    --scale X          workload scale factor (default 1.0)
    --mem-gb N         simulated physical memory in GB (default 64)
    --frag F           pin fragmentation (FMFI) to F, 0.0-1.0 (default 0.7;
                       overrides fig7's built-in 0.0-0.9 sweep too)
    --seed S           base seed (decimal or 0x hex; default 0x5eed)
    --max-accesses N   cap simulated accesses per cell
    --out DIR          report directory (default target/lab)
    --timeout SECS     watchdog deadline per cell replicate, in whole
                       seconds; an expired replicate is marked timed_out,
                       its worker is abandoned and the sweep completes
                       (default: off, or the preset's own default)
    --retries N        re-run each failed/timed_out replicate up to N
                       extra times under identity-derived retry seeds
                       (default 0); attempt histories land in the report
    --resume           replay the result journal before running: intact,
                       fingerprint-matching replicates are restored and
                       only the missing ones run; the finished report is
                       byte-identical to an uninterrupted run
    --journal PATH     result-journal location (default <out>/sweep.journal);
                       every sweep writes one as it runs
    --fault SPEC       deterministic fault injection: comma-separated
                       kind:selector rules, kind in {panic,hang,poison},
                       selector an id substring or @N (1-in-N identity
                       hash); also read from MEHPT_FAULT when unset
    --inject-panic APP panic inside APP's cells (tests panic isolation)
    -h, --help         this text

DIFF OPTIONS:
    --abs-tol X        absolute tolerance per metric (default 0 = exact)
    --rel-tol X        relative tolerance per metric (default 0 = exact)
    --no-ci            ignore 95% CI overlap (flag drift even when the two
                       sweeps' own confidence bands already cover it)

Reports land in <out>/<preset>/report.{json,csv} (written atomically and
fsynced). JSON and CSV are pure functions of the cell grid, seeds,
timeout, retries and fault configuration: --jobs 1 and --jobs 8 emit
byte-identical files, which `mehpt-lab diff` verifies (timed-out cells
record the configured deadline, never wall-clock) — and so does a
--resume run completed after a crash. Each sweep also appends finished
replicates to a checksummed journal (see --journal); torn or corrupt
journal tails are detected and truncated, never trusted.

EXIT STATUS (a contract; scripts may rely on it):
    0   success (aborted cells are modeled outcomes and count as success)
    1   at least one cell failed or timed out / reports drifted
    2   usage errors (unknown flags, bad values)
    3   I/O or parse errors (unreadable or corrupt report given to diff)
";

/// Parsed command line for the sweep runner.
#[derive(Clone, Debug)]
pub struct LabArgs {
    /// Presets to run, in order.
    pub presets: Vec<Preset>,
    /// `list` mode.
    pub list: bool,
    /// Worker threads (0 = available parallelism).
    pub jobs: usize,
    /// Replicates per cell (`--seeds`; clamped to at least 1).
    pub seeds: u32,
    /// Retry budget per replicate (`--retries`).
    pub retries: u32,
    /// Replay the result journal before running (`--resume`).
    pub resume: bool,
    /// Journal location override (`--journal`; default
    /// `<out>/sweep.journal`).
    pub journal: Option<PathBuf>,
    /// Scale/memory/seed knobs.
    pub tuning: Tuning,
    /// Fragmentation override (`--frag`).
    pub frag: Option<f64>,
    /// Report directory.
    pub out: PathBuf,
    /// Fault-injection plan (`--fault` / `MEHPT_FAULT`).
    pub fault: Option<FaultPlan>,
    /// App whose cells should panic (panic-isolation demo/testing).
    pub inject_panic: Option<App>,
}

impl Default for LabArgs {
    fn default() -> LabArgs {
        LabArgs {
            presets: Vec::new(),
            list: false,
            jobs: 0,
            seeds: 1,
            retries: 0,
            resume: false,
            journal: None,
            tuning: Tuning::default(),
            frag: None,
            out: PathBuf::from("target/lab"),
            fault: None,
            inject_panic: None,
        }
    }
}

impl LabArgs {
    /// The watchdog deadline this invocation runs under: an explicit
    /// `--timeout` wins; otherwise the strictest per-preset default among
    /// the requested presets (the whole union runs under one deadline).
    pub fn effective_timeout_secs(&self) -> Option<u64> {
        self.tuning.timeout_secs.or_else(|| {
            self.presets
                .iter()
                .filter_map(|p| p.default_timeout_secs())
                .min()
        })
    }

    /// Where this invocation's result journal lives: `--journal` wins,
    /// else `<out>/sweep.journal`.
    pub fn journal_path(&self) -> PathBuf {
        self.journal
            .clone()
            .unwrap_or_else(|| self.out.join("sweep.journal"))
    }
}

/// Parsed command line for `mehpt-lab diff`.
#[derive(Clone, Debug)]
pub struct DiffArgs {
    /// First report (`a`).
    pub a: PathBuf,
    /// Second report (`b`).
    pub b: PathBuf,
    /// Acceptance bands.
    pub opts: DiffOptions,
}

/// A parsed `mehpt-lab` invocation.
#[derive(Clone, Debug)]
pub enum Command {
    /// Run sweeps (the default command, with or without the `run` word).
    Lab(LabArgs),
    /// Compare two reports.
    Diff(DiffArgs),
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| format!("not a number: {s}"))
}

/// Parses a full invocation: dispatches to [`parse_args`] (sweep runner,
/// with or without a leading `run` word) or the `diff` subcommand.
pub fn parse_command(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        Some("diff") => parse_diff_args(&args[1..]).map(Command::Diff),
        Some("run") => parse_args(&args[1..]).map(Command::Lab),
        _ => parse_args(args).map(Command::Lab),
    }
}

/// Parses the arguments of `mehpt-lab diff` (without the `diff` word).
pub fn parse_diff_args(args: &[String]) -> Result<DiffArgs, String> {
    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let tol = |name: &str, s: &str| -> Result<f64, String> {
            s.parse::<f64>()
                .ok()
                .filter(|t| *t >= 0.0)
                .ok_or_else(|| format!("bad {name}: {s}"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--abs-tol" => opts.abs_tol = tol("--abs-tol", value("--abs-tol")?)?,
            "--rel-tol" => opts.rel_tol = tol("--rel-tol", value("--rel-tol")?)?,
            "--no-ci" => opts.ci_overlap = false,
            flag if flag.starts_with('-') => return Err(format!("unknown argument: {flag}")),
            path => paths.push(PathBuf::from(path)),
        }
    }
    let [a, b] = paths.try_into().map_err(|p: Vec<PathBuf>| {
        format!("diff takes exactly two report paths (got {})", p.len())
    })?;
    Ok(DiffArgs { a, b, opts })
}

/// Parses the sweep-runner argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<LabArgs, String> {
    let mut out = LabArgs::default();
    let mut scale = None;
    let mut mem_gb = None;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "list" => out.list = true,
            "all" => out.presets = PRESETS.to_vec(),
            "--preset" => {
                let name = value("--preset")?;
                let p = Preset::parse(name).ok_or_else(|| format!("unknown preset: {name}"))?;
                if !out.presets.contains(&p) {
                    out.presets.push(p);
                }
            }
            "--seeds" => {
                out.seeds = (parse_u64(value("--seeds")?)? as u32).max(1);
            }
            "--retries" => out.retries = parse_u64(value("--retries")?)? as u32,
            "--resume" => out.resume = true,
            "--journal" => out.journal = Some(PathBuf::from(value("--journal")?)),
            "--jobs" => out.jobs = parse_u64(value("--jobs")?)? as usize,
            "--quick" => quick = true,
            "--scale" => {
                scale = Some(
                    value("--scale")?
                        .parse::<f64>()
                        .map_err(|_| "bad --scale".to_string())?,
                )
            }
            "--mem-gb" => mem_gb = Some(parse_u64(value("--mem-gb")?)?),
            "--frag" => {
                let f = value("--frag")?
                    .parse::<f64>()
                    .map_err(|_| "bad --frag".to_string())?;
                if !(0.0..=1.0).contains(&f) {
                    return Err("--frag must be in 0.0..=1.0".to_string());
                }
                out.frag = Some(f);
            }
            "--seed" => out.tuning.base_seed = parse_u64(value("--seed")?)?,
            "--max-accesses" => {
                out.tuning.max_accesses = Some(parse_u64(value("--max-accesses")?)?)
            }
            "--out" => out.out = PathBuf::from(value("--out")?),
            "--timeout" => {
                let secs = parse_u64(value("--timeout")?)?;
                if secs == 0 {
                    return Err("--timeout must be at least 1 second".to_string());
                }
                out.tuning.timeout_secs = Some(secs);
            }
            "--fault" => out.fault = Some(FaultPlan::parse(value("--fault")?)?),
            "--inject-panic" => {
                let name = value("--inject-panic")?;
                out.inject_panic = Some(
                    App::all()
                        .into_iter()
                        .find(|a| a.name().eq_ignore_ascii_case(name))
                        .ok_or_else(|| format!("unknown app: {name}"))?,
                );
            }
            name => match Preset::parse(name) {
                Some(p) => {
                    if !out.presets.contains(&p) {
                        out.presets.push(p);
                    }
                }
                None => return Err(format!("unknown argument: {name}")),
            },
        }
    }
    if quick {
        out.tuning.scale = Tuning::quick().scale;
        out.tuning.mem_bytes = Tuning::quick().mem_bytes;
    }
    if let Some(s) = scale {
        out.tuning.scale = s;
    }
    if let Some(gb) = mem_gb {
        out.tuning.mem_bytes = gb * mehpt_types::GIB;
    }
    if out.fault.is_none() {
        if let Ok(spec) = std::env::var("MEHPT_FAULT") {
            if !spec.trim().is_empty() {
                out.fault = Some(FaultPlan::parse(&spec)?);
            }
        }
    }
    if !out.list && out.presets.is_empty() {
        return Err("no preset given (try `mehpt-lab list`)".to_string());
    }
    Ok(out)
}

/// The distinct cells of a preset under the CLI's tuning/fragmentation.
fn preset_specs(preset: Preset, args: &LabArgs) -> Vec<CellSpec> {
    let mut grid = preset.grid();
    if let Some(f) = args.frag {
        grid.fmfi = FmfiAxis::Pinned(f);
    }
    grid.expand(&args.tuning)
}

/// Union of every requested preset's cells, deduplicated by identity and in
/// first-appearance order — shared cells (fig11–fig14 use the same grid)
/// simulate once and feed every report that needs them.
pub fn union_specs(args: &LabArgs) -> Vec<CellSpec> {
    let mut seen = std::collections::HashSet::new();
    let mut union = Vec::new();
    for &preset in &args.presets {
        for spec in preset_specs(preset, args) {
            if seen.insert(spec.id()) {
                union.push(spec);
            }
        }
    }
    union
}

/// Runs a parsed [`Command`]. Returns the process exit code.
pub fn run_command(cmd: &Command) -> i32 {
    match cmd {
        Command::Lab(args) => run(args),
        Command::Diff(args) => run_diff(args),
    }
}

/// Runs `mehpt-lab diff`: 0 when the reports agree within tolerance,
/// 1 on drift, 3 when a report cannot be read or parsed (distinct from
/// the 2 reserved for usage errors, so scripts can tell a truncated
/// report from a typo).
pub fn run_diff(args: &DiffArgs) -> i32 {
    let read = |path: &Path| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
    };
    let result = read(&args.a)
        .and_then(|a| Ok((a, read(&args.b)?)))
        .and_then(|(a, b)| diff_texts(&a, &b, &args.opts));
    match result {
        Ok(diff) => {
            print!("{}", diff.render());
            i32::from(!diff.clean())
        }
        Err(e) => {
            eprintln!("mehpt-lab diff: {e}");
            3
        }
    }
}

/// Runs the parsed sweep command. Returns the process exit code.
pub fn run(args: &LabArgs) -> i32 {
    if args.list {
        println!("{:<8} {:>6}  {}", "PRESET", "CELLS", "TITLE");
        for p in PRESETS {
            let cells = preset_specs(p, args).len();
            println!("{:<8} {:>6}  {}", p.name(), cells, p.title());
        }
        return 0;
    }

    mute_worker_panics();
    let union = union_specs(args);
    eprintln!(
        "mehpt-lab: {} cell(s) x {} seed(s) across {} preset(s), scale {}, seed {:#x}",
        union.len(),
        args.seeds.max(1),
        args.presets.len(),
        args.tuning.scale,
        args.tuning.base_seed
    );

    let timeout_secs = args.effective_timeout_secs();
    if let Some(secs) = timeout_secs {
        eprintln!("mehpt-lab: watchdog deadline {secs}s per replicate");
    }
    if let Some(plan) = &args.fault {
        eprintln!("mehpt-lab: fault injection active: {}", plan.spec());
    }
    if args.retries > 0 {
        eprintln!(
            "mehpt-lab: deterministic retry active: up to {} extra attempt(s) per replicate",
            args.retries
        );
    }
    let opts = RunOptions {
        jobs: args.jobs,
        seeds: args.seeds,
        retries: args.retries,
        timeout: timeout_secs.map(std::time::Duration::from_secs),
    };

    // The crash-safety layer: every invocation writes a result journal as
    // replicates finish; `--resume` replays a previous one first. Journal
    // trouble is reported but never fails the sweep — the journal is a
    // safety net, not a dependency.
    let timeout = timeout_secs.map(std::time::Duration::from_secs);
    let fault_spec = args.fault.as_ref().map(|p| p.spec());
    let fingerprints: HashMap<String, u64> = union
        .iter()
        .map(|s| {
            (
                s.id(),
                journal::fingerprint(s, timeout, args.retries, fault_spec, args.seeds.max(1)),
            )
        })
        .collect();
    let journal_path = args.journal_path();
    let mut preloaded: HashMap<(String, u32), RepResult> = HashMap::new();
    let mut valid_len = 0u64;
    if args.resume {
        match journal::read(&journal_path) {
            Ok(recovered) => {
                let total = recovered.records.len();
                if recovered.truncated {
                    eprintln!(
                        "mehpt-lab: journal {} has a torn or corrupt tail; keeping the {} intact record(s)",
                        journal_path.display(),
                        total
                    );
                }
                for rec in recovered.records {
                    // Believe a record only if it names a cell of *this*
                    // sweep, fits the seeds range, and fingerprints to the
                    // current configuration (last-wins on duplicates).
                    if rec.replicate < args.seeds.max(1)
                        && fingerprints.get(&rec.id) == Some(&rec.fingerprint)
                    {
                        preloaded.insert((rec.id, rec.replicate), rec.result);
                    }
                }
                valid_len = recovered.valid_len;
                eprintln!(
                    "mehpt-lab: restored {} replicate(s) from journal ({} discarded)",
                    preloaded.len(),
                    total - preloaded.len()
                );
            }
            Err(e) => eprintln!(
                "mehpt-lab: cannot read journal {}: {e}; running from scratch",
                journal_path.display()
            ),
        }
    }
    if let Some(dir) = journal_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut writer = match if args.resume {
        JournalWriter::resume(&journal_path, valid_len)
    } else {
        JournalWriter::create(&journal_path)
    } {
        Ok(w) => Some(w),
        Err(e) => {
            eprintln!(
                "mehpt-lab: cannot write journal {}: {e}; continuing without one",
                journal_path.display()
            );
            None
        }
    };

    let progress = |p: Progress| {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "[{:>3}/{}] {:>7}  {}  ({} ms)",
            p.done,
            p.total,
            p.status.label(),
            p.id,
            p.wall_millis
        );
    };
    let fault = args.fault.as_ref();
    let mut on_fresh = |spec: &CellSpec, rep: &RepResult| {
        if let Some(w) = writer.as_mut() {
            let id = spec.id();
            let fp = fingerprints.get(&id).copied().unwrap_or_default();
            if let Err(e) = w.append(&id, rep.replicate, fp, rep) {
                eprintln!("mehpt-lab: journal append failed: {e}; disabling the journal");
                writer = None;
            }
        }
    };
    let results = match args.inject_panic {
        None => engine::run_cells_persisted(
            &union,
            &opts,
            fault,
            engine::simulate_cell,
            &progress,
            &preloaded,
            &mut on_fresh,
        ),
        Some(app) => engine::run_cells_persisted(
            &union,
            &opts,
            fault,
            move |spec: &CellSpec| -> SimReport {
                if spec.app == app {
                    panic!("injected panic in cell {}", spec.id());
                }
                engine::simulate_cell(spec)
            },
            &progress,
            &preloaded,
            &mut on_fresh,
        ),
    };
    if let Some(w) = writer.as_mut() {
        if let Err(e) = w.sync() {
            eprintln!("mehpt-lab: journal sync failed: {e}");
        }
    }

    // Index the union's results by identity, then slice a report out for
    // each preset in its own grid order.
    let by_id: std::collections::HashMap<String, &crate::report::CellResult> =
        results.iter().map(|r| (r.spec.id(), r)).collect();
    let mut any_failed = false;
    for &preset in &args.presets {
        let cells = preset_specs(preset, args)
            .iter()
            .filter_map(|s| by_id.get(&s.id()).map(|&r| r.clone()))
            .collect::<Vec<_>>();
        let report = LabReport {
            preset: preset.name().to_string(),
            scale: args.tuning.scale,
            base_seed: args.tuning.base_seed,
            seeds: args.seeds.max(1),
            retries: args.retries,
            timeout_secs: timeout_secs.map(|s| s as f64),
            fault: args.fault.as_ref().map(|p| p.spec().to_string()),
            cells,
        };
        any_failed |= report.counts().bad() > 0;
        print!("{}", preset.render(&report));
        if let Err(e) = write_reports(preset, &report, args) {
            eprintln!("mehpt-lab: cannot write reports: {e}");
            return 1;
        }
    }

    let c = summarize(&results);
    eprintln!(
        "mehpt-lab: {} ok, {} aborted, {} failed, {} timed out; reports under {}",
        c.ok,
        c.aborted,
        c.failed,
        c.timed_out,
        args.out.display()
    );
    i32::from(any_failed)
}

fn summarize(results: &[crate::report::CellResult]) -> StatusCounts {
    let mut c = StatusCounts::default();
    for r in results {
        match r.status {
            crate::report::CellStatus::Ok => c.ok += 1,
            crate::report::CellStatus::Aborted => c.aborted += 1,
            crate::report::CellStatus::Failed => c.failed += 1,
            crate::report::CellStatus::TimedOut => c.timed_out += 1,
        }
    }
    c
}

fn write_reports(preset: Preset, report: &LabReport, args: &LabArgs) -> std::io::Result<()> {
    let dir = args.out.join(preset.name());
    std::fs::create_dir_all(&dir)?;
    write_atomic(&dir.join("report.json"), &report.to_json())?;
    write_atomic(&dir.join("report.csv"), &report.to_csv())?;
    Ok(())
}

/// Writes via a same-directory temp file + fsync + rename, so a crash
/// mid-write (or a concurrent reader) never observes a truncated report
/// — and a crash right *after* the rename cannot leave an empty file
/// behind the new name (the data is durable before it becomes visible).
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let write_synced = |tmp: &Path| -> std::io::Result<()> {
        let mut f = std::fs::File::create(tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()
    };
    write_synced(&tmp)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            e
        })
}

/// Silences the default "thread panicked" message for engine workers: a
/// caught cell panic is reported through the progress stream and the report,
/// not as scary stderr noise. Panics on other threads keep the default hook.
pub fn mute_worker_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let muted = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with(WORKER_THREAD_PREFIX));
        if !muted {
            default(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<LabArgs, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_presets_and_flags() {
        let a = parse(&[
            "table1", "fig9", "--jobs", "4", "--quick", "--seed", "0xabc",
        ])
        .unwrap();
        assert_eq!(a.presets, vec![Preset::Table1, Preset::Fig9]);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.tuning.base_seed, 0xabc);
        assert_eq!(a.tuning.scale, Tuning::quick().scale);
    }

    #[test]
    fn explicit_scale_beats_quick() {
        let a = parse(&["fig16", "--quick", "--scale", "0.5"]).unwrap();
        assert_eq!(a.tuning.scale, 0.5);
        assert_eq!(a.tuning.mem_bytes, Tuning::quick().mem_bytes);
    }

    #[test]
    fn all_selects_every_preset() {
        let a = parse(&["all"]).unwrap();
        assert_eq!(a.presets.len(), PRESETS.len());
    }

    #[test]
    fn rejects_unknowns_and_empty() {
        assert!(parse(&["fig99"]).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&["table1", "--frag", "1.5"]).is_err());
        assert!(parse(&["--inject-panic", "nosuch", "table1"]).is_err());
    }

    #[test]
    fn resume_retries_and_journal_flags_parse() {
        let a = parse(&[
            "fig7",
            "--resume",
            "--retries",
            "2",
            "--journal",
            "/tmp/j.bin",
            "--out",
            "/tmp/lab",
        ])
        .unwrap();
        assert!(a.resume);
        assert_eq!(a.retries, 2);
        assert_eq!(a.journal_path(), PathBuf::from("/tmp/j.bin"));
        let b = parse(&["fig7", "--out", "/tmp/lab"]).unwrap();
        assert!(!b.resume);
        assert_eq!(b.retries, 0);
        assert_eq!(b.journal_path(), PathBuf::from("/tmp/lab/sweep.journal"));
        assert!(parse(&["fig7", "--retries"]).is_err());
        assert!(parse(&["fig7", "--journal"]).is_err());
    }

    #[test]
    fn inject_panic_parses_an_app() {
        let a = parse(&["table1", "--inject-panic", "gups"]).unwrap();
        assert_eq!(a.inject_panic, Some(App::Gups));
    }

    #[test]
    fn timeout_and_fault_flags_parse() {
        let a = parse(&["fig7", "--timeout", "2", "--fault", "hang:gups-ecpt"]).unwrap();
        assert_eq!(a.tuning.timeout_secs, Some(2));
        assert_eq!(a.effective_timeout_secs(), Some(2));
        assert_eq!(a.fault.as_ref().unwrap().spec(), "hang:gups-ecpt");
        assert!(parse(&["fig7", "--timeout", "0"]).is_err());
        assert!(parse(&["fig7", "--fault", "explode:@2"]).is_err());
        // Without --timeout, fig7's own per-preset default applies; an
        // explicit flag overrides it.
        let d = parse(&["fig7"]).unwrap();
        assert_eq!(d.tuning.timeout_secs, None);
        assert_eq!(
            d.effective_timeout_secs(),
            Preset::Fig7.default_timeout_secs()
        );
        assert!(d.effective_timeout_secs().is_some());
        // A preset without a default runs unwatched.
        assert_eq!(parse(&["table1"]).unwrap().effective_timeout_secs(), None);
    }

    #[test]
    fn union_dedups_shared_cells() {
        let mut a = parse(&["fig11", "fig12", "fig13", "fig14"]).unwrap();
        a.tuning = Tuning::quick();
        let union = union_specs(&a);
        // fig11–fig14 share one grid: 11 apps × 2 thp, simulated once.
        assert_eq!(union.len(), 22);
    }

    #[test]
    fn union_keeps_distinct_cells() {
        let mut a = parse(&["table1", "fig8"]).unwrap();
        a.tuning = Tuning::quick();
        // table1: radix+ecpt (44); fig8 adds mehpt cells (22) and shares ecpt.
        assert_eq!(union_specs(&a).len(), 66);
    }

    fn command(args: &[&str]) -> Result<Command, String> {
        parse_command(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn run_word_and_preset_flag_and_seeds() {
        let Ok(Command::Lab(a)) = command(&["run", "--preset", "fig7", "--seeds", "5"]) else {
            panic!("expected a lab command");
        };
        assert_eq!(a.presets, vec![Preset::Fig7]);
        assert_eq!(a.seeds, 5);
        // Bare presets still work without the `run` word; --seeds 0 clamps.
        let Ok(Command::Lab(b)) = command(&["fig7", "--seeds", "0"]) else {
            panic!("expected a lab command");
        };
        assert_eq!(b.presets, vec![Preset::Fig7]);
        assert_eq!(b.seeds, 1);
        assert!(command(&["--preset", "fig99"]).is_err());
    }

    #[test]
    fn diff_subcommand_parses_paths_and_tolerances() {
        let Ok(Command::Diff(d)) = command(&[
            "diff",
            "a.json",
            "b.json",
            "--abs-tol",
            "0.5",
            "--rel-tol",
            "0.01",
            "--no-ci",
        ]) else {
            panic!("expected a diff command");
        };
        assert_eq!(d.a, PathBuf::from("a.json"));
        assert_eq!(d.b, PathBuf::from("b.json"));
        assert_eq!(d.opts.abs_tol, 0.5);
        assert_eq!(d.opts.rel_tol, 0.01);
        assert!(!d.opts.ci_overlap);
        assert!(command(&["diff", "a.json"]).is_err());
        assert!(command(&["diff", "a.json", "b.json", "c.json"]).is_err());
        assert!(command(&["diff", "a.json", "b.json", "--abs-tol", "-1"]).is_err());
        assert!(command(&["diff", "a.json", "b.json", "--wat"]).is_err());
    }

    #[test]
    fn diffing_a_written_report_against_itself_is_clean() {
        let dir = std::env::temp_dir().join(format!("mehpt-diff-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let grid = crate::grid::ExperimentGrid::paper(
            vec![App::Mummer],
            vec![mehpt_sim::PtKind::MeHpt],
            vec![false],
        );
        let t = Tuning {
            scale: 0.002,
            ..Tuning::quick()
        };
        let cells = engine::run_cells(&grid.expand(&t), &RunOptions::with_jobs(1), &|_| {});
        let report = LabReport {
            preset: "t".into(),
            scale: t.scale,
            base_seed: t.base_seed,
            seeds: 1,
            retries: 0,
            timeout_secs: None,
            fault: None,
            cells,
        };
        std::fs::write(&path, report.to_json()).unwrap();
        let d = DiffArgs {
            a: path.clone(),
            b: path.clone(),
            opts: DiffOptions::default(),
        };
        assert_eq!(run_diff(&d), 0);
        assert_eq!(
            run_diff(&DiffArgs {
                a: dir.join("nope.json"),
                ..d
            }),
            3,
            "an unreadable report is an I/O error, not a usage error"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_round_trips_a_report_with_failed_cells() {
        // The satellite fix: a failed/timed-out cell has no stats or
        // metrics blocks, and diff must skip (and count) it on either
        // side instead of erroring out.
        let dir =
            std::env::temp_dir().join(format!("mehpt-diff-fault-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let grid = crate::grid::ExperimentGrid::paper(
            vec![App::Mummer, App::Gups],
            vec![mehpt_sim::PtKind::MeHpt],
            vec![false],
        );
        let t = Tuning {
            scale: 0.002,
            ..Tuning::quick()
        };
        let plan = FaultPlan::parse("panic:gups").unwrap();
        let cells = engine::run_cells_injected(
            &grid.expand(&t),
            &RunOptions::with_jobs(2),
            Some(&plan),
            engine::simulate_cell,
            &|_| {},
        );
        let report = LabReport {
            preset: "t".into(),
            scale: t.scale,
            base_seed: t.base_seed,
            seeds: 1,
            retries: 0,
            timeout_secs: None,
            fault: Some(plan.spec().to_string()),
            cells,
        };
        assert_eq!(report.counts().failed, 1);
        let json = report.to_json();
        std::fs::write(&path, &json).unwrap();
        let d = DiffArgs {
            a: path.clone(),
            b: path,
            opts: DiffOptions::default(),
        };
        assert_eq!(run_diff(&d), 0, "self-diff with a failed cell is clean");
        let diff = diff_texts(&json, &json, &DiffOptions::default()).unwrap();
        assert!(diff.clean());
        assert_eq!(
            diff.cells_skipped, 1,
            "the failed cell is counted, not compared"
        );
        assert_eq!(diff.cells_compared, 1, "the healthy cell still compares");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_writes_leave_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("mehpt-atomic-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_atomic(&path, "{}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
