//! Deterministic fault injection for the lab engine.
//!
//! A [`FaultPlan`] makes *targeted* cells misbehave in a fully
//! reproducible way, which turns the engine's isolation guarantees (panic
//! containment, watchdog recovery, order-invariant aggregation over
//! partial failures) into testable assertions instead of prose. A plan is
//! parsed from a spec string (`--fault <spec>` or the `MEHPT_FAULT`
//! environment variable) and consulted by the engine before every work
//! unit:
//!
//! * which **cells** a rule hits is decided by the rule's selector
//!   (substring of the cell identity, or a 1-in-N identity-hash modulus);
//! * which **replicate** of a selected cell misbehaves is derived from the
//!   cell identity and the replicate count ([`FaultPlan::fault_replicate`])
//!   — *not* from scheduling — so the exact same unit faults under
//!   `--jobs 1` and `--jobs 8`, and the healthy sibling replicates prove
//!   that aggregation tolerates partial failure.
//!
//! # Spec grammar
//!
//! ```text
//! spec    := rule (',' rule)*
//! rule    := kind '*'? ':' selector
//! kind    := 'panic' | 'hang' | 'poison'
//! selector:= '@' N          every cell whose identity hash ≡ 0 (mod N)
//!          | <substring>    every cell whose id contains the substring,
//!                           compared case-insensitively (ids mix case:
//!                           `GUPS-ecpt-…`); the empty string selects
//!                           every cell
//! ```
//!
//! Examples: `panic:@2` (an identity-chosen half of all cells panic),
//! `hang:gups-ecpt-nothp-full-n1000000-f00` (that one cell hangs),
//! `poison:bfs,panic:mummer` (two rules; the first matching rule wins).
//!
//! A `*` after the kind makes the rule **persistent**: it fires on every
//! retry attempt, not just attempt 0 — `panic*:gups` is a replicate that
//! exhausts its whole `--retries` budget and stays `failed`, while plain
//! `panic:gups` is a transient fault a single retry recovers from.
//!
//! # Fault kinds
//!
//! * **panic** — the work unit panics with a deterministic message; the
//!   engine's `catch_unwind` marks the replicate
//!   [`CellStatus::Failed`](crate::report::CellStatus::Failed).
//! * **hang** — the work unit sleeps forever. Without a watchdog
//!   (`--timeout`) the sweep stalls, exactly like a pathological resize
//!   loop would; with one, the replicate is marked
//!   [`CellStatus::TimedOut`](crate::report::CellStatus::TimedOut) and the
//!   worker slot is respawned.
//! * **poison** — the work unit *completes* with deterministic, absurd
//!   metrics ([`poisoned_report`]) and status `ok`: a silent corruption
//!   that only `mehpt-lab diff` against a clean report can catch.

use mehpt_sim::SimReport;

use crate::grid::{cell_seed, CellSpec};

/// How a targeted work unit misbehaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a deterministic message (tests panic containment).
    Panic,
    /// Never return (tests the watchdog; stalls the sweep without one).
    Hang,
    /// Return deterministic garbage metrics with status `ok` (tests that
    /// `mehpt-lab diff` catches silent corruption).
    Poison,
}

impl FaultKind {
    /// The spec keyword.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Hang => "hang",
            FaultKind::Poison => "poison",
        }
    }

    fn parse(word: &str) -> Option<FaultKind> {
        match word {
            "panic" => Some(FaultKind::Panic),
            "hang" => Some(FaultKind::Hang),
            "poison" => Some(FaultKind::Poison),
            _ => None,
        }
    }
}

/// Which cells a rule targets.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Selector {
    /// `@N`: cells whose identity hash is ≡ 0 (mod N).
    Modulo(u64),
    /// Cells whose identity contains the substring, case-insensitively
    /// (stored lowercased; empty = every cell).
    Substring(String),
}

impl Selector {
    fn selects(&self, id: &str) -> bool {
        match self {
            Selector::Modulo(n) => cell_seed(SELECT_SEED, id) % n == 0,
            Selector::Substring(s) => id.to_ascii_lowercase().contains(s.as_str()),
        }
    }
}

/// One `kind:selector` rule of a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// The misbehavior to inject.
    pub kind: FaultKind,
    /// `kind*`: fire on every retry attempt, not just attempt 0.
    pub persistent: bool,
    selector: Selector,
}

/// Base seeds feeding [`cell_seed`] for the two identity-derived choices a
/// plan makes. Distinct constants so "is this cell selected" and "which
/// replicate faults" are independent hashes of the same identity.
const SELECT_SEED: u64 = 0xfa01;
const REPLICATE_SEED: u64 = 0xfa02;

/// A parsed, deterministic fault-injection plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    spec: String,
}

impl FaultPlan {
    /// Parses a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err("empty fault spec".to_string());
        }
        let mut rules = Vec::new();
        for rule in spec.split(',') {
            let (kind, selector) = rule
                .split_once(':')
                .ok_or_else(|| format!("fault rule without ':': {rule:?} (want kind:selector)"))?;
            let (kind, persistent) = match kind.strip_suffix('*') {
                Some(base) => (base, true),
                None => (kind, false),
            };
            let kind = FaultKind::parse(kind).ok_or_else(|| {
                format!("unknown fault kind {kind:?} (want panic, hang or poison)")
            })?;
            let selector = match selector.strip_prefix('@') {
                Some(n) => {
                    let n: u64 = n
                        .parse()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| format!("bad fault modulus: @{n} (want @N, N >= 1)"))?;
                    Selector::Modulo(n)
                }
                None => Selector::Substring(selector.to_ascii_lowercase()),
            };
            rules.push(FaultRule {
                kind,
                persistent,
                selector,
            });
        }
        Ok(FaultPlan {
            rules,
            spec: spec.to_string(),
        })
    }

    /// The spec this plan was parsed from (recorded verbatim in reports).
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The replicate of cell `id` at which a fault (if any rule selects
    /// the cell) fires: identity-derived, independent of scheduling.
    pub fn fault_replicate(id: &str, seeds: u32) -> u32 {
        (cell_seed(REPLICATE_SEED, id) % u64::from(seeds.max(1))) as u32
    }

    /// The fault to inject into retry attempt `attempt` of replicate
    /// `replicate` of cell `id` when a sweep runs `seeds` replicates per
    /// cell, or `None` for a healthy unit. The first matching rule wins.
    /// Non-persistent rules fire on attempt 0 only (a transient fault one
    /// retry recovers from); `kind*` rules fire on every attempt.
    pub fn fault_for(
        &self,
        id: &str,
        replicate: u32,
        seeds: u32,
        attempt: u32,
    ) -> Option<FaultKind> {
        if replicate != FaultPlan::fault_replicate(id, seeds) {
            return None;
        }
        self.rules
            .iter()
            .find(|r| r.selector.selects(id) && (r.persistent || attempt == 0))
            .map(|r| r.kind)
    }
}

/// Sleeps forever (in one-hour slices — cheap for the leaked thread the
/// watchdog abandons). Never returns.
pub fn hang() -> ! {
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// The deterministic garbage a poisoned unit reports: recognizably absurd
/// (one access, an astronomic cycle count, a 100% TLB miss rate), finite
/// everywhere (aggregation must never see NaN), and a pure function of the
/// cell spec — poisoned sweeps are still byte-identical across `--jobs`.
pub fn poisoned_report(spec: &CellSpec) -> SimReport {
    SimReport {
        app: spec.app.name().to_string(),
        kind: spec.kind,
        thp: spec.thp,
        accesses: 1,
        total_cycles: u64::MAX >> 20,
        base_cycles: 0,
        translation_cycles: u64::MAX >> 21,
        fault_cycles: 0,
        alloc_cycles: 0,
        os_pt_cycles: 0,
        faults: u64::MAX >> 32,
        pages_4k: 0,
        pages_2m: 0,
        tlb_miss_rate: 1.0,
        walks: u64::MAX >> 32,
        mean_walk_accesses: 1e9,
        mean_walk_cycles: 1e9,
        pt_final_bytes: u64::MAX >> 24,
        pt_peak_bytes: u64::MAX >> 24,
        pt_max_contiguous: u64::MAX >> 24,
        way_sizes_4k: vec![],
        way_phys_4k: vec![],
        upsizes_per_way_4k: vec![],
        upsizes_per_way_2m: vec![],
        moved_fraction_4k: 1.0,
        kicks_histogram: vec![],
        l2p_entries_used: 0,
        chunk_switches: 0,
        data_bytes_nominal: 0,
        aborted: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{ExperimentGrid, Tuning};
    use mehpt_sim::PtKind;
    use mehpt_workloads::App;

    fn ids() -> Vec<String> {
        ExperimentGrid::paper(
            App::all().to_vec(),
            vec![PtKind::Ecpt, PtKind::MeHpt],
            vec![false, true],
        )
        .expand(&Tuning::quick())
        .iter()
        .map(|c| c.id())
        .collect()
    }

    #[test]
    fn parses_every_kind_and_selector_shape() {
        let p = FaultPlan::parse("panic:@2").unwrap();
        assert_eq!(p.spec(), "panic:@2");
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].kind, FaultKind::Panic);
        let p = FaultPlan::parse("hang:gups-ecpt,poison:bfs").unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[1].kind, FaultKind::Poison);
        // Empty substring = every cell.
        let all = FaultPlan::parse("panic:").unwrap();
        assert!(all.rules[0].selector.selects("anything-at-all"));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "panic",
            "explode:@2",
            "panic:@0",
            "panic:@x",
            "panic:@2,,",
            "*:@2",
            "panic**:@2",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn persistent_rules_fire_on_every_attempt_transient_on_the_first() {
        let transient = FaultPlan::parse("panic:gups").unwrap();
        let persistent = FaultPlan::parse("panic*:gups").unwrap();
        assert_eq!(persistent.spec(), "panic*:gups");
        assert!(persistent.rules[0].persistent);
        assert!(!transient.rules[0].persistent);
        let id = "gups-mehpt-nothp-full-n1000000-f70";
        let fr = FaultPlan::fault_replicate(id, 3);
        for attempt in 0..4 {
            let want = (attempt == 0).then_some(FaultKind::Panic);
            assert_eq!(transient.fault_for(id, fr, 3, attempt), want);
            assert_eq!(
                persistent.fault_for(id, fr, 3, attempt),
                Some(FaultKind::Panic)
            );
        }
        // Retry attempts never widen the targeting: other replicates stay
        // healthy on every attempt.
        let other = (fr + 1) % 3;
        assert_eq!(persistent.fault_for(id, other, 3, 1), None);
    }

    #[test]
    fn substring_selector_targets_matching_cells_only() {
        let p = FaultPlan::parse("hang:GUPS-ecpt").unwrap();
        let mut hit = 0;
        for id in ids() {
            let fault = p.fault_for(&id, FaultPlan::fault_replicate(&id, 1), 1, 0);
            if id.to_ascii_lowercase().contains("gups-ecpt") {
                assert_eq!(fault, Some(FaultKind::Hang), "{id}");
                hit += 1;
            } else {
                assert_eq!(fault, None, "{id}");
            }
        }
        assert_eq!(hit, 2, "gups×ecpt exists once per THP setting");
    }

    #[test]
    fn modulo_selector_hits_a_deterministic_subset() {
        let p = FaultPlan::parse("panic:@2").unwrap();
        let hits: Vec<bool> = ids()
            .iter()
            .map(|id| {
                p.fault_for(id, FaultPlan::fault_replicate(id, 4), 4, 0)
                    .is_some()
            })
            .collect();
        assert!(hits.iter().any(|h| *h), "some cells must be selected");
        assert!(hits.iter().any(|h| !*h), "some cells must be spared");
        // Deterministic: the same subset every time.
        let again: Vec<bool> = ids()
            .iter()
            .map(|id| {
                p.fault_for(id, FaultPlan::fault_replicate(id, 4), 4, 0)
                    .is_some()
            })
            .collect();
        assert_eq!(hits, again);
    }

    #[test]
    fn fault_fires_at_exactly_one_identity_derived_replicate() {
        let p = FaultPlan::parse("panic:").unwrap();
        for id in ids().iter().take(4) {
            let seeds = 5;
            let firing: Vec<u32> = (0..seeds)
                .filter(|&r| p.fault_for(id, r, seeds, 0).is_some())
                .collect();
            assert_eq!(firing, vec![FaultPlan::fault_replicate(id, seeds)]);
        }
        // Single-seed sweeps fault at replicate 0 by construction.
        assert_eq!(FaultPlan::fault_replicate("any", 1), 0);
    }

    #[test]
    fn first_matching_rule_wins() {
        let p = FaultPlan::parse("poison:gups,panic:").unwrap();
        let gups = "gups-ecpt-nothp-full-n1000000-f70";
        let bfs = "bfs-ecpt-nothp-full-n1000000-f70";
        assert_eq!(
            p.fault_for(gups, FaultPlan::fault_replicate(gups, 1), 1, 0),
            Some(FaultKind::Poison)
        );
        assert_eq!(
            p.fault_for(bfs, FaultPlan::fault_replicate(bfs, 1), 1, 0),
            Some(FaultKind::Panic)
        );
    }

    #[test]
    fn poisoned_reports_are_deterministic_finite_and_absurd() {
        let spec = &ExperimentGrid::paper(vec![App::Gups], vec![PtKind::MeHpt], vec![false])
            .expand(&Tuning::quick())[0];
        let a = poisoned_report(spec);
        let b = poisoned_report(spec);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.accesses, 1);
        assert!(a.tlb_miss_rate.is_finite() && a.mean_walk_cycles.is_finite());
        assert!(a.total_cycles > 1_000_000_000, "absurd on purpose");
        assert!(a.aborted.is_none(), "poison is a silent fault");
    }
}
