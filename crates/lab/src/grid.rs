//! Declarative experiment grids and their expansion into runnable cells.
//!
//! A grid is the cross product of every axis the paper's evaluation
//! sweeps: application × page-table kind × THP × design variant ×
//! fragmentation ([`FmfiAxis`]) × graph size. Expansion produces
//! self-contained [`CellSpec`]s whose randomness derives from the cell
//! *identity* (not its grid position), so adding, removing or reordering
//! cells never perturbs any other cell — and replicate seeds
//! ([`CellSpec::replicate_seed`]) extend the same guarantee to multi-seed
//! sweeps.

use mehpt_core::{ChunkSizePolicy, MeHptConfig};
use mehpt_sim::{PtKind, SimConfig};
use mehpt_types::rng::splitmix64;
use mehpt_types::GIB;
use mehpt_workloads::{App, Workload, WorkloadCfg};

/// An ME-HPT design variant for the ablation experiments (Figure 10,
/// Figure 15, Section VII-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The full design (both techniques on).
    Full,
    /// In-place resizing disabled (per-way only).
    NoInPlace,
    /// Per-way resizing disabled (in-place only).
    NoPerWay,
    /// Both disabled: chunked storage only.
    Neither,
    /// Single-size 1MB chunk ladder (Figure 15's `ME-HPT 1MB`).
    Fixed1Mb,
}

impl Variant {
    /// Short report/display tag.
    pub fn tag(self) -> &'static str {
        match self {
            Variant::Full => "full",
            Variant::NoInPlace => "noinplace",
            Variant::NoPerWay => "noperway",
            Variant::Neither => "neither",
            Variant::Fixed1Mb => "fixed1mb",
        }
    }

    /// Parses a tag produced by [`Variant::tag`].
    pub fn parse(tag: &str) -> Option<Variant> {
        match tag {
            "full" => Some(Variant::Full),
            "noinplace" => Some(Variant::NoInPlace),
            "noperway" => Some(Variant::NoPerWay),
            "neither" => Some(Variant::Neither),
            "fixed1mb" => Some(Variant::Fixed1Mb),
            _ => None,
        }
    }

    /// The ME-HPT configuration for this variant.
    pub fn config(self) -> MeHptConfig {
        let base = MeHptConfig::default();
        match self {
            Variant::Full => base,
            Variant::NoInPlace => MeHptConfig {
                in_place: false,
                ..base
            },
            Variant::NoPerWay => MeHptConfig {
                per_way: false,
                ..base
            },
            Variant::Neither => MeHptConfig {
                in_place: false,
                per_way: false,
                ..base
            },
            Variant::Fixed1Mb => MeHptConfig {
                chunk_policy: ChunkSizePolicy::fixed(1 << 20),
                ..base
            },
        }
    }
}

/// The fragmentation (FMFI) axis of a grid: either pinned at one level
/// (the paper's default 0.7) or swept across several (Fig. 7-style
/// fragmentation curves).
#[derive(Clone, Debug, PartialEq)]
pub enum FmfiAxis {
    /// One fragmentation level for every cell.
    Pinned(f64),
    /// An explicit list of FMFI points, one sub-grid per point.
    Points(Vec<f64>),
}

impl FmfiAxis {
    /// The paper's evaluation default: everything pinned at 0.7 FMFI.
    pub fn paper() -> FmfiAxis {
        FmfiAxis::Pinned(0.7)
    }

    /// The paper's fragmentation sweep: FMFI 0.0 → 0.9 in 0.1 steps
    /// (shared with the fragmenter, so the grid and the memory model
    /// agree on the exact points).
    pub fn sweep() -> FmfiAxis {
        FmfiAxis::Points(mehpt_mem::Fragmenter::SWEEP_FMFI.to_vec())
    }

    /// The axis as a list of FMFI points, in sweep order.
    pub fn points(&self) -> Vec<f64> {
        match self {
            FmfiAxis::Pinned(f) => vec![*f],
            FmfiAxis::Points(v) => v.clone(),
        }
    }
}

/// Machine- and scale-level knobs applied uniformly to every cell of a
/// grid (the CLI's `--scale`, `--mem-gb`, `--quick`, `--max-accesses`).
#[derive(Clone, Copy, Debug)]
pub struct Tuning {
    /// Workload footprint/access scale (1.0 = the calibrated paper size).
    pub scale: f64,
    /// Simulated physical memory in bytes.
    pub mem_bytes: u64,
    /// Per-cell access cap; `None` runs each trace to completion.
    pub max_accesses: Option<u64>,
    /// Base seed every per-cell seed is derived from.
    pub base_seed: u64,
    /// Watchdog deadline per work unit, in whole seconds (`--timeout`);
    /// `None` disables the watchdog. Presets may override this default.
    pub timeout_secs: Option<u64>,
}

impl Default for Tuning {
    fn default() -> Tuning {
        Tuning {
            scale: 1.0,
            mem_bytes: 64 * GIB,
            max_accesses: None,
            base_seed: 0x5eed,
            timeout_secs: None,
        }
    }
}

impl Tuning {
    /// A configuration for fast smoke runs (`--quick`): tiny footprints on
    /// a 2GB machine. Figures keep their shape; absolute numbers shrink.
    pub fn quick() -> Tuning {
        Tuning {
            scale: 0.005,
            mem_bytes: 2 * GIB,
            ..Tuning::default()
        }
    }
}

/// One fully specified experiment cell: everything needed to run one
/// simulation, independently of every other cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// Application under test.
    pub app: App,
    /// Page-table organization.
    pub kind: PtKind,
    /// THP on/off.
    pub thp: bool,
    /// ME-HPT variant (always [`Variant::Full`] for radix/ECPT).
    pub variant: Variant,
    /// Target fragmentation (FMFI at the 2MB order).
    pub fragmentation: f64,
    /// Graph node count (graph apps only; ignored by the others).
    pub graph_nodes: u64,
    /// Workload scale factor.
    pub scale: f64,
    /// Simulated physical memory in bytes.
    pub mem_bytes: u64,
    /// The cell's private seed, derived from the base seed and the cell
    /// identity — *not* from the cell's position in the grid, so adding or
    /// removing cells never changes any other cell's randomness.
    pub seed: u64,
    /// Per-cell access cap.
    pub max_accesses: Option<u64>,
}

impl CellSpec {
    /// Stable identity string: names the cell in reports, filenames and
    /// progress lines, and feeds the per-cell seed derivation.
    pub fn id(&self) -> String {
        format!(
            "{}-{}-{}-{}-n{}-f{:02}",
            self.app.name(),
            match self.kind {
                PtKind::Radix => "radix",
                PtKind::Ecpt => "ecpt",
                PtKind::MeHpt => "mehpt",
            },
            if self.thp { "thp" } else { "nothp" },
            self.variant.tag(),
            self.graph_nodes,
            (self.fragmentation * 100.0).round() as u64,
        )
    }

    /// The simulator configuration this cell runs under.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper(self.kind, self.thp);
        cfg.mehpt = self.variant.config();
        cfg.fragmentation = self.fragmentation;
        cfg.mem_bytes = self.mem_bytes;
        cfg.seed = self.seed;
        cfg.max_accesses = self.max_accesses;
        cfg
    }

    /// Builds the cell's workload (seeded from the cell seed, so the trace
    /// stream is also a pure function of the cell identity).
    pub fn workload(&self) -> Workload {
        let mut s = self.seed ^ 0x776f_726b_6c6f_6164; // "workload"
        self.app.build(&WorkloadCfg {
            scale: self.scale,
            seed: splitmix64(&mut s),
            graph_nodes: self.graph_nodes,
        })
    }

    /// The seed of replicate `r` of this cell.
    ///
    /// Replicate 0 *is* the cell seed, so single-seed sweeps are unchanged
    /// by the replication axis; higher replicates derive from the cell
    /// seed and the replicate index only — independent of `--jobs`, of the
    /// grid shape, and of how many replicates run.
    pub fn replicate_seed(&self, r: u32) -> u64 {
        if r == 0 {
            self.seed
        } else {
            cell_seed(self.seed, &format!("replicate-{r}"))
        }
    }

    /// A copy of this spec re-seeded for replicate `r` (what the engine
    /// actually simulates).
    pub fn replicate(&self, r: u32) -> CellSpec {
        CellSpec {
            seed: self.replicate_seed(r),
            ..self.clone()
        }
    }

    /// The seed of retry attempt `attempt` of replicate `r`.
    ///
    /// Attempt 0 *is* the classic replicate seed, so sweeps without
    /// retries are unchanged; later attempts derive from the replicate
    /// seed and the attempt index only — independent of `--jobs`, of why
    /// the earlier attempt failed, and of when the retry was scheduled.
    pub fn retry_seed(&self, r: u32, attempt: u32) -> u64 {
        let base = self.replicate_seed(r);
        if attempt == 0 {
            base
        } else {
            cell_seed(base, &format!("retry-{attempt}"))
        }
    }

    /// A copy of this spec re-seeded for attempt `attempt` of replicate
    /// `r` (what the engine actually simulates under `--retries`).
    pub fn replicate_attempt(&self, r: u32, attempt: u32) -> CellSpec {
        CellSpec {
            seed: self.retry_seed(r, attempt),
            ..self.clone()
        }
    }
}

/// Derives the deterministic seed of the cell named `id` under `base_seed`.
///
/// FNV-1a over the identity string, mixed through splitmix64. Identical for
/// every thread count and every expansion order.
pub fn cell_seed(base_seed: u64, id: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut s = h ^ base_seed;
    splitmix64(&mut s)
}

/// A declarative experiment grid: the cross product of every axis the
/// paper's evaluation sweeps. Axes with a single value pin that dimension.
#[derive(Clone, Debug)]
pub struct ExperimentGrid {
    /// Applications to run.
    pub apps: Vec<App>,
    /// Page-table organizations.
    pub kinds: Vec<PtKind>,
    /// THP settings.
    pub thps: Vec<bool>,
    /// ME-HPT variants (applied to [`PtKind::MeHpt`] cells only; other
    /// kinds always run a single cell per point).
    pub variants: Vec<Variant>,
    /// The fragmentation (FMFI) axis: pinned or a Fig. 7-style sweep.
    pub fmfi: FmfiAxis,
    /// Graph sizes (GraphBIG apps only; non-graph apps ignore the value
    /// but still run once per entry, so keep this axis at one value unless
    /// the grid is graph-only).
    pub graph_nodes: Vec<u64>,
}

impl ExperimentGrid {
    /// The paper's default single-point axes: 0.7 FMFI, 1M-node graphs.
    pub fn paper(apps: Vec<App>, kinds: Vec<PtKind>, thps: Vec<bool>) -> ExperimentGrid {
        ExperimentGrid {
            apps,
            kinds,
            thps,
            variants: vec![Variant::Full],
            fmfi: FmfiAxis::paper(),
            graph_nodes: vec![1_000_000],
        }
    }

    /// Expands the grid into cells, deduplicated and in a deterministic
    /// order (the nesting order of the axes; variants collapse to
    /// [`Variant::Full`] for non-ME-HPT kinds).
    pub fn expand(&self, tuning: &Tuning) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let fragmentations = self.fmfi.points();
        for &app in &self.apps {
            for &graph_nodes in &self.graph_nodes {
                for &kind in &self.kinds {
                    let variants: &[Variant] = if kind == PtKind::MeHpt {
                        &self.variants
                    } else {
                        &[Variant::Full]
                    };
                    for &variant in variants {
                        for &thp in &self.thps {
                            for &fragmentation in &fragmentations {
                                let mut spec = CellSpec {
                                    app,
                                    kind,
                                    thp,
                                    variant,
                                    fragmentation,
                                    graph_nodes,
                                    scale: tuning.scale,
                                    mem_bytes: tuning.mem_bytes,
                                    seed: 0,
                                    max_accesses: tuning.max_accesses,
                                };
                                let id = spec.id();
                                if seen.insert(id.clone()) {
                                    spec.seed = cell_seed(tuning.base_seed, &id);
                                    cells.push(spec);
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_toggle_the_right_switches() {
        assert!(!Variant::NoInPlace.config().in_place);
        assert!(Variant::NoInPlace.config().per_way);
        assert!(!Variant::Neither.config().per_way);
        assert_eq!(Variant::Fixed1Mb.config().chunk_policy.first(), 1 << 20);
        for v in [
            Variant::Full,
            Variant::NoInPlace,
            Variant::NoPerWay,
            Variant::Neither,
            Variant::Fixed1Mb,
        ] {
            assert_eq!(Variant::parse(v.tag()), Some(v));
        }
    }

    #[test]
    fn expansion_is_deterministic_and_dedups_non_mehpt_variants() {
        let mut grid = ExperimentGrid::paper(
            vec![App::Gups, App::Bfs],
            vec![PtKind::Ecpt, PtKind::MeHpt],
            vec![false, true],
        );
        grid.variants = vec![Variant::Full, Variant::NoInPlace];
        let t = Tuning::quick();
        let a = grid.expand(&t);
        let b = grid.expand(&t);
        assert_eq!(a, b);
        // ECPT gets 1 variant, ME-HPT 2: (1 + 2) kinds×variants × 2 apps × 2 thp.
        assert_eq!(a.len(), 12);
        let ids: std::collections::HashSet<String> = a.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), a.len(), "ids must be unique");
    }

    #[test]
    fn cell_seed_is_position_independent() {
        let grid =
            ExperimentGrid::paper(vec![App::Gups, App::Bfs], vec![PtKind::MeHpt], vec![false]);
        let solo = ExperimentGrid::paper(vec![App::Bfs], vec![PtKind::MeHpt], vec![false]);
        let t = Tuning::quick();
        let wide = grid.expand(&t);
        let narrow = solo.expand(&t);
        let bfs_wide = wide.iter().find(|c| c.app == App::Bfs).unwrap();
        assert_eq!(bfs_wide.seed, narrow[0].seed);
        assert_ne!(wide[0].seed, wide[1].seed);
    }

    #[test]
    fn fmfi_sweep_multiplies_cells_and_keeps_ids_unique() {
        let mut grid = ExperimentGrid::paper(vec![App::Gups], vec![PtKind::MeHpt], vec![false]);
        let pinned = grid.expand(&Tuning::quick()).len();
        grid.fmfi = FmfiAxis::sweep();
        let swept = grid.expand(&Tuning::quick());
        assert_eq!(swept.len(), pinned * FmfiAxis::sweep().points().len());
        let ids: std::collections::HashSet<String> = swept.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), swept.len());
        assert!((swept[0].fragmentation - 0.0).abs() < 1e-12);
        assert!((swept.last().unwrap().fragmentation - 0.9).abs() < 1e-12);
    }

    #[test]
    fn replicate_seeds_are_stable_and_distinct() {
        let grid = ExperimentGrid::paper(vec![App::Gups], vec![PtKind::MeHpt], vec![false]);
        let cell = &grid.expand(&Tuning::quick())[0];
        assert_eq!(cell.replicate_seed(0), cell.seed, "replicate 0 is the cell");
        assert_eq!(cell.replicate_seed(3), cell.replicate_seed(3));
        let seeds: std::collections::HashSet<u64> =
            (0..16).map(|r| cell.replicate_seed(r)).collect();
        assert_eq!(seeds.len(), 16);
        let rep = cell.replicate(2);
        assert_eq!(rep.id(), cell.id(), "replicates share the cell identity");
        assert_ne!(rep.seed, cell.seed);
    }

    #[test]
    fn retry_seeds_extend_replicate_seeds_deterministically() {
        let grid = ExperimentGrid::paper(vec![App::Gups], vec![PtKind::MeHpt], vec![false]);
        let cell = &grid.expand(&Tuning::quick())[0];
        for r in 0..3 {
            assert_eq!(
                cell.retry_seed(r, 0),
                cell.replicate_seed(r),
                "attempt 0 is the classic replicate seed"
            );
        }
        // Distinct across both axes, stable across calls.
        let seeds: std::collections::HashSet<u64> = (0..4)
            .flat_map(|r| (0..4).map(move |a| (r, a)))
            .map(|(r, a)| cell.retry_seed(r, a))
            .collect();
        assert_eq!(seeds.len(), 16);
        assert_eq!(cell.retry_seed(1, 2), cell.retry_seed(1, 2));
        let spec = cell.replicate_attempt(1, 2);
        assert_eq!(spec.id(), cell.id(), "attempts share the cell identity");
        assert_eq!(spec.seed, cell.retry_seed(1, 2));
    }

    #[test]
    fn sim_config_carries_the_cell_knobs() {
        let grid = ExperimentGrid::paper(vec![App::Mummer], vec![PtKind::MeHpt], vec![true]);
        let cell = &grid.expand(&Tuning::quick())[0];
        let cfg = cell.sim_config();
        assert_eq!(cfg.mem_bytes, 2 * GIB);
        assert!(cfg.thp);
        assert_eq!(cfg.seed, cell.seed);
    }
}
