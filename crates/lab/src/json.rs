//! A minimal hand-rolled JSON value and writer.
//!
//! The workspace builds with no crates-io dependencies, so report
//! serialization is done by this module instead of `serde_json`. Object
//! keys keep insertion order and all formatting is deterministic, which is
//! what lets `mehpt-lab --jobs 1` and `--jobs 8` emit byte-identical
//! reports.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every counter in a report).
    UInt(u64),
    /// A float; non-finite values serialize as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array of unsigned integers.
    pub fn uints(v: &[u64]) -> Json {
        Json::Arr(v.iter().map(|&x| Json::UInt(x)).collect())
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // Shortest round-trip representation; always mark the
                    // value as a float so readers see a stable type.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj(vec![
            ("name", Json::Str("gups".into())),
            ("n", Json::UInt(3)),
            ("xs", Json::uints(&[1, 2])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"name\": \"gups\""));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        Json::Str("a\"b\\c\nd\u{1}".into()).write(&mut out, 0);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_are_finite_and_typed() {
        assert_eq!(Json::Num(0.7).render(), "0.7\n");
        assert_eq!(Json::Num(2.0).render(), "2.0\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }
}
