//! A minimal hand-rolled JSON value, writer and parser.
//!
//! The workspace builds with no crates-io dependencies, so report
//! serialization is done by this module instead of `serde_json`. Object
//! keys keep insertion order and all formatting is deterministic, which is
//! what lets `mehpt-lab --jobs 1` and `--jobs 8` emit byte-identical
//! reports. The parser ([`Json::parse`]) reads those reports back for
//! `mehpt-lab diff`; it accepts standard JSON (any whitespace, escapes,
//! scientific notation), not just this writer's own output.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every counter in a report).
    UInt(u64),
    /// A float; non-finite values serialize as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array of unsigned integers.
    pub fn uints(v: &[u64]) -> Json {
        Json::Arr(v.iter().map(|&x| Json::UInt(x)).collect())
    }

    /// An optional string: `null` when absent. The idiom for nullable
    /// report fields (`error`, `fault`).
    pub fn opt_str(v: Option<&str>) -> Json {
        match v {
            Some(s) => Json::Str(s.to_string()),
            None => Json::Null,
        }
    }

    /// An optional number: `null` when absent (`timeout_secs`).
    pub fn opt_num(v: Option<f64>) -> Json {
        match v {
            Some(n) => Json::Num(n),
            None => Json::Null,
        }
    }

    /// Parses a JSON document. Errors carry the byte offset and a short
    /// description — enough to diagnose a truncated or hand-edited report.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of a `UInt` or `Num` node.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The exact integer value of a `UInt` node (no float coercion —
    /// counters and seeds must round-trip bit-for-bit).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value of a `Str` node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items of an `Arr` node.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // Shortest round-trip representation; always mark the
                    // value as a float so readers see a stable type.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            // Surrogates don't appear in our own output;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj(vec![
            ("name", Json::Str("gups".into())),
            ("n", Json::UInt(3)),
            ("xs", Json::uints(&[1, 2])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"name\": \"gups\""));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        Json::Str("a\"b\\c\nd\u{1}".into()).write(&mut out, 0);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parse_round_trips_rendered_output() {
        let v = Json::obj(vec![
            ("name", Json::Str("gups, \"quoted\"\n".into())),
            ("n", Json::UInt(u64::MAX)),
            ("f", Json::Num(-0.75)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("xs", Json::Arr(vec![Json::UInt(1), Json::Num(2.5)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.get("n").unwrap().as_f64(), Some(u64::MAX as f64));
        assert_eq!(
            parsed.get("name").unwrap().as_str(),
            Some("gups, \"quoted\"\n")
        );
        assert_eq!(parsed.get("xs").unwrap().as_arr().unwrap().len(), 2);
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn parse_accepts_standard_json_and_rejects_garbage() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.0e1 , -3 ] } ").unwrap();
        let xs = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(xs[0], Json::UInt(1));
        assert_eq!(xs[1], Json::Num(20.0));
        assert_eq!(xs[2], Json::Num(-3.0));
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\": 1").is_err(), "truncated object");
        assert!(Json::parse("{\"a\": 1} x").is_err(), "trailing data");
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_handles_escapes() {
        assert_eq!(
            Json::parse("\"a\\u0041\\n\\t\\\\\"").unwrap(),
            Json::Str("aA\n\t\\".into())
        );
    }

    #[test]
    fn floats_are_finite_and_typed() {
        assert_eq!(Json::Num(0.7).render(), "0.7\n");
        assert_eq!(Json::Num(2.0).render(), "2.0\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }
}
