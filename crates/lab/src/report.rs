//! Cell results and the structured sweep report (JSON + CSV).
//!
//! Schema v4 (see [`SCHEMA_VERSION`]): a report carries the replication
//! factor (`seeds`), the failure-handling configuration (`timeout_secs`,
//! the active `fault` spec, the retry budget `retries`), each cell lists
//! its per-replicate outcomes — including the full per-attempt history
//! when `--retries` re-ran a failed replicate — and an aggregated
//! [`CellStats`] block (mean/min/max/95% CI per headline metric), and the
//! whole document stays a pure function of the grid, the seeds and that
//! configuration — byte-identical for every `--jobs` value, diffable with
//! `mehpt-lab diff`. Failure records are deliberately
//! configuration-shaped: a timed-out replicate serializes its status and
//! the *configured* deadline, never measured wall-clock.

use mehpt_sim::{PtKind, SimReport};

use crate::grid::{CellSpec, Variant};
use crate::json::Json;
use crate::stats::CellStats;

/// Version stamp of the serialized JSON report. Bumped to 4 when retry
/// support landed: the report-level `retries` budget, per-replicate
/// `attempts` histories and the `summary.workers_abandoned` count. (v3
/// added failure records — the `timed_out` status, `timeout_secs`,
/// `fault` and `summary.timed_out`; v2 added `seeds`, per-cell
/// `replicates` and `stats`.)
pub const SCHEMA_VERSION: u64 = 4;

/// How a cell ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// The simulation ran to completion.
    Ok,
    /// The simulation finished early by design (e.g. the paper's ECPT
    /// contiguous-allocation failure above 0.7 FMFI). Metrics are present.
    Aborted,
    /// The cell panicked; the panic was caught and the rest of the sweep
    /// continued. No metrics.
    Failed,
    /// The cell exceeded the configured watchdog deadline; its worker was
    /// abandoned and the rest of the sweep continued. No metrics.
    TimedOut,
}

impl CellStatus {
    /// Lower-case report label.
    pub fn label(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Aborted => "aborted",
            CellStatus::Failed => "failed",
            CellStatus::TimedOut => "timed_out",
        }
    }

    /// Whether this status is a harness failure (no usable metrics), as
    /// opposed to a completed or modeled-abort outcome.
    pub fn is_failure(self) -> bool {
        matches!(self, CellStatus::Failed | CellStatus::TimedOut)
    }

    /// Parses a label produced by [`CellStatus::label`] (the journal's
    /// reader side).
    pub fn parse(label: &str) -> Option<CellStatus> {
        match label {
            "ok" => Some(CellStatus::Ok),
            "aborted" => Some(CellStatus::Aborted),
            "failed" => Some(CellStatus::Failed),
            "timed_out" => Some(CellStatus::TimedOut),
            _ => None,
        }
    }
}

/// The deterministic measurements of one completed cell — a flattened
/// [`SimReport`]. Wall-clock time deliberately lives outside this struct
/// (on [`CellResult`]) so serialized reports are bit-identical across
/// thread counts and machines.
#[derive(Clone, Debug, PartialEq)]
pub struct CellMetrics {
    /// Accesses simulated.
    pub accesses: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// Fixed per-access base cycles.
    pub base_cycles: u64,
    /// TLB + page-walk cycles.
    pub translation_cycles: u64,
    /// OS fault-handling cycles (excluding allocation).
    pub fault_cycles: u64,
    /// Physical-memory allocation cycles.
    pub alloc_cycles: u64,
    /// Page-table maintenance cycles.
    pub os_pt_cycles: u64,
    /// Page faults taken.
    pub faults: u64,
    /// 4KB pages mapped.
    pub pages_4k: u64,
    /// 2MB pages mapped.
    pub pages_2m: u64,
    /// L2 TLB miss rate over all accesses.
    pub tlb_miss_rate: f64,
    /// Page walks performed.
    pub walks: u64,
    /// Mean memory accesses per walk.
    pub mean_walk_accesses: f64,
    /// Mean walk latency in cycles.
    pub mean_walk_cycles: f64,
    /// Final page-table bytes.
    pub pt_final_bytes: u64,
    /// Peak page-table bytes.
    pub pt_peak_bytes: u64,
    /// Largest contiguous page-table allocation.
    pub pt_max_contiguous: u64,
    /// Final size of each 4KB-table way.
    pub way_sizes_4k: Vec<u64>,
    /// Physical bytes backing each 4KB-table way.
    pub way_phys_4k: Vec<u64>,
    /// Upsizes per way, 4KB table.
    pub upsizes_per_way_4k: Vec<u64>,
    /// Upsizes per way, 2MB table.
    pub upsizes_per_way_2m: Vec<u64>,
    /// Mean fraction of entries moved per 4KB-table upsize.
    pub moved_fraction_4k: f64,
    /// Cuckoo re-insertion histogram, all tables pooled.
    pub kicks_histogram: Vec<u64>,
    /// L2P entries in use at the end.
    pub l2p_entries_used: u64,
    /// Chunk-size switches performed.
    pub chunk_switches: u64,
    /// Nominal data footprint of the workload.
    pub data_bytes_nominal: u64,
}

impl From<&SimReport> for CellMetrics {
    fn from(r: &SimReport) -> CellMetrics {
        CellMetrics {
            accesses: r.accesses,
            total_cycles: r.total_cycles,
            base_cycles: r.base_cycles,
            translation_cycles: r.translation_cycles,
            fault_cycles: r.fault_cycles,
            alloc_cycles: r.alloc_cycles,
            os_pt_cycles: r.os_pt_cycles,
            faults: r.faults,
            pages_4k: r.pages_4k,
            pages_2m: r.pages_2m,
            tlb_miss_rate: r.tlb_miss_rate,
            walks: r.walks,
            mean_walk_accesses: r.mean_walk_accesses,
            mean_walk_cycles: r.mean_walk_cycles,
            pt_final_bytes: r.pt_final_bytes,
            pt_peak_bytes: r.pt_peak_bytes,
            pt_max_contiguous: r.pt_max_contiguous,
            way_sizes_4k: r.way_sizes_4k.clone(),
            way_phys_4k: r.way_phys_4k.clone(),
            upsizes_per_way_4k: r.upsizes_per_way_4k.clone(),
            upsizes_per_way_2m: r.upsizes_per_way_2m.clone(),
            moved_fraction_4k: r.moved_fraction_4k,
            kicks_histogram: r.kicks_histogram.clone(),
            l2p_entries_used: r.l2p_entries_used as u64,
            chunk_switches: r.chunk_switches,
            data_bytes_nominal: r.data_bytes_nominal,
        }
    }
}

impl CellMetrics {
    /// Cycles per access (the normalized figure-9 metric).
    pub fn cycles_per_access(&self) -> f64 {
        self.total_cycles as f64 / self.accesses.max(1) as f64
    }

    /// Speedup over a baseline cell (cycles-per-access ratio, robust to
    /// aborted baselines that ran fewer accesses).
    pub fn speedup_over(&self, baseline: &CellMetrics) -> f64 {
        baseline.cycles_per_access() / self.cycles_per_access()
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("accesses", Json::UInt(self.accesses)),
            ("total_cycles", Json::UInt(self.total_cycles)),
            ("base_cycles", Json::UInt(self.base_cycles)),
            ("translation_cycles", Json::UInt(self.translation_cycles)),
            ("fault_cycles", Json::UInt(self.fault_cycles)),
            ("alloc_cycles", Json::UInt(self.alloc_cycles)),
            ("os_pt_cycles", Json::UInt(self.os_pt_cycles)),
            ("faults", Json::UInt(self.faults)),
            ("pages_4k", Json::UInt(self.pages_4k)),
            ("pages_2m", Json::UInt(self.pages_2m)),
            ("tlb_miss_rate", Json::Num(self.tlb_miss_rate)),
            ("walks", Json::UInt(self.walks)),
            ("mean_walk_accesses", Json::Num(self.mean_walk_accesses)),
            ("mean_walk_cycles", Json::Num(self.mean_walk_cycles)),
            ("pt_final_bytes", Json::UInt(self.pt_final_bytes)),
            ("pt_peak_bytes", Json::UInt(self.pt_peak_bytes)),
            ("pt_max_contiguous", Json::UInt(self.pt_max_contiguous)),
            ("way_sizes_4k", Json::uints(&self.way_sizes_4k)),
            ("way_phys_4k", Json::uints(&self.way_phys_4k)),
            ("upsizes_per_way_4k", Json::uints(&self.upsizes_per_way_4k)),
            ("upsizes_per_way_2m", Json::uints(&self.upsizes_per_way_2m)),
            ("moved_fraction_4k", Json::Num(self.moved_fraction_4k)),
            ("kicks_histogram", Json::uints(&self.kicks_histogram)),
            ("l2p_entries_used", Json::UInt(self.l2p_entries_used)),
            ("chunk_switches", Json::UInt(self.chunk_switches)),
            ("data_bytes_nominal", Json::UInt(self.data_bytes_nominal)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<CellMetrics, String> {
        let uint = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("metrics: missing integer field {key:?}"))
        };
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metrics: missing numeric field {key:?}"))
        };
        let uints = |key: &str| -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(Json::as_arr)
                .map(|items| items.iter().filter_map(Json::as_u64).collect::<Vec<u64>>())
                .ok_or_else(|| format!("metrics: missing array field {key:?}"))
        };
        Ok(CellMetrics {
            accesses: uint("accesses")?,
            total_cycles: uint("total_cycles")?,
            base_cycles: uint("base_cycles")?,
            translation_cycles: uint("translation_cycles")?,
            fault_cycles: uint("fault_cycles")?,
            alloc_cycles: uint("alloc_cycles")?,
            os_pt_cycles: uint("os_pt_cycles")?,
            faults: uint("faults")?,
            pages_4k: uint("pages_4k")?,
            pages_2m: uint("pages_2m")?,
            tlb_miss_rate: num("tlb_miss_rate")?,
            walks: uint("walks")?,
            mean_walk_accesses: num("mean_walk_accesses")?,
            mean_walk_cycles: num("mean_walk_cycles")?,
            pt_final_bytes: uint("pt_final_bytes")?,
            pt_peak_bytes: uint("pt_peak_bytes")?,
            pt_max_contiguous: uint("pt_max_contiguous")?,
            way_sizes_4k: uints("way_sizes_4k")?,
            way_phys_4k: uints("way_phys_4k")?,
            upsizes_per_way_4k: uints("upsizes_per_way_4k")?,
            upsizes_per_way_2m: uints("upsizes_per_way_2m")?,
            moved_fraction_4k: num("moved_fraction_4k")?,
            kicks_histogram: uints("kicks_histogram")?,
            l2p_entries_used: uint("l2p_entries_used")?,
            chunk_switches: uint("chunk_switches")?,
            data_bytes_nominal: uint("data_bytes_nominal")?,
        })
    }
}

/// One attempt at running a replicate: the retry machinery's audit trail.
///
/// Attempt 0 runs the classic replicate seed; retry attempts run
/// identity-derived retry seeds ([`CellSpec::retry_seed`]). The final
/// attempt's outcome *is* the replicate's outcome; earlier entries record
/// what `--retries` recovered from.
#[derive(Clone, Debug, PartialEq)]
pub struct AttemptRecord {
    /// Attempt index (0 = the original run).
    pub attempt: u32,
    /// The seed this attempt simulated under.
    pub seed: u64,
    /// How this attempt ended.
    pub status: CellStatus,
    /// Abort reason, caught panic message or watchdog record, when not
    /// [`CellStatus::Ok`].
    pub error: Option<String>,
}

impl AttemptRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("attempt", Json::UInt(self.attempt as u64)),
            ("seed", Json::UInt(self.seed)),
            ("status", Json::Str(self.status.label().to_string())),
            ("error", Json::opt_str(self.error.as_deref())),
        ])
    }

    fn from_json(v: &Json) -> Result<AttemptRecord, String> {
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .and_then(CellStatus::parse)
            .ok_or_else(|| "attempt: bad status".to_string())?;
        Ok(AttemptRecord {
            attempt: v
                .get("attempt")
                .and_then(Json::as_u64)
                .ok_or_else(|| "attempt: missing index".to_string())? as u32,
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| "attempt: missing seed".to_string())?,
            status,
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// The outcome of one replicate of one cell.
#[derive(Clone, Debug, PartialEq)]
pub struct RepResult {
    /// Replicate index (0-based; replicate 0 runs the cell seed itself).
    pub replicate: u32,
    /// The identity-derived seed this replicate's *final* attempt
    /// simulated under (the classic replicate seed unless retried).
    pub seed: u64,
    /// How this replicate ended (the final attempt's status).
    pub status: CellStatus,
    /// Abort reason or caught panic message, when not [`CellStatus::Ok`].
    pub error: Option<String>,
    /// The replicate's measurements ([`None`] after a panic).
    pub metrics: Option<CellMetrics>,
    /// Wall-clock milliseconds (progress stream only, never serialized).
    pub wall_millis: u64,
    /// Full attempt history, in attempt order. An empty vector means a
    /// single attempt described by the replicate fields themselves (the
    /// common no-retry case); serialization synthesizes that one entry.
    pub attempts: Vec<AttemptRecord>,
}

impl RepResult {
    /// The attempt history, synthesizing the single-attempt entry when
    /// [`RepResult::attempts`] is empty. Always non-empty.
    pub fn attempt_history(&self) -> Vec<AttemptRecord> {
        if self.attempts.is_empty() {
            vec![AttemptRecord {
                attempt: 0,
                seed: self.seed,
                status: self.status,
                error: self.error.clone(),
            }]
        } else {
            self.attempts.clone()
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("replicate", Json::UInt(self.replicate as u64)),
            ("seed", Json::UInt(self.seed)),
            ("status", Json::Str(self.status.label().to_string())),
            ("error", Json::opt_str(self.error.as_deref())),
            (
                "attempts",
                Json::Arr(
                    self.attempt_history()
                        .iter()
                        .map(AttemptRecord::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// The journal-record payload: the report-side fields *plus* the full
    /// metrics block, so a resumed sweep can rebuild stats bit-for-bit.
    pub(crate) fn to_journal_json(&self) -> Json {
        Json::obj(vec![
            ("replicate", Json::UInt(self.replicate as u64)),
            ("seed", Json::UInt(self.seed)),
            ("status", Json::Str(self.status.label().to_string())),
            ("error", Json::opt_str(self.error.as_deref())),
            (
                "attempts",
                Json::Arr(
                    self.attempt_history()
                        .iter()
                        .map(AttemptRecord::to_json)
                        .collect(),
                ),
            ),
            (
                "metrics",
                match &self.metrics {
                    Some(m) => m.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parses a journal-record payload written by
    /// [`RepResult::to_journal_json`]. `wall_millis` is zero — it never
    /// enters the serialized report, so resumed reports stay
    /// byte-identical to uninterrupted ones.
    pub(crate) fn from_journal_json(v: &Json) -> Result<RepResult, String> {
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .and_then(CellStatus::parse)
            .ok_or_else(|| "replicate: bad status".to_string())?;
        let attempts = v
            .get("attempts")
            .and_then(Json::as_arr)
            .ok_or_else(|| "replicate: missing attempts".to_string())?
            .iter()
            .map(AttemptRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if attempts.is_empty() {
            return Err("replicate: empty attempt history".to_string());
        }
        let metrics = match v.get("metrics") {
            None | Some(Json::Null) => None,
            Some(m) => Some(CellMetrics::from_json(m)?),
        };
        Ok(RepResult {
            replicate: v
                .get("replicate")
                .and_then(Json::as_u64)
                .ok_or_else(|| "replicate: missing index".to_string())?
                as u32,
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| "replicate: missing seed".to_string())?,
            status,
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
            metrics,
            wall_millis: 0,
            attempts,
        })
    }
}

/// The outcome of one cell: every replicate, plus the aggregate view.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// What was run.
    pub spec: CellSpec,
    /// Aggregate status: [`CellStatus::Failed`] if any replicate panicked,
    /// else [`CellStatus::TimedOut`] if any replicate hit the watchdog,
    /// else [`CellStatus::Aborted`] if any replicate hit a modeled abort,
    /// else [`CellStatus::Ok`].
    pub status: CellStatus,
    /// The first replicate error, when not [`CellStatus::Ok`].
    pub error: Option<String>,
    /// Replicate 0's measurements ([`None`] when it failed). The primary
    /// replicate: single-seed sweeps and every table renderer read this.
    pub metrics: Option<CellMetrics>,
    /// Every replicate's outcome, in replicate order (length = `--seeds`).
    pub replicates: Vec<RepResult>,
    /// Mean/min/max/95% CI over the metric-bearing replicates ([`None`]
    /// when every replicate failed).
    pub stats: Option<CellStats>,
    /// Total wall-clock milliseconds across replicates. Streamed to
    /// progress output and aggregated on stderr, but **never serialized**
    /// — reports must be identical across `--jobs` settings.
    pub wall_millis: u64,
}

impl CellResult {
    /// Assembles a cell from its replicate outcomes (order-invariant: the
    /// list is sorted by replicate index first, and stats aggregation
    /// canonicalizes value order internally).
    pub fn from_replicates(spec: CellSpec, mut reps: Vec<RepResult>) -> CellResult {
        assert!(!reps.is_empty(), "a cell has at least one replicate");
        reps.sort_by_key(|r| r.replicate);
        let status = if reps.iter().any(|r| r.status == CellStatus::Failed) {
            CellStatus::Failed
        } else if reps.iter().any(|r| r.status == CellStatus::TimedOut) {
            CellStatus::TimedOut
        } else if reps.iter().any(|r| r.status == CellStatus::Aborted) {
            CellStatus::Aborted
        } else {
            CellStatus::Ok
        };
        let error = reps.iter().find_map(|r| r.error.clone());
        let metric_refs: Vec<&CellMetrics> =
            reps.iter().filter_map(|r| r.metrics.as_ref()).collect();
        let stats = CellStats::from_metrics(&metric_refs);
        CellResult {
            metrics: reps[0].metrics.clone(),
            wall_millis: reps.iter().map(|r| r.wall_millis).sum(),
            status,
            error,
            stats,
            replicates: reps,
            spec,
        }
    }

    /// Convenience constructor for a single-replicate cell.
    pub fn single(spec: CellSpec, rep: RepResult) -> CellResult {
        CellResult::from_replicates(spec, vec![rep])
    }

    fn to_json(&self) -> Json {
        let s = &self.spec;
        Json::obj(vec![
            ("id", Json::Str(s.id())),
            ("app", Json::Str(s.app.name().to_string())),
            ("kind", Json::Str(s.kind.label().to_string())),
            ("thp", Json::Bool(s.thp)),
            ("variant", Json::Str(s.variant.tag().to_string())),
            ("fragmentation", Json::Num(s.fragmentation)),
            ("graph_nodes", Json::UInt(s.graph_nodes)),
            ("seed", Json::UInt(s.seed)),
            ("status", Json::Str(self.status.label().to_string())),
            ("error", Json::opt_str(self.error.as_deref())),
            (
                "replicates",
                Json::Arr(self.replicates.iter().map(RepResult::to_json).collect()),
            ),
            (
                "stats",
                match &self.stats {
                    Some(st) => st.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "metrics",
                match &self.metrics {
                    Some(m) => m.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Per-status cell tallies of a sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatusCounts {
    /// Cells that completed normally.
    pub ok: usize,
    /// Cells that hit a modeled abort.
    pub aborted: usize,
    /// Cells with a panicked replicate.
    pub failed: usize,
    /// Cells with a watchdog-abandoned replicate (and no panicked one).
    pub timed_out: usize,
}

impl StatusCounts {
    /// Harness failures: panicked plus timed-out cells. Non-zero makes
    /// the CLI exit 1.
    pub fn bad(&self) -> usize {
        self.failed + self.timed_out
    }
}

/// A whole sweep's structured report: every cell plus aggregate counts.
#[derive(Clone, Debug)]
pub struct LabReport {
    /// Preset or sweep name.
    pub preset: String,
    /// The uniform workload scale the sweep ran at.
    pub scale: f64,
    /// The base seed the per-cell seeds derive from.
    pub base_seed: u64,
    /// Replicates per cell (`--seeds`; 1 = the classic single-seed sweep).
    pub seeds: u32,
    /// Retry budget per replicate (`--retries`; 0 = single attempt).
    pub retries: u32,
    /// The watchdog deadline the sweep ran under, in seconds
    /// ([`None`] = no watchdog). Configuration, not measurement: this is
    /// the only duration that ever enters the serialized report.
    pub timeout_secs: Option<f64>,
    /// The active fault-injection spec ([`None`] outside fault testing).
    pub fault: Option<String>,
    /// Per-cell outcomes, in grid-expansion order.
    pub cells: Vec<CellResult>,
}

impl LabReport {
    /// Per-status cell counts.
    pub fn counts(&self) -> StatusCounts {
        let mut c = StatusCounts::default();
        for cell in &self.cells {
            match cell.status {
                CellStatus::Ok => c.ok += 1,
                CellStatus::Aborted => c.aborted += 1,
                CellStatus::Failed => c.failed += 1,
                CellStatus::TimedOut => c.timed_out += 1,
            }
        }
        c
    }

    /// Total wall-clock milliseconds across cells (CPU-side; not part of
    /// the serialized report).
    pub fn total_wall_millis(&self) -> u64 {
        self.cells.iter().map(|c| c.wall_millis).sum()
    }

    /// Worker threads the watchdog abandoned over the sweep: one per
    /// timed-out *attempt* across every replicate of every cell. Derived
    /// from the records — not from runtime events — so the count is
    /// deterministic and survives a journal resume unchanged.
    pub fn workers_abandoned(&self) -> u64 {
        self.cells
            .iter()
            .flat_map(|c| &c.replicates)
            .map(|r| {
                r.attempt_history()
                    .iter()
                    .filter(|a| a.status == CellStatus::TimedOut)
                    .count() as u64
            })
            .sum()
    }

    /// Looks up one cell by its grid coordinates (the first match on any
    /// graph size).
    pub fn cell(
        &self,
        app: mehpt_workloads::App,
        kind: PtKind,
        thp: bool,
        variant: Variant,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.spec.app == app
                && c.spec.kind == kind
                && c.spec.thp == thp
                && c.spec.variant == variant
        })
    }

    /// Looks up one cell by grid coordinates including the graph size.
    pub fn cell_at(
        &self,
        app: mehpt_workloads::App,
        kind: PtKind,
        thp: bool,
        variant: Variant,
        graph_nodes: u64,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.spec.app == app
                && c.spec.kind == kind
                && c.spec.thp == thp
                && c.spec.variant == variant
                && c.spec.graph_nodes == graph_nodes
        })
    }

    /// Looks up one cell's metrics by its grid coordinates (graph size
    /// defaults to the first matching cell).
    pub fn metrics(
        &self,
        app: mehpt_workloads::App,
        kind: PtKind,
        thp: bool,
        variant: Variant,
    ) -> Option<&CellMetrics> {
        self.cell(app, kind, thp, variant)
            .and_then(|c| c.metrics.as_ref())
    }

    /// The serialized JSON report. Deterministic: a pure function of the
    /// cell specs, the failure-handling configuration and the simulation
    /// results.
    pub fn to_json(&self) -> String {
        let counts = self.counts();
        let total_cycles: u64 = self
            .cells
            .iter()
            .filter_map(|c| c.metrics.as_ref())
            .map(|m| m.total_cycles)
            .sum();
        let total_accesses: u64 = self
            .cells
            .iter()
            .filter_map(|c| c.metrics.as_ref())
            .map(|m| m.accesses)
            .sum();
        Json::obj(vec![
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("preset", Json::Str(self.preset.clone())),
            ("scale", Json::Num(self.scale)),
            ("base_seed", Json::UInt(self.base_seed)),
            ("seeds", Json::UInt(self.seeds as u64)),
            ("retries", Json::UInt(self.retries as u64)),
            ("timeout_secs", Json::opt_num(self.timeout_secs)),
            ("fault", Json::opt_str(self.fault.as_deref())),
            (
                "summary",
                Json::obj(vec![
                    ("cells", Json::UInt(self.cells.len() as u64)),
                    ("ok", Json::UInt(counts.ok as u64)),
                    ("aborted", Json::UInt(counts.aborted as u64)),
                    ("failed", Json::UInt(counts.failed as u64)),
                    ("timed_out", Json::UInt(counts.timed_out as u64)),
                    ("workers_abandoned", Json::UInt(self.workers_abandoned())),
                    ("total_cycles", Json::UInt(total_cycles)),
                    ("total_accesses", Json::UInt(total_accesses)),
                ]),
            ),
            (
                "cells",
                Json::Arr(self.cells.iter().map(CellResult::to_json).collect()),
            ),
        ])
        .render()
    }

    /// The CSV report: one row per cell with the headline metrics of the
    /// primary replicate plus the aggregate mean/min/max/CI columns
    /// (empty aggregate columns for all-failed cells). `attempts` totals
    /// the attempts made across the cell's replicates — it exceeds
    /// `replicates` exactly when `--retries` re-ran something.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "id,app,kind,thp,variant,graph_nodes,fragmentation,seed,status,replicates,attempts,\
             accesses,total_cycles,faults,pages_4k,pages_2m,tlb_miss_rate,\
             walks,mean_walk_cycles,pt_final_bytes,pt_peak_bytes,\
             pt_max_contiguous,l2p_entries_used,chunk_switches,\
             cpa_mean,cpa_min,cpa_max,cpa_ci95,\
             total_cycles_mean,total_cycles_ci95,pt_peak_bytes_mean,pt_peak_bytes_ci95,\
             error\n",
        );
        for cell in &self.cells {
            let s = &cell.spec;
            let m = cell.metrics.as_ref();
            let num = |f: Option<u64>| f.map(|v| v.to_string()).unwrap_or_default();
            let fnum = |f: Option<f64>| f.map(|v| format!("{v}")).unwrap_or_default();
            let st = cell.stats.as_ref();
            let cpa = st.and_then(|st| st.field("cycles_per_access")).copied();
            let cyc = st.and_then(|st| st.field("total_cycles")).copied();
            let peak = st.and_then(|st| st.field("pt_peak_bytes")).copied();
            let attempts: usize = cell
                .replicates
                .iter()
                .map(|r| r.attempt_history().len())
                .sum();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                s.id(),
                s.app.name(),
                s.kind.label(),
                s.thp,
                s.variant.tag(),
                s.graph_nodes,
                s.fragmentation,
                s.seed,
                cell.status.label(),
                cell.replicates.len(),
                attempts,
                num(m.map(|m| m.accesses)),
                num(m.map(|m| m.total_cycles)),
                num(m.map(|m| m.faults)),
                num(m.map(|m| m.pages_4k)),
                num(m.map(|m| m.pages_2m)),
                fnum(m.map(|m| m.tlb_miss_rate)),
                num(m.map(|m| m.walks)),
                fnum(m.map(|m| m.mean_walk_cycles)),
                num(m.map(|m| m.pt_final_bytes)),
                num(m.map(|m| m.pt_peak_bytes)),
                num(m.map(|m| m.pt_max_contiguous)),
                num(m.map(|m| m.l2p_entries_used)),
                num(m.map(|m| m.chunk_switches)),
                fnum(cpa.map(|v| v.mean)),
                fnum(cpa.map(|v| v.min)),
                fnum(cpa.map(|v| v.max)),
                fnum(cpa.map(|v| v.ci95)),
                fnum(cyc.map(|v| v.mean)),
                fnum(cyc.map(|v| v.ci95)),
                fnum(peak.map(|v| v.mean)),
                fnum(peak.map(|v| v.ci95)),
                csv_escape(cell.error.as_deref().unwrap_or("")),
            ));
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{ExperimentGrid, Tuning};
    use mehpt_workloads::App;

    fn fake_metrics(cycles: u64) -> CellMetrics {
        CellMetrics {
            accesses: 100,
            total_cycles: cycles,
            base_cycles: 0,
            translation_cycles: 0,
            fault_cycles: 0,
            alloc_cycles: 0,
            os_pt_cycles: 0,
            faults: 1,
            pages_4k: 1,
            pages_2m: 0,
            tlb_miss_rate: 0.5,
            walks: 2,
            mean_walk_accesses: 1.0,
            mean_walk_cycles: 30.0,
            pt_final_bytes: 4096,
            pt_peak_bytes: 8192,
            pt_max_contiguous: 4096,
            way_sizes_4k: vec![8192; 3],
            way_phys_4k: vec![8192; 3],
            upsizes_per_way_4k: vec![0; 3],
            upsizes_per_way_2m: vec![],
            moved_fraction_4k: 0.5,
            kicks_histogram: vec![10, 2],
            l2p_entries_used: 3,
            chunk_switches: 0,
            data_bytes_nominal: 1 << 30,
        }
    }

    fn fake_report() -> LabReport {
        let grid =
            ExperimentGrid::paper(vec![App::Gups, App::Bfs], vec![PtKind::MeHpt], vec![false]);
        let cells = grid
            .expand(&Tuning::quick())
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let rep = RepResult {
                    replicate: 0,
                    seed: spec.seed,
                    status: if i == 0 {
                        CellStatus::Ok
                    } else {
                        CellStatus::Failed
                    },
                    error: (i != 0).then(|| "injected, with comma".to_string()),
                    metrics: (i == 0).then(|| fake_metrics(1000)),
                    wall_millis: 12 + i as u64,
                    attempts: vec![],
                };
                CellResult::single(spec, rep)
            })
            .collect();
        LabReport {
            preset: "test".into(),
            scale: 0.005,
            base_seed: 0x5eed,
            seeds: 1,
            retries: 0,
            timeout_secs: None,
            fault: None,
            cells,
        }
    }

    #[test]
    fn json_report_is_deterministic_and_ignores_wall_clock() {
        let mut a = fake_report();
        let mut b = fake_report();
        a.cells[0].wall_millis = 1;
        b.cells[0].wall_millis = 99_999;
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"schema_version\": 4"));
        assert!(a.to_json().contains("\"retries\": 0"));
        assert!(a.to_json().contains("\"workers_abandoned\": 0"));
        assert!(a.to_json().contains("\"attempts\": ["));
        assert!(a.to_json().contains("\"timeout_secs\": null"));
        assert!(a.to_json().contains("\"fault\": null"));
        assert!(a.to_json().contains("\"timed_out\": 0"));
        assert!(a.to_json().contains("\"status\": \"failed\""));
        assert!(a.to_json().contains("\"metrics\": null"));
        assert!(a.to_json().contains("\"stats\": null"));
    }

    #[test]
    fn failure_configuration_serializes_and_timed_out_outranks_aborted() {
        let mut r = fake_report();
        r.timeout_secs = Some(2.0);
        r.fault = Some("hang:@2".to_string());
        let spec = r.cells[0].spec.clone();
        let rep = |r: u32, status: CellStatus| RepResult {
            replicate: r,
            seed: spec.replicate_seed(r),
            status,
            error: status
                .is_failure()
                .then(|| "replicate exceeded the 2s deadline; worker abandoned".to_string()),
            metrics: (!status.is_failure()).then(|| fake_metrics(1000)),
            wall_millis: 2000,
            attempts: vec![],
        };
        r.cells[0] = CellResult::from_replicates(
            spec.clone(),
            vec![rep(0, CellStatus::Aborted), rep(1, CellStatus::TimedOut)],
        );
        assert_eq!(r.cells[0].status, CellStatus::TimedOut);
        let json = r.to_json();
        assert!(json.contains("\"timeout_secs\": 2"));
        assert!(json.contains("\"fault\": \"hang:@2\""));
        assert!(json.contains("\"status\": \"timed_out\""));
        assert!(json.contains("\"timed_out\": 1"));
        assert!(json.contains("\"workers_abandoned\": 1"));
        assert_eq!(r.workers_abandoned(), 1);
        assert!(json.contains("worker abandoned"));
        let counts = r.counts();
        assert_eq!(counts.timed_out, 1);
        assert_eq!(counts.bad(), 2, "timed-out and failed both count as bad");
        // A timed-out sibling still leaves the surviving replicate's
        // stats in place.
        assert_eq!(r.cells[0].stats.as_ref().unwrap().replicates, 1);
    }

    #[test]
    fn replicate_aggregation_summarizes_statuses_and_stats() {
        let grid = ExperimentGrid::paper(vec![App::Gups], vec![PtKind::MeHpt], vec![false]);
        let spec = grid.expand(&Tuning::quick()).remove(0);
        let rep = |r: u32, cycles: u64, status: CellStatus| RepResult {
            replicate: r,
            seed: spec.replicate_seed(r),
            status,
            error: (status == CellStatus::Failed).then(|| "boom".to_string()),
            metrics: (status != CellStatus::Failed).then(|| fake_metrics(cycles)),
            wall_millis: 5,
            attempts: vec![],
        };
        // Out-of-order arrival, one aborted replicate: still aggregates.
        let cell = CellResult::from_replicates(
            spec.clone(),
            vec![
                rep(2, 1200, CellStatus::Aborted),
                rep(0, 1000, CellStatus::Ok),
                rep(1, 1100, CellStatus::Ok),
            ],
        );
        assert_eq!(cell.status, CellStatus::Aborted);
        assert_eq!(cell.replicates.len(), 3);
        assert_eq!(cell.metrics.as_ref().unwrap().total_cycles, 1000);
        let st = cell.stats.as_ref().unwrap();
        assert_eq!(st.replicates, 3);
        let cyc = st.field("total_cycles").unwrap();
        assert!((cyc.mean - 1100.0).abs() < 1e-9);
        assert_eq!((cyc.min, cyc.max), (1000.0, 1200.0));
        assert!(cyc.ci95 > 0.0);

        // A failed primary replicate leaves metrics None but stats intact.
        let cell = CellResult::from_replicates(
            spec.clone(),
            vec![rep(0, 0, CellStatus::Failed), rep(1, 1100, CellStatus::Ok)],
        );
        assert_eq!(cell.status, CellStatus::Failed);
        assert!(cell.metrics.is_none());
        assert_eq!(cell.stats.as_ref().unwrap().replicates, 1);
        assert_eq!(cell.error.as_deref(), Some("boom"));
    }

    #[test]
    fn csv_has_a_row_per_cell_and_escapes_errors() {
        let r = fake_report();
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 1 + r.cells.len());
        assert!(csv.lines().next().unwrap().contains(",attempts,"));
        assert!(csv.contains("\"injected, with comma\""));
    }

    #[test]
    fn attempt_histories_synthesize_serialize_and_round_trip() {
        // A retried replicate: attempt 0 panicked, attempt 1 succeeded.
        let retried = RepResult {
            replicate: 1,
            seed: 42,
            status: CellStatus::Ok,
            error: None,
            metrics: Some(fake_metrics(1000)),
            wall_millis: 7,
            attempts: vec![
                AttemptRecord {
                    attempt: 0,
                    seed: 41,
                    status: CellStatus::Failed,
                    error: Some("boom".into()),
                },
                AttemptRecord {
                    attempt: 1,
                    seed: 42,
                    status: CellStatus::Ok,
                    error: None,
                },
            ],
        };
        let text = retried.to_journal_json().render();
        let back = RepResult::from_journal_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.attempts, retried.attempts);
        assert_eq!(back.metrics, retried.metrics);
        assert_eq!(back.wall_millis, 0, "wall-clock never round-trips");
        assert_eq!(back.to_journal_json().render(), text);

        // An empty history synthesizes the single classic attempt, and the
        // parsed form serializes to the very same bytes.
        let plain = RepResult {
            replicate: 0,
            seed: 7,
            status: CellStatus::TimedOut,
            error: Some("replicate exceeded the 2s deadline; worker abandoned".into()),
            metrics: None,
            wall_millis: 2000,
            attempts: vec![],
        };
        let history = plain.attempt_history();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].status, CellStatus::TimedOut);
        let text = plain.to_journal_json().render();
        let back = RepResult::from_journal_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.attempts.len(), 1);
        assert_eq!(back.to_journal_json().render(), text);
        assert!(RepResult::from_journal_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn counts_and_speedup() {
        let r = fake_report();
        let counts = r.counts();
        assert_eq!(
            counts,
            StatusCounts {
                ok: 1,
                aborted: 0,
                failed: 1,
                timed_out: 0
            }
        );
        assert_eq!(counts.bad(), 1);
        let fast = fake_metrics(100);
        let slow = fake_metrics(300);
        assert!((fast.speedup_over(&slow) - 3.0).abs() < 1e-9);
    }
}
