//! Replicate aggregation: mean / min / max / 95% confidence intervals.
//!
//! When a sweep runs with `--seeds N > 1`, every cell is simulated `N`
//! times under identity-derived replicate seeds and the per-replicate
//! metrics are folded into one [`CellStats`] block per cell. Aggregation
//! is **order-invariant**: values are sorted into a canonical order before
//! any floating-point reduction, so a shuffled replicate list (different
//! `--jobs` interleavings, different collection order) produces the exact
//! same bits. Confidence intervals use the two-sided Student-t critical
//! value at 95% for the replicate count at hand — with one replicate the
//! interval collapses to zero width, which is how single-seed reports
//! stay byte-compatible in spirit with the multi-seed schema.

use crate::json::Json;
use crate::report::CellMetrics;

/// Two-sided 97.5% Student-t quantiles for `df = 1..=30`; beyond 30
/// degrees of freedom the normal 1.96 is close enough for a report band.
const T975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 95% two-sided t critical value for `n` replicates (`df = n - 1`).
/// Zero for `n <= 1` — one observation has no dispersion to band.
pub fn t_critical_95(n: usize) -> f64 {
    match n {
        0 | 1 => 0.0,
        n if n - 1 <= T975.len() => T975[n - 2],
        _ => 1.96,
    }
}

/// Summary statistics of one metric across a cell's replicates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricStats {
    /// Arithmetic mean over replicates.
    pub mean: f64,
    /// Smallest replicate value.
    pub min: f64,
    /// Largest replicate value.
    pub max: f64,
    /// Half-width of the 95% confidence interval around the mean
    /// (`t * s / sqrt(n)`; 0.0 with a single replicate).
    ///
    /// Degrades gracefully under partial failure: replicates that failed
    /// or timed out contribute no value, so a cell with fewer than two
    /// surviving replicates reports a 0.0 band — never NaN.
    pub ci95: f64,
}

impl MetricStats {
    /// Aggregates raw replicate values. Returns `None` for an empty list.
    ///
    /// The values are sorted (total order, NaN-safe) before summation, so
    /// the result is bit-identical for every input permutation.
    pub fn from_values(values: &[f64]) -> Option<MetricStats> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let ci95 = if sorted.len() > 1 {
            let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
            let half = t_critical_95(sorted.len()) * (var / n).sqrt();
            // Serialized as JSON, where non-finite numbers become null and
            // break the stats contract — degenerate inputs get no band.
            if half.is_finite() {
                half
            } else {
                0.0
            }
        } else {
            0.0
        };
        Some(MetricStats {
            mean,
            min: sorted[0],
            max: *sorted.last().unwrap(),
            ci95,
        })
    }

    /// Lower edge of the 95% confidence interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.ci95
    }

    /// Upper edge of the 95% confidence interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.ci95
    }

    /// Whether this interval overlaps `other`'s (used by `mehpt-lab diff`
    /// to accept drift that both sweeps' own noise bands already cover).
    pub fn ci_overlaps(&self, other: &MetricStats) -> bool {
        self.lo() <= other.hi() && other.lo() <= self.hi()
    }

    pub(crate) fn to_json(self) -> Json {
        Json::obj(vec![
            ("mean", Json::Num(self.mean)),
            ("min", Json::Num(self.min)),
            ("max", Json::Num(self.max)),
            ("ci95", Json::Num(self.ci95)),
        ])
    }
}

/// The headline metrics a cell aggregates across replicates. Kept to the
/// scalars the paper's figures and `mehpt-lab diff` actually compare;
/// structural vectors (way sizes, histograms) stay on the replicate-0
/// [`CellMetrics`].
pub const STAT_FIELDS: [&str; 8] = [
    "cycles_per_access",
    "total_cycles",
    "tlb_miss_rate",
    "mean_walk_cycles",
    "faults",
    "pt_peak_bytes",
    "pt_final_bytes",
    "pt_max_contiguous",
];

/// Per-cell aggregate over all metric-bearing replicates.
#[derive(Clone, Debug, PartialEq)]
pub struct CellStats {
    /// Replicates that produced metrics (ok or modeled-abort).
    pub replicates: u32,
    /// One [`MetricStats`] per [`STAT_FIELDS`] entry, in that order.
    pub fields: Vec<MetricStats>,
}

impl CellStats {
    /// Aggregates the metric-bearing replicates of one cell. `None` when
    /// no replicate produced metrics (every replicate panicked).
    pub fn from_metrics(metrics: &[&CellMetrics]) -> Option<CellStats> {
        if metrics.is_empty() {
            return None;
        }
        let columns: [Vec<f64>; 8] = [
            metrics.iter().map(|m| m.cycles_per_access()).collect(),
            metrics.iter().map(|m| m.total_cycles as f64).collect(),
            metrics.iter().map(|m| m.tlb_miss_rate).collect(),
            metrics.iter().map(|m| m.mean_walk_cycles).collect(),
            metrics.iter().map(|m| m.faults as f64).collect(),
            metrics.iter().map(|m| m.pt_peak_bytes as f64).collect(),
            metrics.iter().map(|m| m.pt_final_bytes as f64).collect(),
            metrics.iter().map(|m| m.pt_max_contiguous as f64).collect(),
        ];
        Some(CellStats {
            replicates: metrics.len() as u32,
            fields: columns
                .iter()
                .map(|c| MetricStats::from_values(c).expect("non-empty columns"))
                .collect(),
        })
    }

    /// The stats of one named field (a [`STAT_FIELDS`] entry).
    pub fn field(&self, name: &str) -> Option<&MetricStats> {
        STAT_FIELDS
            .iter()
            .position(|&f| f == name)
            .and_then(|i| self.fields.get(i))
    }

    /// Named iteration over the aggregated fields, in schema order.
    pub fn named(&self) -> impl Iterator<Item = (&'static str, &MetricStats)> {
        STAT_FIELDS.iter().copied().zip(self.fields.iter())
    }

    pub(crate) fn to_json(&self) -> Json {
        let mut fields = vec![("replicates".to_string(), Json::UInt(self.replicates as u64))];
        for (name, stats) in self.named() {
            fields.push((name.to_string(), stats.to_json()));
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_min_max_and_ci_match_hand_computation() {
        let s = MetricStats::from_values(&[1.0, 2.0, 3.0]).unwrap();
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        // sd = 1, n = 3, t(2) = 4.303 -> ci = 4.303 / sqrt(3).
        assert!((s.ci95 - 4.303 / 3f64.sqrt()).abs() < 1e-9);
        assert!(s.lo() < 2.0 && s.hi() > 2.0);
    }

    #[test]
    fn single_value_has_zero_width() {
        let s = MetricStats::from_values(&[7.5]).unwrap();
        assert_eq!((s.mean, s.min, s.max, s.ci95), (7.5, 7.5, 7.5, 0.0));
        assert!(MetricStats::from_values(&[]).is_none());
    }

    #[test]
    fn aggregation_is_order_invariant_bitwise() {
        let a = [3.1, 1.7, 2.9, 0.4, 8.25, 5.5];
        let mut b = a;
        b.reverse();
        b.swap(1, 3);
        let sa = MetricStats::from_values(&a).unwrap();
        let sb = MetricStats::from_values(&b).unwrap();
        assert_eq!(sa.mean.to_bits(), sb.mean.to_bits());
        assert_eq!(sa.ci95.to_bits(), sb.ci95.to_bits());
    }

    #[test]
    fn t_table_edges() {
        assert_eq!(t_critical_95(1), 0.0);
        assert!((t_critical_95(2) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(31) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn ci_overlap() {
        let near = MetricStats::from_values(&[10.0, 11.0, 12.0]).unwrap();
        let far = MetricStats::from_values(&[100.0, 101.0]).unwrap();
        assert!(near.ci_overlaps(&near));
        assert!(!near.ci_overlaps(&far));
    }
}
