//! Shared formatting helpers for rendered experiment tables.

/// Geometric mean of positive values (0.0 for an empty slice).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats bytes the way the paper's tables do (KB/MB/GB).
pub fn fmt_bytes(bytes: u64) -> String {
    mehpt_types::ByteSize(bytes).to_string()
}

/// Formats a byte count in MB with one decimal (Table I style).
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

/// Formats a mean with its 95% confidence half-width (`12.3±0.4`); the
/// band is omitted when it is zero (single-seed runs).
pub fn fmt_ci(mean: f64, ci95: f64) -> String {
    if ci95 > 0.0 {
        format!("{mean:.1}±{ci95:.1}")
    } else {
        format!("{mean:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn mb_formatting() {
        assert_eq!(fmt_mb(1 << 20), "1.0");
        assert_eq!(fmt_mb(3 << 19), "1.5");
    }

    #[test]
    fn ci_formatting_drops_zero_bands() {
        assert_eq!(fmt_ci(12.34, 0.46), "12.3±0.5");
        assert_eq!(fmt_ci(12.34, 0.0), "12.3");
    }
}
