//! The crash-safe result journal.
//!
//! Sweeps can die: the machine loses power, the process is OOM-killed,
//! the user hits `^C` mid-run. Without a journal the only artifact is the
//! report written *after* the last cell finishes, so a crash at 99%
//! forfeits every completed replicate. The journal fixes that with a
//! write-ahead log of finished work: as each replicate is finalized, the
//! collector appends one checksummed record to `<out>/sweep.journal`, and
//! `--resume` replays the journal on the next run, enqueuing only the
//! replicates that are missing. Because the engine is deterministic and
//! results are keyed by identity (never by schedule), a resumed sweep's
//! report is **byte-identical** to an uninterrupted run's at any
//! `--jobs` setting.
//!
//! # On-disk format (version 1)
//!
//! ```text
//! magic               8 bytes   b"MEHPTJ1\n"
//! record*             framed records, first is the header
//!
//! record := payload_len  u32 LE   (JSON payload size; sanity-capped)
//!           payload_crc  u32 LE   (CRC-32/IEEE of the payload bytes)
//!           payload      JSON, UTF-8
//! ```
//!
//! The header record pins `{format_version, schema_version,
//! model_revision}`. Every later record carries one finalized replicate:
//! `{id, replicate, fingerprint, result}`, where `result` is the
//! schema-v4 replicate object (attempt history included) minus
//! nondeterministic wall-clock time.
//!
//! # Recovery semantics
//!
//! The reader is paranoid so resume never has to be:
//!
//! - a missing file is an empty journal;
//! - a bad magic or header invalidates the whole file (`valid_len` 0 —
//!   the writer starts over);
//! - a record with an implausible length, a CRC mismatch, an unparsable
//!   payload, or a torn tail (fewer bytes than the frame promises) ends
//!   the scan *at the last good record*; everything before it is kept,
//!   and [`JournalWriter::resume`] truncates the tail before appending;
//! - duplicate `(id, replicate)` keys are last-wins, so a record
//!   re-written after a partial resume is harmless.
//!
//! Corruption therefore costs at most the work past the last good
//! record — never a panic, never the sweep.
//!
//! # Fingerprints
//!
//! A journal record is only evidence about the *configuration that
//! produced it*. Each record carries a [`fingerprint`] — a hash of the
//! journal format, report schema, simulator model revision, the cell's
//! full identity (id, seed, scale, memory, access cap) and the
//! failure-semantics knobs (timeout, retries, and the fault plan when
//! one is active). `--resume` discards records whose fingerprint does
//! not match the current invocation, so editing the sweep (or upgrading
//! the simulator) silently re-runs exactly the cells whose meaning
//! changed. Growing `--seeds` keeps existing replicates and runs only
//! the new ones.
//!
//! # Durability
//!
//! Appends are buffered through the OS and fsynced every
//! [`SYNC_BATCH`] records (and once at the end of the sweep), bounding
//! both the fsync overhead and the work a power loss can cost.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Duration;

use mehpt_sim::MODEL_REVISION;

use crate::engine::timeout_label;
use crate::grid::{cell_seed, CellSpec};
use crate::json::Json;
use crate::report::{RepResult, SCHEMA_VERSION};

/// Version of the on-disk journal framing described in the module docs.
pub const JOURNAL_FORMAT_VERSION: u64 = 1;

/// The 8-byte file magic.
pub const MAGIC: &[u8; 8] = b"MEHPTJ1\n";

/// Records between fsyncs (plus one final fsync when the sweep ends).
pub const SYNC_BATCH: usize = 16;

/// Upper bound on a single record payload. A real record is a few
/// kilobytes; anything claiming more is corruption, not data.
const MAX_PAYLOAD: u32 = 16 << 20;

/// CRC-32/IEEE lookup table (reflected polynomial 0xEDB88320), built at
/// compile time so the journal needs no external checksum crate.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                (c >> 1) ^ 0xEDB8_8320
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32/IEEE of `data` (the common `crc32` with check value
/// `0xCBF43926` for `b"123456789"`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

/// The configuration hash a record must match to be believed on resume.
///
/// Covers everything that changes what a "finished replicate" means:
/// journal format, report schema, simulator model revision, the cell's
/// identity and sizing, the watchdog deadline, the retry budget, and —
/// when fault injection is active — the fault spec together with the
/// seeds count (fault replicate selectors like `@half` depend on it).
/// Without a fault plan, seeds stay *out* of the hash so growing
/// `--seeds N` reuses every already-journaled replicate.
pub fn fingerprint(
    spec: &CellSpec,
    timeout: Option<Duration>,
    retries: u32,
    fault_spec: Option<&str>,
    seeds: u32,
) -> u64 {
    let timeout = match timeout {
        Some(t) => timeout_label(t),
        None => "none".to_string(),
    };
    let fault = match fault_spec {
        Some(f) => format!("fault={f}|seeds={seeds}"),
        None => "fault=none".to_string(),
    };
    let composed = format!(
        "journal-v{JOURNAL_FORMAT_VERSION}|schema-v{SCHEMA_VERSION}|model-r{MODEL_REVISION}|\
         {id}|seed={seed}|scale={scale}|mem={mem}|max={max}|timeout={timeout}|retries={retries}|{fault}",
        id = spec.id(),
        seed = spec.seed,
        scale = spec.scale,
        mem = spec.mem_bytes,
        max = match spec.max_accesses {
            Some(n) => n.to_string(),
            None => "none".to_string(),
        },
    );
    cell_seed(0x4a4f_5552_4e41_4c31, &composed)
}

/// One recovered replicate record.
#[derive(Clone, Debug)]
pub struct JournalRecord {
    /// The cell identity the replicate belongs to.
    pub id: String,
    /// Replicate index within the cell.
    pub replicate: u32,
    /// The [`fingerprint`] of the configuration that produced it.
    pub fingerprint: u64,
    /// The finalized replicate (journal round-trip: `wall_millis` is 0).
    pub result: RepResult,
}

/// What [`read`] salvaged from a journal file.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Every intact record, in file order (callers should apply
    /// last-wins on the `(id, replicate)` key).
    pub records: Vec<JournalRecord>,
    /// File offset just past the last intact record. 0 means the file
    /// (or its magic/header) is unusable and must be rewritten.
    pub valid_len: u64,
    /// True when trailing bytes past `valid_len` were torn or corrupt.
    pub truncated: bool,
}

/// Reads and validates a journal. Never fails on *content* — torn or
/// corrupt data just shortens `valid_len` — and a missing file is an
/// empty journal; only genuine I/O errors (permissions, hardware)
/// surface as `Err`.
pub fn read(path: &Path) -> io::Result<Recovered> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Recovered::default()),
        Err(e) => return Err(e),
    };
    let mut out = Recovered::default();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        out.truncated = !bytes.is_empty();
        return Ok(out);
    }
    let mut pos = MAGIC.len();
    let mut header_ok = false;
    loop {
        match next_payload(&bytes, pos) {
            None => break,
            Some((payload, end)) => {
                if !header_ok {
                    // The first record must be a believable header.
                    if payload.get("format_version").and_then(Json::as_u64)
                        != Some(JOURNAL_FORMAT_VERSION)
                    {
                        out.truncated = true;
                        return Ok(out);
                    }
                    header_ok = true;
                } else {
                    match parse_record(&payload) {
                        Some(rec) => out.records.push(rec),
                        None => break, // structurally valid frame, alien payload
                    }
                }
                pos = end;
            }
        }
    }
    out.valid_len = pos as u64;
    out.truncated = pos < bytes.len();
    Ok(out)
}

/// Decodes the frame at `pos`, returning the parsed payload and the
/// offset just past it — or `None` for a torn tail, an implausible
/// length, a CRC mismatch, or malformed JSON.
fn next_payload(bytes: &[u8], pos: usize) -> Option<(Json, usize)> {
    let frame = bytes.get(pos..pos + 8)?;
    let len = u32::from_le_bytes(frame[..4].try_into().unwrap());
    let crc = u32::from_le_bytes(frame[4..].try_into().unwrap());
    if len == 0 || len > MAX_PAYLOAD {
        return None;
    }
    let payload = bytes.get(pos + 8..pos + 8 + len as usize)?;
    if crc32(payload) != crc {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let json = Json::parse(text).ok()?;
    Some((json, pos + 8 + len as usize))
}

fn parse_record(payload: &Json) -> Option<JournalRecord> {
    let id = payload.get("id")?.as_str()?.to_string();
    let replicate = u32::try_from(payload.get("replicate")?.as_u64()?).ok()?;
    let fingerprint = payload.get("fingerprint")?.as_u64()?;
    let result = RepResult::from_journal_json(payload.get("result")?).ok()?;
    Some(JournalRecord {
        id,
        replicate,
        fingerprint,
        result,
    })
}

/// The append side of the journal.
pub struct JournalWriter {
    file: File,
    since_sync: usize,
}

impl JournalWriter {
    /// Creates (or truncates) `path` as a fresh journal: magic plus the
    /// header record, fsynced before any result is appended.
    pub fn create(path: &Path) -> io::Result<JournalWriter> {
        let mut file = File::create(path)?;
        file.write_all(MAGIC)?;
        let header = Json::obj(vec![
            ("format_version", Json::UInt(JOURNAL_FORMAT_VERSION)),
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("model_revision", Json::UInt(MODEL_REVISION as u64)),
        ]);
        write_frame(&mut file, &header)?;
        file.sync_all()?;
        Ok(JournalWriter {
            file,
            since_sync: 0,
        })
    }

    /// Reopens `path` for appending after [`read`] recovered
    /// `valid_len` bytes: the torn tail (if any) is truncated away
    /// first. A `valid_len` of 0 falls back to [`JournalWriter::create`].
    pub fn resume(path: &Path, valid_len: u64) -> io::Result<JournalWriter> {
        if valid_len == 0 {
            return JournalWriter::create(path);
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
        file.seek(SeekFrom::End(0))?;
        Ok(JournalWriter {
            file,
            since_sync: 0,
        })
    }

    /// Appends one finalized replicate, fsyncing every [`SYNC_BATCH`]
    /// appends.
    pub fn append(
        &mut self,
        id: &str,
        replicate: u32,
        fingerprint: u64,
        result: &RepResult,
    ) -> io::Result<()> {
        let payload = Json::obj(vec![
            ("id", Json::Str(id.to_string())),
            ("replicate", Json::UInt(replicate as u64)),
            ("fingerprint", Json::UInt(fingerprint)),
            ("result", result.to_journal_json()),
        ]);
        write_frame(&mut self.file, &payload)?;
        self.since_sync += 1;
        if self.since_sync >= SYNC_BATCH {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes pending appends to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.since_sync > 0 {
            self.file.sync_data()?;
            self.since_sync = 0;
        }
        Ok(())
    }
}

fn write_frame(file: &mut File, payload: &Json) -> io::Result<()> {
    let text = payload.render();
    let bytes = text.as_bytes();
    let len = u32::try_from(bytes.len()).expect("journal payloads are small");
    file.write_all(&len.to_le_bytes())?;
    file.write_all(&crc32(bytes).to_le_bytes())?;
    file.write_all(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{AttemptRecord, CellStatus};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mehpt-journal-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("sweep.journal")
    }

    fn rep(replicate: u32, seed: u64) -> RepResult {
        RepResult {
            replicate,
            seed,
            status: CellStatus::Failed,
            error: Some("injected".to_string()),
            metrics: None,
            wall_millis: 0,
            attempts: vec![
                AttemptRecord {
                    attempt: 0,
                    seed: seed ^ 1,
                    status: CellStatus::TimedOut,
                    error: Some("deadline".to_string()),
                },
                AttemptRecord {
                    attempt: 1,
                    seed,
                    status: CellStatus::Failed,
                    error: Some("injected".to_string()),
                },
            ],
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_records_through_the_file() {
        let path = temp_path("round-trip");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append("cell-a", 0, 77, &rep(0, 1001)).unwrap();
        w.append("cell-a", 1, 77, &rep(1, 1002)).unwrap();
        w.append("cell-b", 0, 78, &rep(0, 2001)).unwrap();
        w.sync().unwrap();

        let got = read(&path).unwrap();
        assert!(!got.truncated);
        assert_eq!(got.records.len(), 3);
        assert_eq!(got.valid_len, std::fs::metadata(&path).unwrap().len());
        let r = &got.records[1];
        assert_eq!(
            (r.id.as_str(), r.replicate, r.fingerprint),
            ("cell-a", 1, 77)
        );
        assert_eq!(r.result, rep(1, 1002));

        // Appending after resume keeps the earlier records intact.
        let mut w = JournalWriter::resume(&path, got.valid_len).unwrap();
        w.append("cell-b", 1, 78, &rep(1, 2002)).unwrap();
        w.sync().unwrap();
        let got = read(&path).unwrap();
        assert_eq!(got.records.len(), 4);
        assert!(!got.truncated);
    }

    #[test]
    fn a_torn_tail_is_dropped_and_truncated_on_resume() {
        let path = temp_path("torn-tail");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append("cell-a", 0, 1, &rep(0, 1)).unwrap();
        w.append("cell-a", 1, 1, &rep(1, 2)).unwrap();
        w.sync().unwrap();
        let full = std::fs::metadata(&path).unwrap().len();

        // Tear the file mid-record: the last record loses its tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let got = read(&path).unwrap();
        assert!(got.truncated);
        assert_eq!(got.records.len(), 1, "only the intact record survives");
        assert!(got.valid_len < full);

        // Resume truncates the tail and appends cleanly.
        let mut w = JournalWriter::resume(&path, got.valid_len).unwrap();
        w.append("cell-a", 1, 1, &rep(1, 2)).unwrap();
        w.sync().unwrap();
        let healed = read(&path).unwrap();
        assert!(!healed.truncated);
        assert_eq!(healed.records.len(), 2);
        assert_eq!(healed.records[1].result, rep(1, 2));
    }

    #[test]
    fn a_flipped_byte_invalidates_that_record_and_the_rest() {
        let path = temp_path("flipped-byte");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append("cell-a", 0, 1, &rep(0, 1)).unwrap();
        w.append("cell-a", 1, 1, &rep(1, 2)).unwrap();
        w.append("cell-a", 2, 1, &rep(2, 3)).unwrap();
        w.sync().unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2; // lands inside the 2nd or 3rd record
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let got = read(&path).unwrap();
        assert!(got.truncated);
        assert!(got.records.len() < 3, "the damaged record cannot survive");
        for r in &got.records {
            assert_eq!(r.id, "cell-a");
        }
    }

    #[test]
    fn bad_magic_or_header_invalidates_the_whole_file() {
        let path = temp_path("bad-magic");
        std::fs::write(&path, b"NOTAJRNL the rest does not matter").unwrap();
        let got = read(&path).unwrap();
        assert_eq!(got.valid_len, 0);
        assert!(got.truncated);
        assert!(got.records.is_empty());

        // valid_len 0 => resume starts the journal over.
        let mut w = JournalWriter::resume(&path, 0).unwrap();
        w.append("cell-a", 0, 9, &rep(0, 1)).unwrap();
        w.sync().unwrap();
        let healed = read(&path).unwrap();
        assert!(!healed.truncated);
        assert_eq!(healed.records.len(), 1);

        let missing = read(Path::new("/nonexistent/dir/sweep.journal")).unwrap();
        assert_eq!(missing.valid_len, 0);
        assert!(missing.records.is_empty());
        assert!(!missing.truncated);
    }

    #[test]
    fn fingerprints_separate_configurations_but_not_seed_growth() {
        use crate::grid::{ExperimentGrid, Tuning};
        use mehpt_sim::PtKind;
        use mehpt_workloads::App;
        let specs = ExperimentGrid::paper(vec![App::Gups], vec![PtKind::MeHpt], vec![false])
            .expand(&Tuning::quick());
        let spec = &specs[0];
        let base = fingerprint(spec, None, 0, None, 1);
        assert_eq!(
            base,
            fingerprint(spec, None, 0, None, 5),
            "without faults, growing --seeds must reuse journaled replicates"
        );
        assert_ne!(
            base,
            fingerprint(spec, Some(Duration::from_secs(2)), 0, None, 1)
        );
        assert_ne!(base, fingerprint(spec, None, 2, None, 1));
        assert_ne!(base, fingerprint(spec, None, 0, Some("panic:gups"), 1));
        assert_ne!(
            fingerprint(spec, None, 0, Some("panic:@half"), 2),
            fingerprint(spec, None, 0, Some("panic:@half"), 4),
            "fault selectors depend on the seeds count"
        );
        let mut other = spec.clone();
        other.seed ^= 1;
        assert_ne!(base, fingerprint(&other, None, 0, None, 1));
    }
}
