//! # mehpt-lab — parallel, deterministic experiment execution
//!
//! The lab turns the paper's evaluation (Tables I–II, Figures 7–16) into
//! declarative experiment grids and runs them on a work-stealing thread
//! pool with three guarantees:
//!
//! 1. **Determinism.** Every cell's randomness derives from its identity
//!    string and the base seed (replicate seeds from the cell seed and the
//!    replicate index), results are ordered by grid position, and
//!    wall-clock time never enters a report — `--jobs 1` and `--jobs 8`
//!    write byte-identical JSON and CSV, which `mehpt-lab diff` verifies.
//! 2. **Panic isolation.** Each replicate runs under `catch_unwind`; one
//!    crashing simulation marks that cell `failed` in the report while the
//!    rest of the sweep completes.
//! 3. **Bounded execution.** With a watchdog deadline (`--timeout`), a
//!    hung replicate is marked `timed_out` — recording the *configured*
//!    deadline, never wall-clock — its worker is abandoned and respawned,
//!    and the sweep completes. With `--retries N`, failed and timed-out
//!    replicates are deterministically re-run under identity-derived
//!    retry seeds, with the full attempt history in the report.
//!    Deterministic fault injection (`--fault`, [`fault::FaultPlan`])
//!    turns these isolation guarantees into testable assertions.
//! 4. **Crash safety.** Every sweep appends finished replicates to a
//!    checksummed, length-prefixed result [`journal`]; `--resume` replays
//!    it (verifying CRCs, truncating torn tails, discarding records whose
//!    configuration fingerprint no longer matches) and runs only the
//!    missing replicates — producing a report *byte-identical* to an
//!    uninterrupted run at any `--jobs` setting.
//! 5. **Structured output.** Per-replicate progress streams to stderr;
//!    rendered paper tables go to stdout; machine-readable `report.json`
//!    and `report.csv` (schema v4: per-cell replicate outcomes, attempt
//!    histories, failure records, mean/min/max/95% CI aggregates) land
//!    atomically (fsynced temp file + rename) under `target/lab/<preset>/`.
//!
//! Everything is std-only: the workspace builds with no crates-io
//! dependencies (JSON — writer *and* parser — is hand-rolled in [`json`]).
//!
//! ```no_run
//! use mehpt_lab::engine::{run_cells, RunOptions};
//! use mehpt_lab::grid::Tuning;
//! use mehpt_lab::presets::Preset;
//! use mehpt_lab::report::LabReport;
//!
//! let specs = Preset::Fig16.grid().expand(&Tuning::quick());
//! let cells = run_cells(&specs, &RunOptions::default(), &|p| {
//!     eprintln!("[{}/{}] {}", p.done, p.total, p.id);
//! });
//! let report = LabReport {
//!     preset: "fig16".into(),
//!     scale: 0.005,
//!     base_seed: 0x5eed,
//!     seeds: 1,
//!     retries: 0,
//!     timeout_secs: None,
//!     fault: None,
//!     cells,
//! };
//! print!("{}", Preset::Fig16.render(&report));
//! ```

pub mod cli;
pub mod diff;
pub mod engine;
pub mod fault;
pub mod fmt;
pub mod grid;
pub mod journal;
pub mod json;
pub mod presets;
pub mod report;
pub mod stats;

pub use diff::{DiffOptions, DiffReport};
pub use engine::{
    run_cells, run_cells_injected, run_cells_persisted, run_cells_with, Progress, RunOptions,
};
pub use fault::{FaultKind, FaultPlan};
pub use grid::{CellSpec, ExperimentGrid, FmfiAxis, Tuning, Variant};
pub use journal::{JournalRecord, JournalWriter, Recovered, JOURNAL_FORMAT_VERSION};
pub use presets::{Preset, PRESETS};
pub use report::{
    AttemptRecord, CellMetrics, CellResult, CellStatus, LabReport, RepResult, StatusCounts,
    SCHEMA_VERSION,
};
pub use stats::{CellStats, MetricStats};
