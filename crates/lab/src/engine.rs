//! The parallel cell-execution engine.
//!
//! Cells are fully self-contained (each builds its own physical memory,
//! TLBs and workload from its [`CellSpec`]), so the engine can hand them to
//! any number of worker threads and still produce the *same* results: the
//! output vector is ordered by cell index, every cell's randomness derives
//! from its identity, and wall-clock time never enters the serialized
//! report. Workers claim work units off a shared counter (work stealing in
//! its simplest form: an idle worker takes the next unclaimed unit, so long
//! cells never serialize the queue behind them), and every unit body runs
//! under [`std::panic::catch_unwind`] — a panicking simulation marks that
//! one replicate [`CellStatus::Failed`] instead of killing the sweep.
//!
//! With `seeds > 1` in [`RunOptions`], each cell fans out into that many
//! replicate units (identity-derived seeds via
//! [`CellSpec::replicate_seed`]), scheduled independently across the pool;
//! the per-cell replicates are then folded into one [`CellResult`] whose
//! order-invariant aggregation keeps reports byte-identical for every
//! `--jobs` value.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use mehpt_sim::{SimReport, Simulator};

use crate::grid::CellSpec;
use crate::report::{CellMetrics, CellResult, CellStatus, RepResult};

/// Name prefix of the engine's worker threads. The CLI's panic hook uses
/// it to mute the default "thread panicked" noise for isolated cells.
pub const WORKER_THREAD_PREFIX: &str = "mehpt-lab-worker";

/// A progress event, streamed to the caller as cells complete.
///
/// Events arrive in *completion* order, which depends on scheduling; only
/// the human-facing progress stream sees them, never the report.
#[derive(Clone, Debug)]
pub struct Progress {
    /// Work units (cell replicates) finished so far (including this one).
    pub done: usize,
    /// Total work units in the sweep (`cells × seeds`).
    pub total: usize,
    /// The finished cell's identity (suffixed `#rN` for replicates > 0).
    pub id: String,
    /// The finished replicate's status.
    pub status: CellStatus,
    /// Wall-clock milliseconds the replicate took.
    pub wall_millis: u64,
}

/// Engine options.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Worker threads. `0` means [`std::thread::available_parallelism`].
    pub jobs: usize,
    /// Replicates per cell (each under its identity-derived seed).
    /// `0` is normalized to 1.
    pub seeds: u32,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions { jobs: 0, seeds: 1 }
    }
}

impl RunOptions {
    /// Options for `jobs` workers at the default single replicate.
    pub fn with_jobs(jobs: usize) -> RunOptions {
        RunOptions {
            jobs,
            ..RunOptions::default()
        }
    }

    fn effective_jobs(&self, units: usize) -> usize {
        let jobs = if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.jobs
        };
        jobs.clamp(1, units.max(1))
    }

    fn effective_seeds(&self) -> u32 {
        self.seeds.max(1)
    }
}

/// Runs one cell on the real simulator.
pub fn simulate_cell(spec: &CellSpec) -> SimReport {
    Simulator::run(spec.workload(), spec.sim_config())
}

/// Runs every cell on a pool of `opts.jobs` workers using the real
/// simulator. See [`run_cells_with`].
pub fn run_cells(
    specs: &[CellSpec],
    opts: &RunOptions,
    progress: &(dyn Fn(Progress) + Sync),
) -> Vec<CellResult> {
    run_cells_with(specs, opts, simulate_cell, progress)
}

/// Runs every cell (× `opts.seeds` replicates) on a pool of `opts.jobs`
/// workers with a caller-supplied cell body, and returns results in spec
/// order.
///
/// The body runs under `catch_unwind`: a panic fails that replicate
/// (status [`CellStatus::Failed`], the panic message as `error`) and the
/// sweep continues. A completed simulation whose report says `aborted`
/// maps to [`CellStatus::Aborted`] with metrics preserved — that is a
/// *modeled* outcome (the paper's ECPT runs dying above 0.7 FMFI), not a
/// harness failure. Replicates of one cell are independent work units;
/// their outcomes fold into the cell's [`CellResult`] with order-invariant
/// mean/min/max/CI aggregation.
pub fn run_cells_with<F>(
    specs: &[CellSpec],
    opts: &RunOptions,
    runner: F,
    progress: &(dyn Fn(Progress) + Sync),
) -> Vec<CellResult>
where
    F: Fn(&CellSpec) -> SimReport + Sync,
{
    let seeds = opts.effective_seeds() as usize;
    let units = specs.len() * seeds;
    let jobs = opts.effective_jobs(units);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, RepResult)>();
    let runner = &runner;
    let next = &next;

    let mut slots: Vec<Vec<Option<RepResult>>> =
        (0..specs.len()).map(|_| vec![None; seeds]).collect();
    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let tx = tx.clone();
            std::thread::Builder::new()
                .name(format!("{WORKER_THREAD_PREFIX}-{worker}"))
                .spawn_scoped(scope, move || loop {
                    let u = next.fetch_add(1, Ordering::Relaxed);
                    if u >= units {
                        break;
                    }
                    let (cell, rep) = (u / seeds, (u % seeds) as u32);
                    let result = execute(&specs[cell].replicate(rep), rep, runner);
                    if tx.send((cell, result)).is_err() {
                        break;
                    }
                })
                .expect("spawn lab worker");
        }
        drop(tx);
        let mut done = 0;
        while let Ok((cell, result)) = rx.recv() {
            done += 1;
            let id = if result.replicate == 0 {
                specs[cell].id()
            } else {
                format!("{}#r{}", specs[cell].id(), result.replicate)
            };
            progress(Progress {
                done,
                total: units,
                id,
                status: result.status,
                wall_millis: result.wall_millis,
            });
            let rep = result.replicate as usize;
            slots[cell][rep] = Some(result);
        }
    });
    specs
        .iter()
        .zip(slots)
        .map(|(spec, reps)| {
            let reps = reps
                .into_iter()
                .map(|r| r.expect("every replicate produces a result"))
                .collect();
            CellResult::from_replicates(spec.clone(), reps)
        })
        .collect()
}

fn execute<F>(spec: &CellSpec, replicate: u32, runner: &F) -> RepResult
where
    F: Fn(&CellSpec) -> SimReport + Sync,
{
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| runner(spec)));
    let wall_millis = start.elapsed().as_millis() as u64;
    match outcome {
        Ok(report) => {
            let status = if report.aborted.is_some() {
                CellStatus::Aborted
            } else {
                CellStatus::Ok
            };
            RepResult {
                replicate,
                seed: spec.seed,
                status,
                error: report.aborted.clone(),
                metrics: Some(CellMetrics::from(&report)),
                wall_millis,
            }
        }
        Err(panic) => RepResult {
            replicate,
            seed: spec.seed,
            status: CellStatus::Failed,
            error: Some(panic_message(panic.as_ref())),
            metrics: None,
            wall_millis,
        },
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{ExperimentGrid, Tuning};
    use mehpt_sim::PtKind;
    use mehpt_types::rng::Xoshiro256;
    use mehpt_workloads::App;

    /// A cheap, deterministic stand-in for the simulator: metrics are a
    /// pure function of the cell seed.
    fn fake_sim(spec: &CellSpec) -> SimReport {
        let mut rng = Xoshiro256::seed_from_u64(spec.seed);
        let cycles = 1_000 + rng.next_below(1_000_000);
        SimReport {
            app: spec.app.name().to_string(),
            kind: spec.kind,
            thp: spec.thp,
            accesses: 100 + rng.next_below(100),
            total_cycles: cycles,
            base_cycles: 0,
            translation_cycles: 0,
            fault_cycles: 0,
            alloc_cycles: 0,
            os_pt_cycles: 0,
            faults: 0,
            pages_4k: 0,
            pages_2m: 0,
            tlb_miss_rate: 0.0,
            walks: 0,
            mean_walk_accesses: 0.0,
            mean_walk_cycles: 0.0,
            pt_final_bytes: 0,
            pt_peak_bytes: 0,
            pt_max_contiguous: 0,
            way_sizes_4k: vec![],
            way_phys_4k: vec![],
            upsizes_per_way_4k: vec![],
            upsizes_per_way_2m: vec![],
            moved_fraction_4k: 0.0,
            kicks_histogram: vec![],
            l2p_entries_used: 0,
            chunk_switches: 0,
            data_bytes_nominal: 0,
            aborted: None,
        }
    }

    fn specs() -> Vec<CellSpec> {
        ExperimentGrid::paper(
            App::all().to_vec(),
            vec![PtKind::Radix, PtKind::Ecpt, PtKind::MeHpt],
            vec![false, true],
        )
        .expand(&Tuning::quick())
    }

    #[test]
    fn parallel_and_serial_runs_are_identical() {
        let specs = specs();
        let serial = run_cells_with(&specs, &RunOptions::with_jobs(1), fake_sim, &|_| {});
        let parallel = run_cells_with(&specs, &RunOptions::with_jobs(8), fake_sim, &|_| {});
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.status, b.status);
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn a_panicking_cell_fails_alone() {
        let specs = specs();
        let bomb = |spec: &CellSpec| -> SimReport {
            if spec.app == App::Gups && spec.thp {
                panic!("injected failure in {}", spec.id());
            }
            fake_sim(spec)
        };
        let results = run_cells_with(&specs, &RunOptions::with_jobs(4), bomb, &|_| {});
        let failed: Vec<_> = results
            .iter()
            .filter(|r| r.status == CellStatus::Failed)
            .collect();
        assert_eq!(failed.len(), 3, "gups×thp exists once per kind");
        for f in &failed {
            assert!(f.error.as_deref().unwrap().contains("injected failure"));
            assert!(f.metrics.is_none());
        }
        let ok = results
            .iter()
            .filter(|r| r.status == CellStatus::Ok)
            .count();
        assert_eq!(ok, results.len() - 3, "every other cell completes");
    }

    #[test]
    fn progress_reports_every_cell_exactly_once() {
        use std::sync::Mutex;
        let specs = specs();
        let seen = Mutex::new(Vec::new());
        run_cells_with(&specs, &RunOptions::with_jobs(3), fake_sim, &|p| {
            seen.lock().unwrap().push((p.done, p.id));
        });
        let mut seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), specs.len());
        seen.sort();
        assert_eq!(seen.last().unwrap().0, specs.len());
        let mut ids: Vec<String> = seen.into_iter().map(|(_, id)| id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), specs.len());
    }

    #[test]
    fn replicated_runs_aggregate_and_stay_deterministic_across_jobs() {
        let specs = specs();
        let opts = |jobs| RunOptions { jobs, seeds: 3 };
        let serial = run_cells_with(&specs, &opts(1), fake_sim, &|_| {});
        let parallel = run_cells_with(&specs, &opts(7), fake_sim, &|_| {});
        assert_eq!(serial.len(), specs.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.stats, b.stats, "aggregation must not depend on --jobs");
            assert_eq!(a.metrics, b.metrics);
        }
        let cell = &serial[0];
        assert_eq!(cell.replicates.len(), 3);
        // fake_sim is a pure function of the seed, and replicate seeds
        // differ, so the replicates measure different cycle counts.
        let cycles: std::collections::HashSet<u64> = cell
            .replicates
            .iter()
            .map(|r| r.metrics.as_ref().unwrap().total_cycles)
            .collect();
        assert_eq!(cycles.len(), 3);
        let st = cell.stats.as_ref().unwrap();
        assert_eq!(st.replicates, 3);
        let cyc = st.field("total_cycles").unwrap();
        assert!(cyc.min < cyc.mean && cyc.mean < cyc.max);
        assert!(cyc.ci95 > 0.0);
        // Replicate 0 of a seeds=3 run is the whole seeds=1 run.
        let single = run_cells_with(&specs, &RunOptions::with_jobs(2), fake_sim, &|_| {});
        assert_eq!(single[0].metrics, serial[0].metrics);
    }

    #[test]
    fn replicated_progress_counts_units() {
        use std::sync::Mutex;
        let specs = specs();
        let seen = Mutex::new(Vec::new());
        run_cells_with(&specs, &RunOptions { jobs: 4, seeds: 2 }, fake_sim, &|p| {
            seen.lock().unwrap().push((p.total, p.id));
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 2 * specs.len());
        assert!(seen.iter().all(|(t, _)| *t == 2 * specs.len()));
        assert_eq!(
            seen.iter().filter(|(_, id)| id.ends_with("#r1")).count(),
            specs.len()
        );
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        let opts = RunOptions::with_jobs(0);
        assert!(opts.effective_jobs(1000) >= 1);
        assert_eq!(opts.effective_jobs(0), 1);
        assert_eq!(RunOptions::with_jobs(64).effective_jobs(4), 4);
    }

    #[test]
    fn one_real_simulation_cell_runs_end_to_end() {
        let grid = ExperimentGrid::paper(vec![App::Mummer], vec![PtKind::MeHpt], vec![false]);
        let mut tuning = Tuning::quick();
        tuning.scale = 0.002;
        let specs = grid.expand(&tuning);
        let results = run_cells(&specs, &RunOptions::with_jobs(1), &|_| {});
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].status, CellStatus::Ok);
        let m = results[0].metrics.as_ref().unwrap();
        assert!(m.accesses > 0);
        assert!(m.total_cycles > m.accesses);
    }
}
