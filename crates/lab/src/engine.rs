//! The parallel cell-execution engine.
//!
//! Cells are fully self-contained (each builds its own physical memory,
//! TLBs and workload from its [`CellSpec`]), so the engine can hand them to
//! any number of worker threads and still produce the *same* results: the
//! output vector is ordered by cell index, every cell's randomness derives
//! from its identity, and wall-clock time never enters the serialized
//! report. Workers claim work units off a shared counter (work stealing in
//! its simplest form: an idle worker takes the next unclaimed unit, so long
//! cells never serialize the queue behind them), and every unit body runs
//! under [`std::panic::catch_unwind`] — a panicking simulation marks that
//! one replicate [`CellStatus::Failed`] instead of killing the sweep.
//!
//! With `seeds > 1` in [`RunOptions`], each cell fans out into that many
//! replicate units (identity-derived seeds via
//! [`CellSpec::replicate_seed`]), scheduled independently across the pool;
//! the per-cell replicates are then folded into one [`CellResult`] whose
//! order-invariant aggregation keeps reports byte-identical for every
//! `--jobs` value.
//!
//! # The watchdog
//!
//! Panics are not the only way a simulation can go wrong: a pathological
//! configuration (say, an ECPT resize loop under extreme fragmentation)
//! can simply never finish. With [`RunOptions::timeout`] set, every work
//! unit registers its start with the collector, which doubles as a
//! monitor: a unit that exceeds the deadline is marked
//! [`CellStatus::TimedOut`] — recorded deterministically as status plus
//! the *configured* deadline, never measured wall-clock — its worker is
//! abandoned (the thread is detached and leaks; a truly hung body cannot
//! be cancelled from outside), and a replacement worker is spawned so the
//! rest of the sweep completes at full parallelism. A late result from an
//! abandoned worker is discarded, so the timed-out record sticks and
//! reports stay byte-identical across `--jobs` settings. Abandonments are
//! tallied in the report (`summary.workers_abandoned`) from the records
//! themselves, so the count is equally deterministic.
//!
//! Workers are therefore *detached* threads (not scoped): the runner and
//! the specs are shared through an [`Arc`], which is what allows the
//! collector to give up on a worker without joining it.
//!
//! # Deterministic retry
//!
//! With [`RunOptions::retries`] > 0, a replicate whose attempt ends
//! `failed` or `timed_out` is re-run up to that many times under
//! identity-derived retry seeds ([`CellSpec::retry_seed`]; attempt 0 is
//! the classic replicate seed). The *collector* owns every retry
//! decision: workers run exactly one attempt per dispatch, so the
//! per-replicate attempt history ([`AttemptRecord`]) — recorded in the
//! schema-v4 report — is a pure function of the attempt outcomes, never
//! of scheduling. Modeled aborts are outcomes, not failures: they are
//! never retried.
//!
//! # Fault injection
//!
//! [`run_cells_injected`] consults an optional [`FaultPlan`] before every
//! unit and makes targeted units panic, hang or return poisoned metrics —
//! deterministically, keyed to the cell identity and an identity-derived
//! replicate — which is how the isolation guarantees above are tested
//! rather than merely claimed. Plans interact with retry: a plain rule is
//! a transient fault (attempt 0 only), a `kind*` rule a persistent one
//! that exhausts the retry budget. See [`crate::fault`].
//!
//! # Crash-safe resume
//!
//! [`run_cells_persisted`] is the journal-aware entry point: replicates
//! already present in `preloaded` (replayed from a
//! [`crate::journal`] result journal) are installed without running
//! anything, and every freshly finalized replicate is handed to the
//! `on_fresh` callback — on the collector thread, in completion order —
//! so the caller can append it to the journal before the sweep moves on.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mehpt_sim::{SimReport, Simulator};

use crate::fault::{self, FaultKind, FaultPlan};
use crate::grid::CellSpec;
use crate::report::{AttemptRecord, CellMetrics, CellResult, CellStatus, RepResult};

/// Name prefix of the engine's worker threads. The CLI's panic hook uses
/// it to mute the default "thread panicked" noise for isolated cells.
pub const WORKER_THREAD_PREFIX: &str = "mehpt-lab-worker";

/// How often the monitor re-checks deadlines when no unit is near expiry
/// (also the poll interval before the first unit starts).
const MONITOR_POLL: Duration = Duration::from_millis(25);

/// A progress event, streamed to the caller as cells complete.
///
/// Events arrive in *completion* order, which depends on scheduling; only
/// the human-facing progress stream sees them, never the report.
#[derive(Clone, Debug)]
pub struct Progress {
    /// Work units (cell replicates) finished so far (including this one
    /// and any replicates preloaded from a journal).
    pub done: usize,
    /// Total work units in the sweep (`cells × seeds`).
    pub total: usize,
    /// The finished cell's identity (suffixed `#rN` for replicates > 0).
    pub id: String,
    /// The finished replicate's status ([`CellStatus::TimedOut`] when the
    /// watchdog abandoned it).
    pub status: CellStatus,
    /// Wall-clock milliseconds the replicate took across its attempts
    /// (the configured deadline for timed-out ones).
    pub wall_millis: u64,
}

/// Engine options.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Worker threads. `0` means [`std::thread::available_parallelism`].
    pub jobs: usize,
    /// Replicates per cell (each under its identity-derived seed).
    /// `0` is normalized to 1.
    pub seeds: u32,
    /// Retry budget per replicate: a `failed`/`timed_out` attempt is
    /// re-run up to this many times under identity-derived retry seeds.
    /// `0` (the default) keeps the classic single-attempt behavior.
    pub retries: u32,
    /// Per-unit watchdog deadline. `None` (the default) disables the
    /// watchdog: a hung cell stalls the sweep, exactly as before.
    pub timeout: Option<Duration>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            jobs: 0,
            seeds: 1,
            retries: 0,
            timeout: None,
        }
    }
}

impl RunOptions {
    /// Options for `jobs` workers at the default single replicate.
    pub fn with_jobs(jobs: usize) -> RunOptions {
        RunOptions {
            jobs,
            ..RunOptions::default()
        }
    }

    fn effective_jobs(&self, units: usize) -> usize {
        let jobs = if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.jobs
        };
        jobs.clamp(1, units.max(1))
    }

    fn effective_seeds(&self) -> u32 {
        self.seeds.max(1)
    }
}

/// Renders a deadline the way reports and error messages print it: the
/// shortest exact decimal of the configured seconds (`2`, `0.5`). A pure
/// function of the configuration, never of measured time.
pub fn timeout_label(timeout: Duration) -> String {
    format!("{}", timeout.as_secs_f64())
}

/// Runs one cell on the real simulator.
pub fn simulate_cell(spec: &CellSpec) -> SimReport {
    Simulator::run(spec.workload(), spec.sim_config())
}

/// Runs every cell on a pool of `opts.jobs` workers using the real
/// simulator. See [`run_cells_with`].
pub fn run_cells(
    specs: &[CellSpec],
    opts: &RunOptions,
    progress: &(dyn Fn(Progress) + Sync),
) -> Vec<CellResult> {
    run_cells_with(specs, opts, simulate_cell, progress)
}

/// Runs every cell (× `opts.seeds` replicates) on a pool of `opts.jobs`
/// workers with a caller-supplied cell body, and returns results in spec
/// order. Equivalent to [`run_cells_injected`] with no fault plan.
pub fn run_cells_with<F>(
    specs: &[CellSpec],
    opts: &RunOptions,
    runner: F,
    progress: &(dyn Fn(Progress) + Sync),
) -> Vec<CellResult>
where
    F: Fn(&CellSpec) -> SimReport + Send + Sync + 'static,
{
    run_cells_injected(specs, opts, None, runner, progress)
}

/// Per-unit scheduling state shared between the collector/monitor and the
/// workers.
#[derive(Clone, Copy, Default)]
struct UnitState {
    /// Start instant and attempt index of the currently running attempt
    /// (`None` = not started, finished, or abandoned).
    running: Option<(Instant, u32)>,
    /// Finalized (or preloaded from a journal): workers skip this unit.
    done: bool,
}

/// Shared state between the collector/monitor and the detached workers.
struct Shared<F> {
    specs: Vec<CellSpec>,
    seeds: usize,
    units: usize,
    next: AtomicUsize,
    runner: F,
    fault: Option<FaultPlan>,
    /// Retry attempts awaiting a worker, as `(unit, attempt)`. Workers
    /// drain this before claiming fresh units off the counter.
    pending_retries: Mutex<Vec<(usize, u32)>>,
    /// Per-unit scheduling state (index = unit).
    state: Mutex<Vec<UnitState>>,
}

/// Runs every cell (× replicates) with an optional [`FaultPlan`] injected
/// between the engine and the cell body.
///
/// The body runs under `catch_unwind`: a panic fails that replicate
/// (status [`CellStatus::Failed`], the panic message as `error`) and the
/// sweep continues. A completed simulation whose report says `aborted`
/// maps to [`CellStatus::Aborted`] with metrics preserved — that is a
/// *modeled* outcome (the paper's ECPT runs dying above 0.7 FMFI), not a
/// harness failure. With [`RunOptions::timeout`] set, a unit that exceeds
/// the deadline is marked [`CellStatus::TimedOut`], its worker abandoned
/// and replaced (see the module docs); with [`RunOptions::retries`] set,
/// failed/timed-out attempts are deterministically re-run. Replicates of
/// one cell are independent work units; their outcomes fold into the
/// cell's [`CellResult`] with order-invariant mean/min/max/CI aggregation.
pub fn run_cells_injected<F>(
    specs: &[CellSpec],
    opts: &RunOptions,
    fault: Option<&FaultPlan>,
    runner: F,
    progress: &(dyn Fn(Progress) + Sync),
) -> Vec<CellResult>
where
    F: Fn(&CellSpec) -> SimReport + Send + Sync + 'static,
{
    run_cells_persisted(
        specs,
        opts,
        fault,
        runner,
        progress,
        &HashMap::new(),
        &mut |_, _| {},
    )
}

/// [`run_cells_injected`] plus the journal hooks: `preloaded` replicates
/// (keyed by `(cell id, replicate index)`) are installed without running
/// anything, and every *freshly* finalized replicate is passed to
/// `on_fresh` (on the collector thread, in completion order) so the
/// caller can journal it before the sweep moves on. With an empty
/// `preloaded` map and a no-op `on_fresh` this is exactly
/// [`run_cells_injected`] — and because preloaded results came from the
/// same deterministic engine, a resumed sweep's [`CellResult`]s are
/// identical to an uninterrupted run's.
pub fn run_cells_persisted<F>(
    specs: &[CellSpec],
    opts: &RunOptions,
    fault: Option<&FaultPlan>,
    runner: F,
    progress: &(dyn Fn(Progress) + Sync),
    preloaded: &HashMap<(String, u32), RepResult>,
    on_fresh: &mut dyn FnMut(&CellSpec, &RepResult),
) -> Vec<CellResult>
where
    F: Fn(&CellSpec) -> SimReport + Send + Sync + 'static,
{
    let seeds = opts.effective_seeds() as usize;
    let retries = opts.retries;
    let units = specs.len() * seeds;
    let jobs = opts.effective_jobs(units);

    let mut slots: Vec<Vec<Option<RepResult>>> =
        (0..specs.len()).map(|_| vec![None; seeds]).collect();
    let mut state = vec![UnitState::default(); units];
    let mut filled = 0usize;
    if !preloaded.is_empty() {
        for (ci, spec) in specs.iter().enumerate() {
            let id = spec.id();
            for r in 0..seeds {
                if let Some(rep) = preloaded.get(&(id.clone(), r as u32)) {
                    slots[ci][r] = Some(rep.clone());
                    state[ci * seeds + r].done = true;
                    filled += 1;
                }
            }
        }
    }

    let shared = Arc::new(Shared {
        specs: specs.to_vec(),
        seeds,
        units,
        next: AtomicUsize::new(0),
        runner,
        fault: fault.cloned(),
        pending_retries: Mutex::new(Vec::new()),
        state: Mutex::new(state),
    });

    // The collector keeps its own sender alive so the channel never
    // disconnects while replacement workers may still be spawned.
    let (tx, rx) = mpsc::channel::<(usize, u32, RepResult)>();
    let mut spawned = 0usize;
    let mut spawn_worker = |shared: &Arc<Shared<F>>, tx: &mpsc::Sender<(usize, u32, RepResult)>| {
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        std::thread::Builder::new()
            .name(format!("{WORKER_THREAD_PREFIX}-{spawned}"))
            .spawn(move || worker(&shared, &tx))
            .expect("spawn lab worker");
        spawned += 1;
    };
    if filled < units {
        for _ in 0..jobs.min(units) {
            spawn_worker(&shared, &tx);
        }
    }

    // Collector-private retry bookkeeping: the attempt index the unit is
    // currently on (anything else is a stale message from an abandoned
    // worker), the attempt history, and the accumulated wall time.
    let mut expected: Vec<u32> = vec![0; units];
    let mut history: Vec<Vec<AttemptRecord>> = vec![Vec::new(); units];
    let mut wall: Vec<u64> = vec![0; units];

    while filled < units {
        let received = match opts.timeout {
            None => rx.recv().ok(),
            Some(timeout) => {
                let wait = next_expiry(&shared, timeout).unwrap_or(MONITOR_POLL);
                match rx.recv_timeout(wait.clamp(Duration::from_millis(1), MONITOR_POLL.max(wait)))
                {
                    Ok(r) => Some(r),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        unreachable!("collector holds a sender")
                    }
                }
            }
        };
        // (unit, attempt, result, worker abandoned by the watchdog).
        let mut finished: Vec<(usize, u32, RepResult, bool)> = Vec::new();
        match received {
            Some((u, attempt, result)) => finished.push((u, attempt, result, false)),
            None => {
                // Monitor tick: abandon every unit past its deadline.
                let timeout = opts.timeout.expect("ticks only happen with a deadline");
                for (u, attempt) in expired_units(&shared, timeout) {
                    let (cell, rep) = (u / seeds, (u % seeds) as u32);
                    let result = timed_out(&shared.specs[cell], rep, attempt, timeout);
                    finished.push((u, attempt, result, true));
                }
            }
        }
        for (u, attempt, result, abandoned) in finished {
            let (cell, rep) = (u / seeds, (u % seeds) as u32);
            if slots[cell][rep as usize].is_some() || attempt != expected[u] {
                // A late or stale result from an abandoned worker: the
                // record on file stands; keep reports deterministic.
                continue;
            }
            wall[u] += result.wall_millis;
            history[u].push(AttemptRecord {
                attempt,
                seed: result.seed,
                status: result.status,
                error: result.error.clone(),
            });
            if result.status.is_failure() && attempt < retries {
                // Deterministic retry: the next attempt's seed derives
                // from the replicate identity and the attempt index, so
                // the history is independent of scheduling. The fresh
                // worker both replaces any abandoned thread and keeps the
                // pool full if the queue already drained.
                expected[u] = attempt + 1;
                shared
                    .pending_retries
                    .lock()
                    .unwrap()
                    .push((u, attempt + 1));
                spawn_worker(&shared, &tx);
                continue;
            }
            if abandoned {
                // No retry follows: respawn a worker for the abandoned
                // slot so the rest of the sweep keeps full parallelism.
                spawn_worker(&shared, &tx);
            }
            let final_rep = RepResult {
                replicate: rep,
                seed: result.seed,
                status: result.status,
                error: result.error,
                metrics: result.metrics,
                wall_millis: wall[u],
                attempts: std::mem::take(&mut history[u]),
            };
            shared.state.lock().unwrap()[u].done = true;
            filled += 1;
            let id = if rep == 0 {
                specs[cell].id()
            } else {
                format!("{}#r{}", specs[cell].id(), rep)
            };
            progress(Progress {
                done: filled,
                total: units,
                id,
                status: final_rep.status,
                wall_millis: final_rep.wall_millis,
            });
            on_fresh(&specs[cell], &final_rep);
            slots[cell][rep as usize] = Some(final_rep);
        }
    }

    specs
        .iter()
        .zip(slots)
        .map(|(spec, reps)| {
            let reps = reps
                .into_iter()
                .map(|r| r.expect("every replicate produces a result"))
                .collect();
            CellResult::from_replicates(spec.clone(), reps)
        })
        .collect()
}

/// The detached worker loop: take a pending retry or claim a fresh unit,
/// register its start, run one attempt, deliver the result. Exits when
/// the queue drains or the collector went away (a late send after
/// abandonment fails harmlessly).
fn worker<F>(shared: &Shared<F>, tx: &mpsc::Sender<(usize, u32, RepResult)>)
where
    F: Fn(&CellSpec) -> SimReport + Send + Sync,
{
    loop {
        let (u, attempt) = match shared.pending_retries.lock().unwrap().pop() {
            Some(job) => job,
            None => {
                let u = shared.next.fetch_add(1, Ordering::Relaxed);
                if u >= shared.units {
                    break;
                }
                (u, 0)
            }
        };
        let (cell, rep) = (u / shared.seeds, (u % shared.seeds) as u32);
        {
            let mut state = shared.state.lock().unwrap();
            if state[u].done {
                // Preloaded from a journal: nothing to run.
                continue;
            }
            state[u].running = Some((Instant::now(), attempt));
        }
        let spec = shared.specs[cell].replicate_attempt(rep, attempt);
        let kind = shared
            .fault
            .as_ref()
            .and_then(|p| p.fault_for(&spec.id(), rep, shared.seeds as u32, attempt));
        let result = execute(&spec, rep, &shared.runner, kind);
        {
            // Clear only our own registration: a newer attempt of this
            // unit may already be running under its own deadline.
            let mut state = shared.state.lock().unwrap();
            if matches!(state[u].running, Some((_, a)) if a == attempt) {
                state[u].running = None;
            }
        }
        if tx.send((u, attempt, result)).is_err() {
            break;
        }
    }
}

/// Time until the soonest deadline among running units (`None` when no
/// unit is currently running).
fn next_expiry<F>(shared: &Shared<F>, timeout: Duration) -> Option<Duration> {
    let state = shared.state.lock().unwrap();
    let now = Instant::now();
    state
        .iter()
        .filter_map(|s| s.running)
        .map(|(start, _)| (start + timeout).saturating_duration_since(now))
        .min()
}

/// Drains and returns every `(unit, attempt)` past its deadline, clearing
/// its start entry so it fires exactly once.
fn expired_units<F>(shared: &Shared<F>, timeout: Duration) -> Vec<(usize, u32)> {
    let mut state = shared.state.lock().unwrap();
    let now = Instant::now();
    let mut expired = Vec::new();
    for (u, slot) in state.iter_mut().enumerate() {
        if let Some((start, attempt)) = slot.running {
            if now.saturating_duration_since(start) >= timeout {
                slot.running = None;
                expired.push((u, attempt));
            }
        }
    }
    expired
}

/// The deterministic record of a unit the watchdog abandoned: status plus
/// the *configured* deadline. Measured wall-clock never appears, so the
/// serialized report is identical for every `--jobs` value.
fn timed_out(spec: &CellSpec, replicate: u32, attempt: u32, timeout: Duration) -> RepResult {
    RepResult {
        replicate,
        seed: spec.retry_seed(replicate, attempt),
        status: CellStatus::TimedOut,
        error: Some(format!(
            "replicate exceeded the {}s deadline; worker abandoned",
            timeout_label(timeout)
        )),
        metrics: None,
        wall_millis: timeout.as_millis() as u64,
        attempts: vec![],
    }
}

fn execute<F>(spec: &CellSpec, replicate: u32, runner: &F, injected: Option<FaultKind>) -> RepResult
where
    F: Fn(&CellSpec) -> SimReport,
{
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| match injected {
        Some(FaultKind::Panic) => panic!(
            "injected fault: panic in {} replicate {replicate}",
            spec.id()
        ),
        Some(FaultKind::Hang) => fault::hang(),
        Some(FaultKind::Poison) => fault::poisoned_report(spec),
        None => runner(spec),
    }));
    let wall_millis = start.elapsed().as_millis() as u64;
    match outcome {
        Ok(report) => {
            let status = if report.aborted.is_some() {
                CellStatus::Aborted
            } else {
                CellStatus::Ok
            };
            RepResult {
                replicate,
                seed: spec.seed,
                status,
                error: report.aborted.clone(),
                metrics: Some(CellMetrics::from(&report)),
                wall_millis,
                attempts: vec![],
            }
        }
        Err(panic) => RepResult {
            replicate,
            seed: spec.seed,
            status: CellStatus::Failed,
            error: Some(panic_message(panic.as_ref())),
            metrics: None,
            wall_millis,
            attempts: vec![],
        },
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{ExperimentGrid, Tuning};
    use mehpt_sim::PtKind;
    use mehpt_types::rng::Xoshiro256;
    use mehpt_workloads::App;

    /// A cheap, deterministic stand-in for the simulator: metrics are a
    /// pure function of the cell seed.
    fn fake_sim(spec: &CellSpec) -> SimReport {
        let mut rng = Xoshiro256::seed_from_u64(spec.seed);
        let cycles = 1_000 + rng.next_below(1_000_000);
        SimReport {
            app: spec.app.name().to_string(),
            kind: spec.kind,
            thp: spec.thp,
            accesses: 100 + rng.next_below(100),
            total_cycles: cycles,
            base_cycles: 0,
            translation_cycles: 0,
            fault_cycles: 0,
            alloc_cycles: 0,
            os_pt_cycles: 0,
            faults: 0,
            pages_4k: 0,
            pages_2m: 0,
            tlb_miss_rate: 0.0,
            walks: 0,
            mean_walk_accesses: 0.0,
            mean_walk_cycles: 0.0,
            pt_final_bytes: 0,
            pt_peak_bytes: 0,
            pt_max_contiguous: 0,
            way_sizes_4k: vec![],
            way_phys_4k: vec![],
            upsizes_per_way_4k: vec![],
            upsizes_per_way_2m: vec![],
            moved_fraction_4k: 0.0,
            kicks_histogram: vec![],
            l2p_entries_used: 0,
            chunk_switches: 0,
            data_bytes_nominal: 0,
            aborted: None,
        }
    }

    fn specs() -> Vec<CellSpec> {
        ExperimentGrid::paper(
            App::all().to_vec(),
            vec![PtKind::Radix, PtKind::Ecpt, PtKind::MeHpt],
            vec![false, true],
        )
        .expand(&Tuning::quick())
    }

    #[test]
    fn parallel_and_serial_runs_are_identical() {
        let specs = specs();
        let serial = run_cells_with(&specs, &RunOptions::with_jobs(1), fake_sim, &|_| {});
        let parallel = run_cells_with(&specs, &RunOptions::with_jobs(8), fake_sim, &|_| {});
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.status, b.status);
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn a_panicking_cell_fails_alone() {
        let specs = specs();
        let bomb = |spec: &CellSpec| -> SimReport {
            if spec.app == App::Gups && spec.thp {
                panic!("injected failure in {}", spec.id());
            }
            fake_sim(spec)
        };
        let results = run_cells_with(&specs, &RunOptions::with_jobs(4), bomb, &|_| {});
        let failed: Vec<_> = results
            .iter()
            .filter(|r| r.status == CellStatus::Failed)
            .collect();
        assert_eq!(failed.len(), 3, "gups×thp exists once per kind");
        for f in &failed {
            assert!(f.error.as_deref().unwrap().contains("injected failure"));
            assert!(f.metrics.is_none());
        }
        let ok = results
            .iter()
            .filter(|r| r.status == CellStatus::Ok)
            .count();
        assert_eq!(ok, results.len() - 3, "every other cell completes");
    }

    #[test]
    fn a_hanging_cell_times_out_alone_and_the_sweep_completes() {
        let specs = specs();
        let stall = |spec: &CellSpec| -> SimReport {
            if spec.app == App::Gups && spec.thp && spec.kind == PtKind::Ecpt {
                fault::hang();
            }
            fake_sim(spec)
        };
        let opts = RunOptions {
            timeout: Some(Duration::from_millis(150)),
            ..RunOptions::with_jobs(2)
        };
        let results = run_cells_with(&specs, &opts, stall, &|_| {});
        assert_eq!(results.len(), specs.len());
        let timed: Vec<_> = results
            .iter()
            .filter(|r| r.status == CellStatus::TimedOut)
            .collect();
        assert_eq!(timed.len(), 1);
        let t = timed[0];
        assert!(t.metrics.is_none());
        assert_eq!(
            t.error.as_deref(),
            Some("replicate exceeded the 0.15s deadline; worker abandoned"),
            "the record carries the configured deadline, not wall-clock"
        );
        let ok = results
            .iter()
            .filter(|r| r.status == CellStatus::Ok)
            .count();
        assert_eq!(ok, results.len() - 1, "every other cell completes");
    }

    #[test]
    fn a_hang_on_the_only_worker_is_rescued_by_a_respawn() {
        // jobs=1 is the hard case: the single worker hangs on an early
        // unit, and only the watchdog's replacement finishes the queue.
        let specs = specs();
        let first = specs[0].clone();
        let stall = move |spec: &CellSpec| -> SimReport {
            if spec.id() == first.id() {
                fault::hang();
            }
            fake_sim(spec)
        };
        let opts = RunOptions {
            timeout: Some(Duration::from_millis(100)),
            ..RunOptions::with_jobs(1)
        };
        let results = run_cells_with(&specs, &opts, stall, &|_| {});
        assert_eq!(results[0].status, CellStatus::TimedOut);
        assert!(results[1..].iter().all(|r| r.status == CellStatus::Ok));
    }

    #[test]
    fn timed_out_sweeps_are_deterministic_across_jobs() {
        let specs = specs();
        let run = |jobs| {
            let stall = |spec: &CellSpec| -> SimReport {
                if spec.app == App::Bfs && spec.kind == PtKind::MeHpt && !spec.thp {
                    fault::hang();
                }
                fake_sim(spec)
            };
            let opts = RunOptions {
                jobs,
                seeds: 2,
                retries: 0,
                timeout: Some(Duration::from_millis(120)),
            };
            run_cells_with(&specs, &opts, stall, &|_| {})
        };
        let serial = run(1);
        let parallel = run(6);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.status, b.status, "{}", a.spec.id());
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.metrics, b.metrics);
            for (ra, rb) in a.replicates.iter().zip(&b.replicates) {
                assert_eq!(ra.status, rb.status);
                assert_eq!(ra.error, rb.error);
            }
        }
    }

    #[test]
    fn progress_reports_every_cell_exactly_once() {
        use std::sync::Mutex;
        let specs = specs();
        let seen = Mutex::new(Vec::new());
        run_cells_with(&specs, &RunOptions::with_jobs(3), fake_sim, &|p| {
            seen.lock().unwrap().push((p.done, p.id));
        });
        let mut seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), specs.len());
        seen.sort();
        assert_eq!(seen.last().unwrap().0, specs.len());
        let mut ids: Vec<String> = seen.into_iter().map(|(_, id)| id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), specs.len());
    }

    #[test]
    fn replicated_runs_aggregate_and_stay_deterministic_across_jobs() {
        let specs = specs();
        let opts = |jobs| RunOptions {
            jobs,
            seeds: 3,
            ..RunOptions::default()
        };
        let serial = run_cells_with(&specs, &opts(1), fake_sim, &|_| {});
        let parallel = run_cells_with(&specs, &opts(7), fake_sim, &|_| {});
        assert_eq!(serial.len(), specs.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.stats, b.stats, "aggregation must not depend on --jobs");
            assert_eq!(a.metrics, b.metrics);
        }
        let cell = &serial[0];
        assert_eq!(cell.replicates.len(), 3);
        // fake_sim is a pure function of the seed, and replicate seeds
        // differ, so the replicates measure different cycle counts.
        let cycles: std::collections::HashSet<u64> = cell
            .replicates
            .iter()
            .map(|r| r.metrics.as_ref().unwrap().total_cycles)
            .collect();
        assert_eq!(cycles.len(), 3);
        let st = cell.stats.as_ref().unwrap();
        assert_eq!(st.replicates, 3);
        let cyc = st.field("total_cycles").unwrap();
        assert!(cyc.min < cyc.mean && cyc.mean < cyc.max);
        assert!(cyc.ci95 > 0.0);
        // Replicate 0 of a seeds=3 run is the whole seeds=1 run.
        let single = run_cells_with(&specs, &RunOptions::with_jobs(2), fake_sim, &|_| {});
        assert_eq!(single[0].metrics, serial[0].metrics);
    }

    #[test]
    fn replicated_progress_counts_units() {
        use std::sync::Mutex;
        let specs = specs();
        let seen = Mutex::new(Vec::new());
        let opts = RunOptions {
            jobs: 4,
            seeds: 2,
            ..RunOptions::default()
        };
        run_cells_with(&specs, &opts, fake_sim, &|p| {
            seen.lock().unwrap().push((p.total, p.id));
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 2 * specs.len());
        assert!(seen.iter().all(|(t, _)| *t == 2 * specs.len()));
        assert_eq!(
            seen.iter().filter(|(_, id)| id.ends_with("#r1")).count(),
            specs.len()
        );
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        let opts = RunOptions::with_jobs(0);
        assert!(opts.effective_jobs(1000) >= 1);
        assert_eq!(opts.effective_jobs(0), 1);
        assert_eq!(RunOptions::with_jobs(64).effective_jobs(4), 4);
    }

    #[test]
    fn timeout_labels_are_exact_decimals() {
        assert_eq!(timeout_label(Duration::from_secs(2)), "2");
        assert_eq!(timeout_label(Duration::from_millis(150)), "0.15");
    }

    /// The seeds every (replicate, attempt-0) unit of `specs` runs under —
    /// what a transient-failure runner uses to decide when to misbehave.
    fn attempt0_seeds(specs: &[CellSpec], seeds: u32) -> std::collections::HashSet<u64> {
        specs
            .iter()
            .flat_map(|s| (0..seeds).map(move |r| s.replicate_seed(r)))
            .collect()
    }

    #[test]
    fn a_transient_failure_is_recovered_by_retry_with_history() {
        let specs = specs();
        let first_seeds = attempt0_seeds(&specs, 2);
        let run = |jobs| {
            let seeds = first_seeds.clone();
            let flaky = move |spec: &CellSpec| -> SimReport {
                // Gups panics on every attempt-0 seed; retry seeds differ,
                // so attempt 1 completes.
                if spec.app == App::Gups && seeds.contains(&spec.seed) {
                    panic!("transient failure in {}", spec.id());
                }
                fake_sim(spec)
            };
            let opts = RunOptions {
                jobs,
                seeds: 2,
                retries: 2,
                timeout: None,
            };
            run_cells_with(&specs, &opts, flaky, &|_| {})
        };
        let serial = run(1);
        let parallel = run(4);
        let gups: Vec<_> = serial.iter().filter(|c| c.spec.app == App::Gups).collect();
        assert!(!gups.is_empty());
        for cell in &gups {
            assert_eq!(cell.status, CellStatus::Ok, "{}", cell.spec.id());
            for rep in &cell.replicates {
                assert_eq!(rep.status, CellStatus::Ok);
                assert_eq!(rep.attempts.len(), 2, "one failure, one recovery");
                assert_eq!(rep.attempts[0].status, CellStatus::Failed);
                assert!(rep.attempts[0]
                    .error
                    .as_deref()
                    .unwrap()
                    .contains("transient failure"));
                assert_eq!(rep.attempts[1].status, CellStatus::Ok);
                assert_eq!(
                    rep.seed,
                    cell.spec.retry_seed(rep.replicate, 1),
                    "the final attempt ran the retry seed"
                );
                assert!(rep.metrics.is_some());
            }
        }
        // Healthy cells record a single attempt; histories and outcomes
        // are byte-identical across the jobs axis.
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.status, b.status, "{}", a.spec.id());
            assert_eq!(a.metrics, b.metrics);
            for (ra, rb) in a.replicates.iter().zip(&b.replicates) {
                assert_eq!(ra.attempts, rb.attempts, "{}", a.spec.id());
                if a.spec.app != App::Gups {
                    assert_eq!(ra.attempts.len(), 1);
                }
            }
        }
    }

    #[test]
    fn a_permanent_failure_exhausts_the_retry_budget() {
        let specs = specs();
        let bomb = |spec: &CellSpec| -> SimReport {
            if spec.app == App::Gups && spec.thp && spec.kind == PtKind::MeHpt {
                panic!("permanent failure");
            }
            fake_sim(spec)
        };
        let opts = RunOptions {
            retries: 2,
            ..RunOptions::with_jobs(3)
        };
        let results = run_cells_with(&specs, &opts, bomb, &|_| {});
        let failed: Vec<_> = results
            .iter()
            .filter(|c| c.status == CellStatus::Failed)
            .collect();
        assert_eq!(failed.len(), 1);
        let rep = &failed[0].replicates[0];
        assert_eq!(rep.attempts.len(), 3, "original + 2 retries");
        assert!(rep.attempts.iter().all(|a| a.status == CellStatus::Failed));
        let seeds: std::collections::HashSet<u64> = rep.attempts.iter().map(|a| a.seed).collect();
        assert_eq!(seeds.len(), 3, "every attempt ran a distinct seed");
        // Aborted outcomes are modeled results, never retried: nothing
        // else in the sweep grew extra attempts.
        for c in &results {
            if c.status != CellStatus::Failed {
                assert!(c.replicates.iter().all(|r| r.attempts.len() == 1));
            }
        }
    }

    #[test]
    fn preloaded_results_short_circuit_and_fresh_ones_stream_out() {
        let specs = specs();
        let opts = RunOptions {
            seeds: 2,
            ..RunOptions::with_jobs(4)
        };
        let full = run_cells_injected(&specs, &opts, None, fake_sim, &|_| {});

        // Preload roughly half the units from the full run's results.
        let mut preloaded = HashMap::new();
        for (ci, cell) in full.iter().enumerate() {
            for rep in &cell.replicates {
                if (ci + rep.replicate as usize) % 2 == 0 {
                    preloaded.insert((cell.spec.id(), rep.replicate), rep.clone());
                }
            }
        }
        let preloaded_count = preloaded.len();
        assert!(preloaded_count > 0);

        let mut fresh = Vec::new();
        let resumed = run_cells_persisted(
            &specs,
            &opts,
            None,
            fake_sim,
            &|_| {},
            &preloaded,
            &mut |spec, rep| fresh.push((spec.id(), rep.replicate)),
        );
        assert_eq!(fresh.len(), 2 * specs.len() - preloaded_count);
        for (id, r) in &fresh {
            assert!(
                !preloaded.contains_key(&(id.clone(), *r)),
                "{id}#r{r} was preloaded yet ran again"
            );
        }
        // The resumed sweep reproduces the uninterrupted run exactly.
        for (a, b) in full.iter().zip(&resumed) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.status, b.status);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.stats, b.stats);
        }

        // Preloading *everything* runs nothing at all.
        let mut all = HashMap::new();
        for cell in &full {
            for rep in &cell.replicates {
                all.insert((cell.spec.id(), rep.replicate), rep.clone());
            }
        }
        let mut ran = 0usize;
        let replayed = run_cells_persisted(
            &specs,
            &opts,
            None,
            |spec: &CellSpec| -> SimReport { panic!("nothing should run, tried {}", spec.id()) },
            &|_| {},
            &all,
            &mut |_, _| ran += 1,
        );
        assert_eq!(ran, 0);
        for (a, b) in full.iter().zip(&replayed) {
            assert_eq!(a.status, b.status);
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn one_real_simulation_cell_runs_end_to_end() {
        let grid = ExperimentGrid::paper(vec![App::Mummer], vec![PtKind::MeHpt], vec![false]);
        let mut tuning = Tuning::quick();
        tuning.scale = 0.002;
        let specs = grid.expand(&tuning);
        let results = run_cells(&specs, &RunOptions::with_jobs(1), &|_| {});
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].status, CellStatus::Ok);
        let m = results[0].metrics.as_ref().unwrap();
        assert!(m.accesses > 0);
        assert!(m.total_cycles > m.accesses);
    }
}
