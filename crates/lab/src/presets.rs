//! Named experiment presets: the paper's tables and figures as grids.
//!
//! Each preset couples an [`ExperimentGrid`] (which cells to run) with a
//! renderer that turns the sweep's [`LabReport`] into the same table the
//! corresponding `crates/bench` target used to print. `mehpt-lab all`
//! unions every preset's cells, runs each distinct cell once, and renders
//! all presets from the shared results.

use std::fmt::Write as _;

use mehpt_ecpt::{ClusterEntry, CLUSTER_PTES};
use mehpt_sim::PtKind;
use mehpt_types::PageSize;
use mehpt_workloads::App;

use crate::fmt::{fmt_bytes, fmt_ci, fmt_mb, geomean};
use crate::grid::{ExperimentGrid, FmfiAxis, Variant};
use crate::report::{CellStatus, LabReport};

/// A named experiment preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// Table I — memory consumption of the applications.
    Table1,
    /// Table II — max way sizes and mapping space per chunk size (analytic).
    Table2,
    /// Figure 7 — performance across the fragmentation (FMFI) sweep.
    Fig7,
    /// Figure 8 — maximum contiguous HPT allocation.
    Fig8,
    /// Figure 9 — speedup over radix without THP.
    Fig9,
    /// Figure 10 — PT memory reduction over ECPT, by technique.
    Fig10,
    /// Figure 11 — upsizes per way.
    Fig11,
    /// Figure 12 — final way sizes.
    Fig12,
    /// Figure 13 — fraction of entries moved per upsize.
    Fig13,
    /// Figure 14 — L2P entries used.
    Fig14,
    /// Figure 15 — way memory for small graphs, 1MB-only vs the ladder.
    Fig15,
    /// Figure 16 — cuckoo re-insertion distribution.
    Fig16,
}

/// Every preset, in the paper's order.
pub const PRESETS: [Preset; 12] = [
    Preset::Table1,
    Preset::Table2,
    Preset::Fig7,
    Preset::Fig8,
    Preset::Fig9,
    Preset::Fig10,
    Preset::Fig11,
    Preset::Fig12,
    Preset::Fig13,
    Preset::Fig14,
    Preset::Fig15,
    Preset::Fig16,
];

impl Preset {
    /// CLI name (`mehpt-lab <name>`).
    pub fn name(self) -> &'static str {
        match self {
            Preset::Table1 => "table1",
            Preset::Table2 => "table2",
            Preset::Fig7 => "fig7",
            Preset::Fig8 => "fig8",
            Preset::Fig9 => "fig9",
            Preset::Fig10 => "fig10",
            Preset::Fig11 => "fig11",
            Preset::Fig12 => "fig12",
            Preset::Fig13 => "fig13",
            Preset::Fig14 => "fig14",
            Preset::Fig15 => "fig15",
            Preset::Fig16 => "fig16",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Preset> {
        PRESETS.into_iter().find(|p| p.name() == name)
    }

    /// Human title (the banner line).
    pub fn title(self) -> &'static str {
        match self {
            Preset::Table1 => "Table I: Memory consumption of our applications",
            Preset::Table2 => "Table II: Maximum HPT way sizes and mapping space per chunk size",
            Preset::Fig7 => "Figure 7: Cycles per access across the fragmentation sweep",
            Preset::Fig8 => "Figure 8: Maximum contiguous memory allocated for the HPTs",
            Preset::Fig9 => "Figure 9: Speedup over Radix (no THP)",
            Preset::Fig10 => "Figure 10: Page-table memory reduction over ECPT, by technique",
            Preset::Fig11 => "Figure 11: Upsizing operations per way (ME-HPT, 4KB tables)",
            Preset::Fig12 => "Figure 12: Size of each ME-HPT way (4KB tables)",
            Preset::Fig13 => "Figure 13: Fraction of entries moved per 4KB-table upsize (ME-HPT)",
            Preset::Fig14 => "Figure 14: L2P table entries used per application",
            Preset::Fig15 => "Figure 15: Average 4KB-HPT way memory for small graphs",
            Preset::Fig16 => "Figure 16: Cuckoo re-insertions per insertion or rehash (ME-HPT)",
        }
    }

    /// The watchdog default for this preset (whole seconds), applied when
    /// the user passes no `--timeout`. The fragmentation sweep is the one
    /// preset whose ECPT cuckoo-insertion paths can degenerate into
    /// unbounded resize loops (the paper's Sec. VII regime), so it runs
    /// under a generous bound by default; everything else runs unwatched.
    pub fn default_timeout_secs(self) -> Option<u64> {
        match self {
            Preset::Fig7 => Some(600),
            _ => None,
        }
    }

    /// The cells this preset needs. Empty for the analytic [`Preset::Table2`].
    pub fn grid(self) -> ExperimentGrid {
        let all = App::all().to_vec();
        let both = vec![false, true];
        match self {
            Preset::Table1 => ExperimentGrid::paper(all, vec![PtKind::Radix, PtKind::Ecpt], both),
            Preset::Table2 => ExperimentGrid::paper(vec![], vec![], vec![]),
            Preset::Fig7 => {
                let mut grid = ExperimentGrid::paper(
                    vec![App::Gups, App::Bfs, App::Mummer],
                    vec![PtKind::Ecpt, PtKind::MeHpt],
                    vec![false],
                );
                grid.fmfi = FmfiAxis::sweep();
                grid
            }
            Preset::Fig8 => ExperimentGrid::paper(all, vec![PtKind::Ecpt, PtKind::MeHpt], both),
            Preset::Fig9 => {
                ExperimentGrid::paper(all, vec![PtKind::Radix, PtKind::Ecpt, PtKind::MeHpt], both)
            }
            Preset::Fig10 => {
                let mut grid = ExperimentGrid::paper(all, vec![PtKind::Ecpt, PtKind::MeHpt], both);
                grid.variants = vec![Variant::Full, Variant::NoInPlace, Variant::NoPerWay];
                grid
            }
            Preset::Fig11 | Preset::Fig12 | Preset::Fig13 | Preset::Fig14 => {
                ExperimentGrid::paper(all, vec![PtKind::MeHpt], both)
            }
            Preset::Fig15 => {
                let mut grid = ExperimentGrid::paper(
                    App::graph_apps().to_vec(),
                    vec![PtKind::MeHpt],
                    vec![false],
                );
                grid.variants = vec![Variant::Full, Variant::Fixed1Mb];
                grid.graph_nodes = vec![1_000, 10_000, 100_000];
                grid
            }
            Preset::Fig16 => ExperimentGrid::paper(all, vec![PtKind::MeHpt], vec![false]),
        }
    }

    /// Renders the preset's table from a report holding (at least) the
    /// preset's cells. Missing or failed cells render as `-`.
    pub fn render(self, report: &LabReport) -> String {
        let mut out = String::new();
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "=".repeat(72));
        let _ = writeln!(out, "{}", self.title());
        let _ = writeln!(
            out,
            "  (scale {}, base seed {:#x})",
            report.scale, report.base_seed
        );
        let abandoned = report.workers_abandoned();
        if abandoned > 0 {
            let _ = writeln!(
                out,
                "  (workers abandoned: {abandoned} — timed-out attempts, see report.json)"
            );
        }
        let _ = writeln!(out, "{}", "=".repeat(72));
        match self {
            Preset::Table1 => render_table1(report, &mut out),
            Preset::Table2 => render_table2(&mut out),
            Preset::Fig7 => render_fig7(report, &mut out),
            Preset::Fig8 => render_fig8(report, &mut out),
            Preset::Fig9 => render_fig9(report, &mut out),
            Preset::Fig10 => render_fig10(report, &mut out),
            Preset::Fig11 => render_fig11(report, &mut out),
            Preset::Fig12 => render_fig12(report, &mut out),
            Preset::Fig13 => render_fig13(report, &mut out),
            Preset::Fig14 => render_fig14(report, &mut out),
            Preset::Fig15 => render_fig15(report, &mut out),
            Preset::Fig16 => render_fig16(report, &mut out),
        }
        out
    }
}

const FULL: Variant = Variant::Full;

fn render_table1(r: &LabReport, out: &mut String) {
    let _ = writeln!(
        out,
        "{:<9} {:>7} | {:>10} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "App", "Data", "Contig", "Contig", "Total", "Total", "Total", "Total"
    );
    let _ = writeln!(
        out,
        "{:<9} {:>7} | {:>10} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "", "(GB)", "Tree(KB)", "ECPT(KB)", "TreeMB", "ECPTMB", "TreeTHP", "ECPTTHP"
    );
    let _ = writeln!(out, "{}", "-".repeat(88));
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 7];
    for app in App::all() {
        let (Some(tree), Some(tree_thp), Some(ecpt), Some(ecpt_thp)) = (
            r.metrics(app, PtKind::Radix, false, FULL),
            r.metrics(app, PtKind::Radix, true, FULL),
            r.metrics(app, PtKind::Ecpt, false, FULL),
            r.metrics(app, PtKind::Ecpt, true, FULL),
        ) else {
            let _ = writeln!(out, "{:<9} (cells missing or failed)", app.name());
            continue;
        };
        let data_gb = tree.data_bytes_nominal as f64 / mehpt_types::GIB as f64;
        let cols = [
            data_gb,
            tree.pt_max_contiguous as f64 / 1024.0,
            ecpt.pt_max_contiguous as f64 / 1024.0,
            tree.pt_peak_bytes as f64,
            ecpt.pt_peak_bytes as f64,
            tree_thp.pt_peak_bytes as f64,
            ecpt_thp.pt_peak_bytes as f64,
        ];
        for (g, c) in geo.iter_mut().zip(cols) {
            g.push(c);
        }
        let _ = writeln!(
            out,
            "{:<9} {:>7.1} | {:>10.0} {:>10.0} | {:>9} {:>9} | {:>9} {:>9}",
            app.name(),
            data_gb,
            cols[1],
            cols[2],
            fmt_mb(tree.pt_peak_bytes),
            fmt_mb(ecpt.pt_peak_bytes),
            fmt_mb(tree_thp.pt_peak_bytes),
            fmt_mb(ecpt_thp.pt_peak_bytes),
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(88));
    let _ = writeln!(
        out,
        "{:<9} {:>7.1} | {:>10.1} {:>10.1} | {:>9.1} {:>9.1} | {:>9.1} {:>9.1}",
        "GeoMean",
        geomean(&geo[0]),
        geomean(&geo[1]),
        geomean(&geo[2]),
        geomean(&geo[3]) / (1 << 20) as f64,
        geomean(&geo[4]) / (1 << 20) as f64,
        geomean(&geo[5]) / (1 << 20) as f64,
        geomean(&geo[6]) / (1 << 20) as f64,
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper (GeoMean row of Table I): data 13.9GB, tree contiguity 4KB,"
    );
    let _ = writeln!(
        out,
        "ECPT contiguity 12.7MB, tree/ECPT totals 23.5/56.0MB (no THP) and 7.9/18.0MB (THP)."
    );
}

fn render_table2(out: &mut String) {
    // Analytic: derived directly from the design's constants (64 L2P
    // entries per subtable after stealing, 64-byte cluster entries holding
    // 8 translations, 3 ways).
    let max_chunks: u64 = 64;
    let ways: u64 = 3;
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>24} {:>24}",
        "Chunk", "Max way size", "Map space (4KB pages)", "Map space (2MB pages)"
    );
    let _ = writeln!(out, "{}", "-".repeat(76));
    for &chunk in mehpt_core::ChunkSizePolicy::paper_default().sizes() {
        let way_bytes = max_chunks * chunk;
        let entries = ways * way_bytes / ClusterEntry::BYTES;
        let pages = entries * CLUSTER_PTES as u64;
        let space_4k = pages * PageSize::Base4K.bytes();
        let space_2m = pages * PageSize::Huge2M.bytes();
        let _ = writeln!(
            out,
            "{:<10} {:>14} {:>24} {:>24}",
            fmt_bytes(chunk),
            fmt_bytes(way_bytes),
            fmt_bytes(space_4k),
            fmt_bytes(space_2m)
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper: 8KB→512KB way, 768MB / 384GB; 1MB→64MB way, 96GB / 48TB;"
    );
    let _ = writeln!(
        out,
        "       8MB→512MB way, 768GB / 384TB; 64MB→4GB way, 6TB / 3PB."
    );
}

fn render_fig7(r: &LabReport, out: &mut String) {
    // One column per FMFI point, one row per app × kind. Cells print the
    // cycles-per-access mean with its 95% CI band when the sweep ran with
    // `--seeds > 1`; `abort` marks the modeled ECPT contiguous-allocation
    // failure at high fragmentation.
    let points = FmfiAxis::sweep().points();
    let _ = write!(out, "{:<9} {:<7} |", "App", "PT");
    for f in &points {
        let _ = write!(out, " {:>9}", format!("f={f:.1}"));
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(20 + 10 * points.len()));
    let mut abort_onsets = Vec::new();
    for app in [App::Gups, App::Bfs, App::Mummer] {
        for (kind, label) in [(PtKind::Ecpt, "ECPT"), (PtKind::MeHpt, "ME-HPT")] {
            let _ = write!(out, "{:<9} {:<7} |", app.name(), label);
            let mut onset: Option<f64> = None;
            for &f in &points {
                let cell = r.cells.iter().find(|c| {
                    c.spec.app == app
                        && c.spec.kind == kind
                        && !c.spec.thp
                        && c.spec.variant == FULL
                        && (c.spec.fragmentation - f).abs() < 1e-9
                });
                let text = match cell {
                    Some(c) if c.status == CellStatus::Failed => "failed".to_string(),
                    Some(c) if c.status == CellStatus::TimedOut => "timeout".to_string(),
                    Some(c) => {
                        let aborted = c.status == CellStatus::Aborted;
                        if aborted && onset.is_none() {
                            onset = Some(f);
                        }
                        match c.stats.as_ref().and_then(|s| s.field("cycles_per_access")) {
                            Some(cpa) if !aborted => fmt_ci(cpa.mean, cpa.ci95),
                            Some(cpa) => format!("{}*", fmt_ci(cpa.mean, cpa.ci95)),
                            None => "abort".to_string(),
                        }
                    }
                    None => "-".to_string(),
                };
                let _ = write!(out, " {text:>9}");
            }
            if let Some(f) = onset {
                abort_onsets.push((app, label, f));
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(out, "{}", "-".repeat(20 + 10 * points.len()));
    if r.seeds > 1 {
        let _ = writeln!(
            out,
            "Cells are cycles-per-access mean ± 95% CI over {} replicate seeds.",
            r.seeds
        );
    } else {
        let _ = writeln!(
            out,
            "Single-seed sweep; re-run with --seeds N for confidence bands."
        );
    }
    for (app, label, f) in &abort_onsets {
        let _ = writeln!(
            out,
            "{} {}: contiguous allocation fails from FMFI {f:.1} (*)",
            app.name(),
            label
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper: ECPT's large contiguous ways stop fitting as fragmentation"
    );
    let _ = writeln!(
        out,
        "rises (abort past ~0.7 FMFI) while ME-HPT's chunked ways keep"
    );
    let _ = writeln!(out, "running with flat cycles-per-access.");
}

fn render_fig8(r: &LabReport, out: &mut String) {
    let _ = writeln!(
        out,
        "{:<9} | {:>10} {:>10} | {:>10} {:>10} | {:>10}",
        "App", "ECPT", "ECPT+THP", "ME-HPT", "MEHPT+THP", "reduction"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    let mut reductions = Vec::new();
    let mut reductions_thp = Vec::new();
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for app in App::all() {
        let (Some(ecpt), Some(ecpt_thp), Some(mehpt), Some(mehpt_thp)) = (
            r.metrics(app, PtKind::Ecpt, false, FULL),
            r.metrics(app, PtKind::Ecpt, true, FULL),
            r.metrics(app, PtKind::MeHpt, false, FULL),
            r.metrics(app, PtKind::MeHpt, true, FULL),
        ) else {
            let _ = writeln!(out, "{:<9} (cells missing or failed)", app.name());
            continue;
        };
        let red = 1.0 - mehpt.pt_max_contiguous as f64 / ecpt.pt_max_contiguous.max(1) as f64;
        let red_thp =
            1.0 - mehpt_thp.pt_max_contiguous as f64 / ecpt_thp.pt_max_contiguous.max(1) as f64;
        reductions.push(red);
        reductions_thp.push(red_thp);
        for (g, v) in geo.iter_mut().zip([
            ecpt.pt_max_contiguous,
            ecpt_thp.pt_max_contiguous,
            mehpt.pt_max_contiguous,
            mehpt_thp.pt_max_contiguous,
        ]) {
            g.push(v as f64);
        }
        let _ = writeln!(
            out,
            "{:<9} | {:>10} {:>10} | {:>10} {:>10} | {:>9.0}%",
            app.name(),
            fmt_bytes(ecpt.pt_max_contiguous),
            fmt_bytes(ecpt_thp.pt_max_contiguous),
            fmt_bytes(mehpt.pt_max_contiguous),
            fmt_bytes(mehpt_thp.pt_max_contiguous),
            red * 100.0
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(72));
    if !reductions.is_empty() {
        let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
        let avg_thp = reductions_thp.iter().sum::<f64>() / reductions_thp.len() as f64;
        let _ = writeln!(
            out,
            "Per-app mean reduction:     {:.0}% (no THP), {:.0}% (THP)",
            avg * 100.0,
            avg_thp * 100.0
        );
        let g = |i: usize| geomean(&geo[i]);
        let _ = writeln!(
            out,
            "GeoMean contiguity: ECPT {:.1}MB -> ME-HPT {:.2}MB ({:.0}% reduction, no THP)",
            g(0) / (1 << 20) as f64,
            g(2) / (1 << 20) as f64,
            (1.0 - g(2) / g(0).max(1.0)) * 100.0
        );
        let _ = writeln!(
            out,
            "            with THP: ECPT {:.1}MB -> ME-HPT {:.2}MB ({:.0}% reduction)",
            g(1) / (1 << 20) as f64,
            g(3) / (1 << 20) as f64,
            (1.0 - g(3) / g(1).max(1.0)) * 100.0
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper: 92% (no THP) and 84% (THP) contiguity reduction;"
    );
    let _ = writeln!(out, "GUPS/SysBench drop from 64MB to 1MB.");
}

fn render_fig9(r: &LabReport, out: &mut String) {
    let _ = writeln!(
        out,
        "{:<9} | {:>7} {:>7} {:>7} | {:>9} {:>9} {:>9}",
        "App", "Radix", "ECPT", "ME-HPT", "RadixTHP", "ECPT+THP", "MEHPT+THP"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
    let mut vs_ecpt = Vec::new();
    let mut vs_ecpt_thp = Vec::new();
    let configs = [
        (PtKind::Radix, false),
        (PtKind::Ecpt, false),
        (PtKind::MeHpt, false),
        (PtKind::Radix, true),
        (PtKind::Ecpt, true),
        (PtKind::MeHpt, true),
    ];
    for app in App::all() {
        let Some(base) = r.metrics(app, PtKind::Radix, false, FULL) else {
            let _ = writeln!(out, "{:<9} (baseline missing or failed)", app.name());
            continue;
        };
        let mut speeds = Vec::new();
        let mut note = String::new();
        for (i, (kind, thp)) in configs.iter().enumerate() {
            let Some(cell) = r.cell(app, *kind, *thp, FULL) else {
                note = format!("  [{:?} thp={} missing]", kind, thp);
                speeds.push(0.0);
                continue;
            };
            if let Some(msg) = &cell.error {
                note = format!("  [{:?} thp={}: {msg}]", kind, thp);
            }
            let s = cell.metrics.as_ref().map_or(0.0, |m| m.speedup_over(base));
            cols[i].push(s);
            speeds.push(s);
        }
        let _ = writeln!(
            out,
            "{:<9} | {:>7.2} {:>7.2} {:>7.2} | {:>9.2} {:>9.2} {:>9.2}{}",
            app.name(),
            speeds[0],
            speeds[1],
            speeds[2],
            speeds[3],
            speeds[4],
            speeds[5],
            note
        );
        if speeds[1] > 0.0 && speeds[4] > 0.0 {
            vs_ecpt.push(speeds[2] / speeds[1]);
            vs_ecpt_thp.push(speeds[5] / speeds[4]);
        }
    }
    let _ = writeln!(out, "{}", "-".repeat(72));
    let _ = writeln!(
        out,
        "{:<9} | {:>7.2} {:>7.2} {:>7.2} | {:>9.2} {:>9.2} {:>9.2}",
        "GeoMean",
        geomean(&cols[0]),
        geomean(&cols[1]),
        geomean(&cols[2]),
        geomean(&cols[3]),
        geomean(&cols[4]),
        geomean(&cols[5]),
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "ME-HPT over ECPT: {:.2}x (no THP), {:.2}x (THP)   [paper: 1.09x / 1.06x]",
        geomean(&vs_ecpt),
        geomean(&vs_ecpt_thp)
    );
    let _ = writeln!(
        out,
        "ME-HPT over Radix(no THP): {:.2}x; ME-HPT+THP: {:.2}x   [paper: 1.23x / 1.28x]",
        geomean(&cols[2]),
        geomean(&cols[5])
    );
}

fn render_fig10(r: &LabReport, out: &mut String) {
    fn row(r: &LabReport, app: App, thp: bool) -> Option<(f64, f64, f64, f64)> {
        let ecpt = r
            .metrics(app, PtKind::Ecpt, thp, Variant::Full)?
            .pt_peak_bytes as f64;
        let full = r
            .metrics(app, PtKind::MeHpt, thp, Variant::Full)?
            .pt_peak_bytes as f64;
        let no_inplace = r
            .metrics(app, PtKind::MeHpt, thp, Variant::NoInPlace)?
            .pt_peak_bytes as f64;
        let no_perway = r
            .metrics(app, PtKind::MeHpt, thp, Variant::NoPerWay)?
            .pt_peak_bytes as f64;
        let reduction = (ecpt - full).max(0.0);
        let d_inplace = (no_inplace - full).max(0.0);
        let d_perway = (no_perway - full).max(0.0);
        let denom = (d_inplace + d_perway).max(1.0);
        let inplace_share = d_inplace / denom;
        Some((
            reduction / ecpt.max(1.0),
            reduction / (1u64 << 20) as f64,
            inplace_share,
            1.0 - inplace_share,
        ))
    }
    let _ = writeln!(
        out,
        "{:<9} | {:>7} {:>8} {:>9} {:>8} | {:>7} {:>8} {:>9} {:>8}",
        "App", "red%", "abs(MB)", "inplace%", "perway%", "redTHP%", "absTHP", "inplace%", "perway%"
    );
    let _ = writeln!(out, "{}", "-".repeat(88));
    let mut reds = Vec::new();
    let mut reds_thp = Vec::new();
    let mut in_shares = Vec::new();
    for app in App::all() {
        let (Some((red, mb, ip, pw)), Some((red_t, mb_t, ip_t, pw_t))) =
            (row(r, app, false), row(r, app, true))
        else {
            let _ = writeln!(out, "{:<9} (cells missing or failed)", app.name());
            continue;
        };
        reds.push(red);
        reds_thp.push(red_t);
        in_shares.push(ip);
        let _ = writeln!(
            out,
            "{:<9} | {:>6.0}% {:>8.1} {:>8.0}% {:>7.0}% | {:>6.0}% {:>8.1} {:>8.0}% {:>7.0}%",
            app.name(),
            red * 100.0,
            mb,
            ip * 100.0,
            pw * 100.0,
            red_t * 100.0,
            mb_t,
            ip_t * 100.0,
            pw_t * 100.0,
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(88));
    if !reds.is_empty() {
        let _ = writeln!(
            out,
            "Mean reduction: {:.0}% (no THP), {:.0}% (THP); mean in-place share {:.0}%",
            100.0 * reds.iter().sum::<f64>() / reds.len() as f64,
            100.0 * reds_thp.iter().sum::<f64>() / reds_thp.len() as f64,
            100.0 * in_shares.iter().sum::<f64>() / in_shares.len() as f64,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper: 43%/41% savings; in-place is 75-80% of it, per-way 20-25%."
    );
}

fn fmt_ways(v: &[u64]) -> String {
    if v.is_empty() {
        return "0/0/0".to_string();
    }
    v.iter().map(u64::to_string).collect::<Vec<_>>().join("/")
}

fn render_fig11(r: &LabReport, out: &mut String) {
    let _ = writeln!(
        out,
        "{:<9} | {:>14} {:>14} | {:>14} {:>14}",
        "App", "4KB ways", "4KB ways THP", "2MB ways", "2MB ways THP"
    );
    let _ = writeln!(out, "{}", "-".repeat(74));
    let mut sums = [0.0f64; 3];
    let mut n = 0;
    for app in App::all() {
        let (Some(plain), Some(thp)) = (
            r.metrics(app, PtKind::MeHpt, false, FULL),
            r.metrics(app, PtKind::MeHpt, true, FULL),
        ) else {
            let _ = writeln!(out, "{:<9} (cells missing or failed)", app.name());
            continue;
        };
        let _ = writeln!(
            out,
            "{:<9} | {:>14} {:>14} | {:>14} {:>14}",
            app.name(),
            fmt_ways(&plain.upsizes_per_way_4k),
            fmt_ways(&thp.upsizes_per_way_4k),
            fmt_ways(&plain.upsizes_per_way_2m),
            fmt_ways(&thp.upsizes_per_way_2m),
        );
        if plain.upsizes_per_way_4k.len() == 3 {
            for (s, &u) in sums.iter_mut().zip(&plain.upsizes_per_way_4k) {
                *s += u as f64;
            }
            n += 1;
        }
    }
    let _ = writeln!(out, "{}", "-".repeat(74));
    if n > 0 {
        let _ = writeln!(
            out,
            "Average upsizes per way (no THP): {:.1} / {:.1} / {:.1}",
            sums[0] / n as f64,
            sums[1] / n as f64,
            sums[2] / n as f64
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper: ways upsized 10.6/10.5/9.9 times on average (no THP);"
    );
    let _ = writeln!(
        out,
        "GUPS/SysBench peak at 13 per way and never upsize their 4KB"
    );
    let _ = writeln!(
        out,
        "tables under THP (5 upsizes per way in the 2MB tables instead)."
    );
}

fn render_fig12(r: &LabReport, out: &mut String) {
    fn ways(v: &[u64]) -> String {
        if v.is_empty() {
            // The table was never created: it retains the notional initial
            // 8KB way (the paper plots "8KB" for GUPS/SysBench under THP).
            return "8KB*".to_string();
        }
        v.iter()
            .map(|&b| fmt_bytes(b))
            .collect::<Vec<_>>()
            .join(" / ")
    }
    let _ = writeln!(
        out,
        "{:<9} | {:>26} | {:>26}",
        "App", "ways (no THP)", "ways (THP)"
    );
    let _ = writeln!(out, "{}", "-".repeat(70));
    let mut unequal = 0;
    let mut rows = 0;
    for app in App::all() {
        let (Some(plain), Some(thp)) = (
            r.metrics(app, PtKind::MeHpt, false, FULL),
            r.metrics(app, PtKind::MeHpt, true, FULL),
        ) else {
            let _ = writeln!(out, "{:<9} (cells missing or failed)", app.name());
            continue;
        };
        rows += 1;
        if plain
            .way_sizes_4k
            .iter()
            .any(|&s| s != *plain.way_sizes_4k.first().unwrap_or(&0))
        {
            unequal += 1;
        }
        let _ = writeln!(
            out,
            "{:<9} | {:>26} | {:>26}",
            app.name(),
            ways(&plain.way_sizes_4k),
            ways(&thp.way_sizes_4k),
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(70));
    let _ = writeln!(
        out,
        "Applications with unequal way sizes (no THP): {unequal} of {rows}"
    );
    let _ = writeln!(
        out,
        "(* = table never instantiated; retains the initial 8KB way)"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper: GUPS/SysBench reach 64MB per way without THP and stay at"
    );
    let _ = writeln!(
        out,
        "the initial 8KB with THP; not all ways are equal — per-way"
    );
    let _ = writeln!(out, "resizing at work.");
}

fn render_fig13(r: &LabReport, out: &mut String) {
    let _ = writeln!(out, "{:<9} | {:>8} {:>8}", "App", "no THP", "THP");
    let _ = writeln!(out, "{}", "-".repeat(32));
    let mut vals = Vec::new();
    for app in App::all() {
        let (Some(plain), Some(thp)) = (
            r.metrics(app, PtKind::MeHpt, false, FULL),
            r.metrics(app, PtKind::MeHpt, true, FULL),
        ) else {
            let _ = writeln!(out, "{:<9} (cells missing or failed)", app.name());
            continue;
        };
        let fmt = |f: f64, ups: &[u64]| {
            if ups.iter().sum::<u64>() == 0 {
                "-".to_string()
            } else {
                format!("{f:.2}")
            }
        };
        if plain.upsizes_per_way_4k.iter().sum::<u64>() > 0 {
            vals.push(plain.moved_fraction_4k);
        }
        let _ = writeln!(
            out,
            "{:<9} | {:>8} {:>8}",
            app.name(),
            fmt(plain.moved_fraction_4k, &plain.upsizes_per_way_4k),
            fmt(thp.moved_fraction_4k, &thp.upsizes_per_way_4k),
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(32));
    let avg = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
    let _ = writeln!(out, "Average moved fraction (no THP): {avg:.2}");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper: close to the expected 0.5 for every application (out-of-"
    );
    let _ = writeln!(
        out,
        "place baselines move 1.0 of the entries). Chunk-size switches"
    );
    let _ = writeln!(
        out,
        "(at most one per run) are out-of-place and pull the mean above 0.5."
    );
}

fn render_fig14(r: &LabReport, out: &mut String) {
    let _ = writeln!(out, "{:<9} | {:>8} {:>8}", "App", "no THP", "THP");
    let _ = writeln!(out, "{}", "-".repeat(32));
    let mut total = 0u64;
    let mut n = 0u64;
    for app in App::all() {
        let (Some(plain), Some(thp)) = (
            r.metrics(app, PtKind::MeHpt, false, FULL),
            r.metrics(app, PtKind::MeHpt, true, FULL),
        ) else {
            let _ = writeln!(out, "{:<9} (cells missing or failed)", app.name());
            continue;
        };
        total += plain.l2p_entries_used + thp.l2p_entries_used;
        n += 2;
        let _ = writeln!(
            out,
            "{:<9} | {:>8} {:>8}",
            app.name(),
            plain.l2p_entries_used,
            thp.l2p_entries_used
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(32));
    let _ = writeln!(
        out,
        "Average entries used: {:.1} of 288",
        total as f64 / n.max(1) as f64
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper: between 11 (TC) and 195 (MUMmer); 52.5 on average; GUPS and"
    );
    let _ = writeln!(
        out,
        "SysBench use 192 (all 64 stolen-capacity entries of the three 4KB"
    );
    let _ = writeln!(out, "subtables).");
}

fn render_fig15(r: &LabReport, out: &mut String) {
    fn avg_way_phys(r: &LabReport, nodes: u64, variant: Variant) -> f64 {
        let mut total = 0.0;
        let mut ways = 0usize;
        for app in App::graph_apps() {
            let Some(m) = r
                .cell_at(app, PtKind::MeHpt, false, variant, nodes)
                .and_then(|c| c.metrics.as_ref())
            else {
                continue;
            };
            if m.way_phys_4k.is_empty() {
                // never instantiated: one smallest chunk per way
                let chunk = variant.config().chunk_policy.first() as f64;
                total += 3.0 * chunk;
                ways += 3;
            } else {
                total += m.way_phys_4k.iter().sum::<u64>() as f64;
                ways += m.way_phys_4k.len();
            }
        }
        total / ways.max(1) as f64
    }
    let _ = writeln!(
        out,
        "{:<14} | {:>16} {:>16}",
        "Graph nodes", "ME-HPT 1MB", "ME-HPT 1MB+8KB"
    );
    let _ = writeln!(out, "{}", "-".repeat(52));
    for nodes in [1_000u64, 10_000, 100_000] {
        let fixed = avg_way_phys(r, nodes, Variant::Fixed1Mb);
        let ladder = avg_way_phys(r, nodes, Variant::Full);
        let _ = writeln!(
            out,
            "{:<14} | {:>14.0}KB {:>14.0}KB",
            nodes,
            fixed / 1024.0,
            ladder / 1024.0
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper: ~16KB and ~128KB ways for 1K/10K nodes with the 8KB+1MB"
    );
    let _ = writeln!(
        out,
        "ladder, while the 1MB-only design burns a full 1MB per way;"
    );
    let _ = writeln!(out, "at 100K nodes both need about 1MB and converge.");
}

fn render_fig16(r: &LabReport, out: &mut String) {
    let mut hist: Vec<u64> = Vec::new();
    for app in App::all() {
        let Some(m) = r.metrics(app, PtKind::MeHpt, false, FULL) else {
            continue;
        };
        if hist.len() < m.kicks_histogram.len() {
            hist.resize(m.kicks_histogram.len(), 0);
        }
        for (dst, &src) in hist.iter_mut().zip(&m.kicks_histogram) {
            *dst += src;
        }
    }
    let total: u64 = hist.iter().sum();
    let _ = writeln!(out, "{:<14} {:>12} {:>10}", "re-insertions", "events", "P");
    let _ = writeln!(out, "{}", "-".repeat(38));
    let mut mean = 0.0;
    for (n, &count) in hist.iter().enumerate().take(12) {
        let p = count as f64 / total.max(1) as f64;
        mean += n as f64 * p;
        let bar = "#".repeat((p * 50.0).round() as usize);
        let _ = writeln!(out, "{:<14} {:>12} {:>9.3} {}", n, count, p, bar);
    }
    let tail: u64 = hist.iter().skip(12).sum();
    if tail > 0 {
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>9.3}",
            "12+",
            tail,
            tail as f64 / total.max(1) as f64
        );
    }
    mean += hist
        .iter()
        .enumerate()
        .skip(12)
        .map(|(n, &c)| n as f64 * c as f64 / total.max(1) as f64)
        .sum::<f64>();
    let _ = writeln!(out, "{}", "-".repeat(38));
    let _ = writeln!(
        out,
        "P(0 re-insertions) = {:.2}, mean = {:.2}",
        hist.first().copied().unwrap_or(0) as f64 / total.max(1) as f64,
        mean
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper: no re-insertion needed with probability 0.64; 0.7"
    );
    let _ = writeln!(out, "re-insertions per insertion or rehash on average.");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Tuning;

    #[test]
    fn preset_names_round_trip() {
        for p in PRESETS {
            assert_eq!(Preset::parse(p.name()), Some(p));
        }
        assert_eq!(Preset::parse("nope"), None);
    }

    #[test]
    fn grids_have_the_expected_cell_counts() {
        let t = Tuning::quick();
        assert_eq!(Preset::Table1.grid().expand(&t).len(), 44);
        assert_eq!(Preset::Table2.grid().expand(&t).len(), 0);
        // 3 apps × 2 kinds × 10 FMFI points.
        assert_eq!(Preset::Fig7.grid().expand(&t).len(), 60);
        assert_eq!(Preset::Fig8.grid().expand(&t).len(), 44);
        assert_eq!(Preset::Fig9.grid().expand(&t).len(), 66);
        // ECPT collapses to one variant: (1 + 3) × 11 apps × 2 thp.
        assert_eq!(Preset::Fig10.grid().expand(&t).len(), 88);
        assert_eq!(Preset::Fig11.grid().expand(&t).len(), 22);
        // 8 graph apps × 2 variants × 3 graph sizes.
        assert_eq!(Preset::Fig15.grid().expand(&t).len(), 48);
        assert_eq!(Preset::Fig16.grid().expand(&t).len(), 11);
    }

    #[test]
    fn table2_renders_without_any_cells() {
        let report = LabReport {
            preset: "table2".into(),
            scale: 1.0,
            base_seed: 0x5eed,
            seeds: 1,
            retries: 0,
            timeout_secs: None,
            fault: None,
            cells: vec![],
        };
        let s = Preset::Table2.render(&report);
        assert!(s.contains("Map space"));
        assert!(s.contains("8KB"));
    }

    #[test]
    fn renderers_tolerate_missing_cells() {
        let report = LabReport {
            preset: "x".into(),
            scale: 1.0,
            base_seed: 0,
            seeds: 1,
            retries: 0,
            timeout_secs: None,
            fault: None,
            cells: vec![],
        };
        for p in PRESETS {
            let s = p.render(&report);
            assert!(!s.is_empty());
        }
    }
}
