//! `mehpt-lab diff` — cell-by-cell comparison of two sweep reports.
//!
//! Two reports of the same grid (before/after a model change, two `--jobs`
//! settings, two machines) are matched by cell identity and compared on
//! the [`STAT_FIELDS`] headline metrics. A pair
//! of values counts as drift only if it falls outside *both* acceptance
//! bands:
//!
//! * the **tolerance band**: `|a - b| <= abs_tol + rel_tol * max(|a|, |b|)`
//!   (defaults are zero — exact equality, the right setting for
//!   determinism checks);
//! * the **CI band** (when both reports carry multi-seed stats and
//!   [`DiffOptions::ci_overlap`] is on): if the two 95% confidence
//!   intervals overlap, the difference is within the sweeps' own
//!   run-to-run noise and is not flagged.
//!
//! Cells present on only one side and per-cell status changes are always
//! drift. Cells that *failed* (panicked or timed out) on either side carry
//! no comparable metrics; their statuses are still compared, but their
//! fields are skipped and counted ([`DiffReport::cells_skipped`]) instead
//! of flagged as missing. The comparison reads schema v3 reports, and
//! falls back transparently to v2 (same per-cell shape, no failure
//! records) and to the flat v1 `metrics` block for reports written before
//! the replication axis existed.

use std::fmt::Write as _;

use crate::json::Json;
use crate::stats::STAT_FIELDS;

/// Acceptance bands for [`diff_documents`].
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Absolute tolerance per metric (0.0 = exact).
    pub abs_tol: f64,
    /// Relative tolerance per metric, as a fraction of the larger
    /// magnitude (0.0 = exact).
    pub rel_tol: f64,
    /// Accept differences whose 95% confidence intervals overlap.
    pub ci_overlap: bool,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            abs_tol: 0.0,
            rel_tol: 0.0,
            ci_overlap: true,
        }
    }
}

/// One out-of-tolerance difference.
#[derive(Clone, Debug)]
pub struct Drift {
    /// The cell's identity string.
    pub id: String,
    /// The drifting field (a stat field name, or `status`).
    pub field: String,
    /// Rendered value in the first report.
    pub a: String,
    /// Rendered value in the second report.
    pub b: String,
}

/// The outcome of comparing two reports.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Cells present in both reports and compared field-by-field.
    pub cells_compared: usize,
    /// Cells present in both reports but failed/timed-out on at least one
    /// side: status compared, metric fields skipped.
    pub cells_skipped: usize,
    /// Metric values compared across the compared cells.
    pub values_compared: usize,
    /// Out-of-tolerance differences, in first-report cell order.
    pub drifts: Vec<Drift>,
    /// Cell ids only in the first report.
    pub only_a: Vec<String>,
    /// Cell ids only in the second report.
    pub only_b: Vec<String>,
}

impl DiffReport {
    /// `true` when the reports agree within tolerance: no drifting values,
    /// no one-sided cells.
    pub fn clean(&self) -> bool {
        self.drifts.is_empty() && self.only_a.is_empty() && self.only_b.is_empty()
    }

    /// The compact human-readable comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let skipped = if self.cells_skipped > 0 {
            format!(" ({} failed/timed-out cell(s) skipped)", self.cells_skipped)
        } else {
            String::new()
        };
        if self.clean() {
            let _ = writeln!(
                out,
                "diff: {} cell(s), {} value(s): no drift{skipped}",
                self.cells_compared, self.values_compared
            );
            return out;
        }
        let _ = writeln!(
            out,
            "{:<44} {:<18} {:>16} {:>16}",
            "CELL", "FIELD", "A", "B"
        );
        let _ = writeln!(out, "{}", "-".repeat(97));
        for d in &self.drifts {
            let _ = writeln!(out, "{:<44} {:<18} {:>16} {:>16}", d.id, d.field, d.a, d.b);
        }
        for id in &self.only_a {
            let _ = writeln!(
                out,
                "{id:<44} {:<18} {:>16} {:>16}",
                "(cell)", "present", "missing"
            );
        }
        for id in &self.only_b {
            let _ = writeln!(
                out,
                "{id:<44} {:<18} {:>16} {:>16}",
                "(cell)", "missing", "present"
            );
        }
        let _ = writeln!(out, "{}", "-".repeat(97));
        let _ = writeln!(
            out,
            "diff: {} cell(s), {} value(s): {} drifted, {} only in A, {} only in B{skipped}",
            self.cells_compared,
            self.values_compared,
            self.drifts.len(),
            self.only_a.len(),
            self.only_b.len()
        );
        out
    }
}

/// Report labels of the statuses that leave a cell without usable metrics
/// (the serialized counterparts of `CellStatus::is_failure`).
fn failed_status(status: &str) -> bool {
    matches!(status, "failed" | "timed_out")
}

/// One side's view of a cell: status plus per-field (mean, ci95) pairs.
struct CellView<'a> {
    status: &'a str,
    cell: &'a Json,
}

impl<'a> CellView<'a> {
    fn new(cell: &'a Json) -> Option<CellView<'a>> {
        Some(CellView {
            status: cell.get("status")?.as_str()?,
            cell,
        })
    }

    /// The (mean, ci95) of one stat field. Prefers the v2 `stats` block;
    /// falls back to deriving the value from the flat v1 `metrics` block
    /// (ci 0.0 — single-seed reports have no band).
    fn field(&self, name: &str) -> Option<(f64, f64)> {
        if let Some(stats) = self.cell.get("stats").filter(|s| !matches!(s, Json::Null)) {
            let f = stats.get(name)?;
            return Some((f.get("mean")?.as_f64()?, f.get("ci95")?.as_f64()?));
        }
        let metrics = self.cell.get("metrics")?;
        if matches!(metrics, Json::Null) {
            return None;
        }
        let value = match name {
            "cycles_per_access" => {
                let cycles = metrics.get("total_cycles")?.as_f64()?;
                let accesses = metrics.get("accesses")?.as_f64()?;
                cycles / accesses.max(1.0)
            }
            _ => metrics.get(name)?.as_f64()?,
        };
        Some((value, 0.0))
    }
}

fn cells_by_id(doc: &Json) -> Result<Vec<(&str, CellView<'_>)>, String> {
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("report has no \"cells\" array (not a mehpt-lab report?)")?;
    cells
        .iter()
        .map(|c| {
            let id = c
                .get("id")
                .and_then(Json::as_str)
                .ok_or("cell without an \"id\"")?;
            let view = CellView::new(c).ok_or("cell without a \"status\"")?;
            Ok((id, view))
        })
        .collect()
}

fn within(a: (f64, f64), b: (f64, f64), opts: &DiffOptions) -> bool {
    let (va, ca) = a;
    let (vb, cb) = b;
    if (va - vb).abs() <= opts.abs_tol + opts.rel_tol * va.abs().max(vb.abs()) {
        return true;
    }
    // CI-overlap acceptance: only meaningful when at least one side
    // actually has a band (multi-seed stats), otherwise exactness rules.
    opts.ci_overlap && (ca > 0.0 || cb > 0.0) && va - ca <= vb + cb && vb - cb <= va + ca
}

fn fmt_value(value: f64, ci: f64) -> String {
    if ci > 0.0 {
        format!("{value:.4}±{ci:.4}")
    } else if value == value.trunc() && value.abs() < 1e15 {
        format!("{value}")
    } else {
        format!("{value:.6}")
    }
}

/// Compares two parsed report documents. Errors on documents that are not
/// lab reports; disagreement is expressed in the returned [`DiffReport`],
/// not as an error.
pub fn diff_documents(a: &Json, b: &Json, opts: &DiffOptions) -> Result<DiffReport, String> {
    let cells_a = cells_by_id(a)?;
    let cells_b = cells_by_id(b)?;
    let index_b: std::collections::HashMap<&str, &CellView<'_>> =
        cells_b.iter().map(|(id, v)| (*id, v)).collect();
    let index_a: std::collections::HashSet<&str> = cells_a.iter().map(|(id, _)| *id).collect();

    let mut report = DiffReport::default();
    for (id, va) in &cells_a {
        let Some(vb) = index_b.get(id) else {
            report.only_a.push(id.to_string());
            continue;
        };
        if va.status != vb.status {
            report.drifts.push(Drift {
                id: id.to_string(),
                field: "status".to_string(),
                a: va.status.to_string(),
                b: vb.status.to_string(),
            });
        }
        if failed_status(va.status) || failed_status(vb.status) {
            // A failed/timed-out side has no metrics to compare; the
            // status check above already told the whole story.
            report.cells_skipped += 1;
            continue;
        }
        report.cells_compared += 1;
        for name in STAT_FIELDS {
            match (va.field(name), vb.field(name)) {
                (Some(fa), Some(fb)) => {
                    report.values_compared += 1;
                    if !within(fa, fb, opts) {
                        report.drifts.push(Drift {
                            id: id.to_string(),
                            field: name.to_string(),
                            a: fmt_value(fa.0, fa.1),
                            b: fmt_value(fb.0, fb.1),
                        });
                    }
                }
                (None, None) => {}
                (fa, fb) => {
                    report.drifts.push(Drift {
                        id: id.to_string(),
                        field: name.to_string(),
                        a: if fa.is_some() { "present" } else { "missing" }.to_string(),
                        b: if fb.is_some() { "present" } else { "missing" }.to_string(),
                    });
                }
            }
        }
    }
    for (id, _) in &cells_b {
        if !index_a.contains(id) {
            report.only_b.push(id.to_string());
        }
    }
    Ok(report)
}

/// Convenience wrapper: parse two report texts and diff them.
pub fn diff_texts(a: &str, b: &str, opts: &DiffOptions) -> Result<DiffReport, String> {
    let a = Json::parse(a).map_err(|e| format!("first report: {e}"))?;
    let b = Json::parse(b).map_err(|e| format!("second report: {e}"))?;
    diff_documents(&a, &b, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: &str, status: &str, mean: f64, ci: f64) -> String {
        let stats_fields: Vec<String> = STAT_FIELDS
            .iter()
            .map(|f| format!("\"{f}\": {{\"mean\": {mean}, \"min\": {mean}, \"max\": {mean}, \"ci95\": {ci}}}"))
            .collect();
        format!(
            "{{\"id\": \"{id}\", \"status\": \"{status}\", \"stats\": {{\"replicates\": 3, {}}}}}",
            stats_fields.join(", ")
        )
    }

    fn doc(cells: &[String]) -> String {
        format!(
            "{{\"schema_version\": 2, \"cells\": [{}]}}",
            cells.join(", ")
        )
    }

    #[test]
    fn identical_reports_are_clean() {
        let a = doc(&[
            cell("c1", "ok", 100.0, 0.0),
            cell("c2", "aborted", 5.0, 0.0),
        ]);
        let d = diff_texts(&a, &a, &DiffOptions::default()).unwrap();
        assert!(d.clean(), "{}", d.render());
        assert_eq!(d.cells_compared, 2);
        assert_eq!(d.values_compared, 2 * STAT_FIELDS.len());
        assert!(d.render().contains("no drift"));
    }

    #[test]
    fn exact_default_flags_any_numeric_change() {
        let a = doc(&[cell("c1", "ok", 100.0, 0.0)]);
        let b = doc(&[cell("c1", "ok", 100.5, 0.0)]);
        let d = diff_texts(&a, &b, &DiffOptions::default()).unwrap();
        assert!(!d.clean());
        assert_eq!(d.drifts.len(), STAT_FIELDS.len());
        assert!(d.render().contains("cycles_per_access"));
    }

    #[test]
    fn tolerance_bands_accept_small_drift() {
        let a = doc(&[cell("c1", "ok", 100.0, 0.0)]);
        let b = doc(&[cell("c1", "ok", 100.5, 0.0)]);
        let rel = DiffOptions {
            rel_tol: 0.01,
            ..DiffOptions::default()
        };
        assert!(diff_texts(&a, &b, &rel).unwrap().clean());
        let abs = DiffOptions {
            abs_tol: 0.5,
            ..DiffOptions::default()
        };
        assert!(diff_texts(&a, &b, &abs).unwrap().clean());
    }

    #[test]
    fn overlapping_cis_are_not_drift() {
        let a = doc(&[cell("c1", "ok", 100.0, 3.0)]);
        let b = doc(&[cell("c1", "ok", 102.0, 1.0)]);
        let d = diff_texts(&a, &b, &DiffOptions::default()).unwrap();
        assert!(d.clean(), "CI bands [97,103] and [101,103] overlap");
        let no_ci = DiffOptions {
            ci_overlap: false,
            ..DiffOptions::default()
        };
        assert!(!diff_texts(&a, &b, &no_ci).unwrap().clean());
        // Disjoint intervals drift even with CI-overlap on.
        let c = doc(&[cell("c1", "ok", 110.0, 1.0)]);
        assert!(!diff_texts(&a, &c, &DiffOptions::default()).unwrap().clean());
    }

    #[test]
    fn status_changes_and_one_sided_cells_are_drift() {
        let a = doc(&[cell("c1", "ok", 1.0, 0.0), cell("only-a", "ok", 1.0, 0.0)]);
        let b = doc(&[
            cell("c1", "failed", 1.0, 0.0),
            cell("only-b", "ok", 1.0, 0.0),
        ]);
        let d = diff_texts(&a, &b, &DiffOptions::default()).unwrap();
        assert!(!d.clean());
        assert!(d.drifts.iter().any(|x| x.field == "status"));
        assert_eq!(d.only_a, vec!["only-a".to_string()]);
        assert_eq!(d.only_b, vec!["only-b".to_string()]);
        let table = d.render();
        assert!(table.contains("only-a") && table.contains("missing"));
    }

    #[test]
    fn failed_cells_are_skipped_and_counted_not_errors() {
        // Failed on both sides with matching statuses: clean, skipped.
        // (A real failed cell has "stats": null — no stats block at all.)
        let failed = "{\"id\": \"c1\", \"status\": \"failed\", \"stats\": null, \
                      \"metrics\": null}"
            .to_string();
        let timed = "{\"id\": \"c1\", \"status\": \"timed_out\", \"stats\": null, \
                     \"metrics\": null}"
            .to_string();
        let a = doc(&[failed.clone(), cell("c2", "ok", 7.0, 0.0)]);
        let d = diff_texts(&a, &a, &DiffOptions::default()).unwrap();
        assert!(d.clean(), "{}", d.render());
        assert_eq!(d.cells_skipped, 1);
        assert_eq!(d.cells_compared, 1);
        assert!(d.render().contains("1 failed/timed-out cell(s) skipped"));

        // Failed on one side only: the status drift is the whole story —
        // no bogus present/missing drifts for every stat field.
        let b = doc(&[cell("c1", "ok", 7.0, 0.0), cell("c2", "ok", 7.0, 0.0)]);
        let d = diff_texts(&a, &b, &DiffOptions::default()).unwrap();
        assert!(!d.clean());
        assert_eq!(d.drifts.len(), 1);
        assert_eq!(d.drifts[0].field, "status");
        assert_eq!(d.cells_skipped, 1);

        // A timed-out vs failed pair: status drift, still skipped.
        let c = doc(&[timed, cell("c2", "ok", 7.0, 0.0)]);
        let d = diff_texts(&a, &c, &DiffOptions::default()).unwrap();
        assert_eq!(d.drifts.len(), 1);
        assert_eq!(
            (d.drifts[0].a.as_str(), d.drifts[0].b.as_str()),
            ("failed", "timed_out")
        );
        assert_eq!(d.cells_skipped, 1);
    }

    #[test]
    fn v1_metrics_fallback_compares_flat_fields() {
        let v1 = |cycles: u64| {
            format!(
                "{{\"cells\": [{{\"id\": \"c\", \"status\": \"ok\", \"metrics\": \
                 {{\"accesses\": 100, \"total_cycles\": {cycles}, \"tlb_miss_rate\": 0.5, \
                 \"mean_walk_cycles\": 30.0, \"faults\": 1, \"pt_peak_bytes\": 4096, \
                 \"pt_final_bytes\": 4096, \"pt_max_contiguous\": 4096}}}}]}}"
            )
        };
        let d = diff_texts(&v1(1000), &v1(1000), &DiffOptions::default()).unwrap();
        assert!(d.clean());
        let d = diff_texts(&v1(1000), &v1(2000), &DiffOptions::default()).unwrap();
        assert!(d.drifts.iter().any(|x| x.field == "total_cycles"));
        assert!(d.drifts.iter().any(|x| x.field == "cycles_per_access"));
    }

    #[test]
    fn non_reports_error_out() {
        assert!(diff_texts("{}", "{}", &DiffOptions::default()).is_err());
        assert!(diff_texts("not json", "{}", &DiffOptions::default()).is_err());
    }
}
