use core::fmt;

/// A translation granularity supported by the modeled x86-64-like architecture.
///
/// The paper's evaluation uses three page sizes (Section V-A): the base 4KB
/// page, the 2MB huge page (PMD level) and the 1GB page (PUD level). Hashed
/// page tables keep one table per page size, so most structures in this
/// workspace are parameterized by `PageSize`.
///
/// # Examples
///
/// ```
/// use mehpt_types::PageSize;
///
/// assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
/// assert_eq!(PageSize::Huge2M.shift(), 21);
/// assert_eq!(PageSize::Giant1G.pages_4k(), 262_144);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// A 4KB base page (PTE level).
    Base4K,
    /// A 2MB huge page (PMD level).
    Huge2M,
    /// A 1GB page (PUD level).
    Giant1G,
}

/// All supported page sizes, smallest first.
///
/// Iterating this array is the canonical way to visit the per-page-size
/// tables of an HPT design.
pub const PAGE_SIZES: [PageSize; 3] = [PageSize::Base4K, PageSize::Huge2M, PageSize::Giant1G];

impl PageSize {
    /// The size of one page in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        1u64 << self.shift()
    }

    /// The number of low address bits covered by the page offset.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => 12,
            PageSize::Huge2M => 21,
            PageSize::Giant1G => 30,
        }
    }

    /// Mask selecting the page-offset bits of an address.
    #[inline]
    pub const fn offset_mask(self) -> u64 {
        self.bytes() - 1
    }

    /// How many 4KB frames one page of this size spans.
    #[inline]
    pub const fn pages_4k(self) -> u64 {
        1u64 << (self.shift() - 12)
    }

    /// A stable, dense index (0 for 4KB, 1 for 2MB, 2 for 1GB) used to index
    /// per-page-size arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            PageSize::Base4K => 0,
            PageSize::Huge2M => 1,
            PageSize::Giant1G => 2,
        }
    }

    /// The inverse of [`PageSize::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    pub const fn from_index(index: usize) -> PageSize {
        match index {
            0 => PageSize::Base4K,
            1 => PageSize::Huge2M,
            2 => PageSize::Giant1G,
            _ => panic!("page size index out of range"),
        }
    }

    /// A short human-readable label (`"4KB"`, `"2MB"`, `"1GB"`).
    #[inline]
    pub const fn label(self) -> &'static str {
        match self {
            PageSize::Base4K => "4KB",
            PageSize::Huge2M => "2MB",
            PageSize::Giant1G => "1GB",
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_powers_of_two() {
        for ps in PAGE_SIZES {
            assert!(ps.bytes().is_power_of_two());
            assert_eq!(ps.bytes(), 1 << ps.shift());
        }
    }

    #[test]
    fn byte_values_match_architecture() {
        assert_eq!(PageSize::Base4K.bytes(), 4096);
        assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Giant1G.bytes(), 1024 * 1024 * 1024);
    }

    #[test]
    fn index_round_trips() {
        for ps in PAGE_SIZES {
            assert_eq!(PageSize::from_index(ps.index()), ps);
        }
    }

    #[test]
    fn offset_mask_covers_page() {
        assert_eq!(PageSize::Base4K.offset_mask(), 0xfff);
        assert_eq!(PageSize::Huge2M.offset_mask(), 0x1f_ffff);
    }

    #[test]
    fn pages_4k_spans() {
        assert_eq!(PageSize::Base4K.pages_4k(), 1);
        assert_eq!(PageSize::Huge2M.pages_4k(), 512);
        assert_eq!(PageSize::Giant1G.pages_4k(), 512 * 512);
    }

    #[test]
    fn ordering_smallest_first() {
        assert!(PageSize::Base4K < PageSize::Huge2M);
        assert!(PageSize::Huge2M < PageSize::Giant1G);
    }

    #[test]
    fn display_labels() {
        assert_eq!(PageSize::Base4K.to_string(), "4KB");
        assert_eq!(PageSize::Giant1G.to_string(), "1GB");
    }
}
