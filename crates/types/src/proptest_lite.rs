//! A minimal, self-contained property-testing harness.
//!
//! The workspace builds with no crates-io dependencies, so the usual
//! `proptest` crate is replaced by this module: a deterministic randomized
//! case runner driven by [`Xoshiro256`]. Each test
//! runs `cases` independently seeded inputs; a failing case reports the
//! exact seed that reproduces it, and `MEHPT_PROP_SEED` replays just that
//! seed.
//!
//! Environment knobs:
//!
//! * `MEHPT_PROP_CASES` — overrides the case count of every property test
//!   (e.g. `MEHPT_PROP_CASES=1000` for a deeper soak).
//! * `MEHPT_PROP_SEED`  — runs a single case with the given seed (decimal
//!   or `0x`-prefixed hex), as printed by a failure report.
//!
//! # Examples
//!
//! ```
//! use mehpt_types::proptest_lite::{check, Gen};
//!
//! check("sum_is_commutative", 64, |g: &mut Gen| {
//!     let (a, b) = (g.u32(), g.u32());
//!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, Xoshiro256};

/// A source of randomized test inputs for one property-test case.
///
/// Thin wrapper over [`Xoshiro256`] with the generation helpers the
/// workspace's property tests need.
#[derive(Clone, Debug)]
pub struct Gen {
    rng: Xoshiro256,
    seed: u64,
}

impl Gen {
    /// Creates a generator for one case from its seed.
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: Xoshiro256::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this case was created from (for failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The next 64 uniformly distributed bits.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u64() as u32
    }

    /// A uniform `u16`.
    pub fn u16(&mut self) -> u16 {
        self.rng.next_u64() as u16
    }

    /// A uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    /// A uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.rng.next_below(bound)
    }

    /// A uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.rng.next_below(bound as u64) as usize
    }

    /// A uniform length in `[0, max_len]` — the size driver for
    /// variable-length inputs.
    pub fn len(&mut self, max_len: usize) -> usize {
        self.index(max_len + 1)
    }

    /// Chooses an index with the given relative weights (the analogue of
    /// `prop_oneof!` with weights).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weights must not be empty or all-zero");
        let mut roll = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if roll < w as u64 {
                return i;
            }
            roll -= w as u64;
        }
        unreachable!("roll exceeded the total weight")
    }

    /// A vector of up to `max_len` values drawn from `f`.
    pub fn vec_of<T>(&mut self, max_len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.len(max_len);
        (0..n).map(|_| f(self)).collect()
    }
}

fn env_u64(key: &str) -> Option<u64> {
    let v = std::env::var(key).ok()?;
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Derives the deterministic seed of case `i` of the test named `name`.
///
/// Mixing the test name in keeps different properties from exploring
/// correlated input streams even though they share case indices.
pub fn case_seed(name: &str, i: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut s = h ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut s)
}

/// Runs `body` against `cases` independently seeded [`Gen`]s.
///
/// On a failing case the panic is re-raised after printing the test name,
/// case number and seed, plus the `MEHPT_PROP_SEED` incantation that
/// replays exactly that input.
///
/// # Panics
///
/// Propagates the first failing case's panic.
pub fn check(name: &str, cases: u64, body: impl Fn(&mut Gen)) {
    if let Some(seed) = env_u64("MEHPT_PROP_SEED") {
        let mut g = Gen::from_seed(seed);
        body(&mut g);
        return;
    }
    let cases = env_u64("MEHPT_PROP_CASES").unwrap_or(cases);
    for i in 0..cases {
        let seed = case_seed(name, i);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::from_seed(seed);
            body(&mut g);
        }));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest_lite: property {name:?} failed at case {i}/{cases} \
                 (seed {seed:#018x}); replay with MEHPT_PROP_SEED={seed:#x}"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic_per_seed() {
        let mut a = Gen::from_seed(7);
        let mut b = Gen::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn case_seeds_differ_across_cases_and_names() {
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
    }

    #[test]
    fn weighted_respects_zero_weight_arms() {
        let mut g = Gen::from_seed(1);
        for _ in 0..1000 {
            let pick = g.weighted(&[3, 0, 1]);
            assert_ne!(pick, 1, "zero-weight arm must never be chosen");
        }
    }

    #[test]
    fn vec_of_respects_bounds() {
        let mut g = Gen::from_seed(2);
        for _ in 0..100 {
            let v = g.vec_of(17, |g| g.u8());
            assert!(v.len() <= 17);
        }
    }

    #[test]
    fn check_runs_every_case() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let count = AtomicU64::new(0);
        check("counting", 32, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        // MEHPT_PROP_CASES may rescale the count; it still must have run.
        assert!(count.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn failing_case_reports_and_propagates() {
        let outcome = std::panic::catch_unwind(|| {
            check("always_fails", 4, |_| panic!("boom"));
        });
        assert!(outcome.is_err());
    }
}
