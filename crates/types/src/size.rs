use core::fmt;

/// One kibibyte (1024 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;
/// One tebibyte.
pub const TIB: u64 = 1024 * GIB;

/// A byte quantity with human-readable `Display` formatting.
///
/// Used by the benchmark harness to print the paper's tables with the same
/// units the paper uses (KB / MB / GB / TB / PB).
///
/// # Examples
///
/// ```
/// use mehpt_types::ByteSize;
///
/// assert_eq!(ByteSize(64 * 1024 * 1024).to_string(), "64MB");
/// assert_eq!(ByteSize(1536).to_string(), "1.50KB");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Constructs a size from a count of kibibytes.
    pub const fn from_kib(kib: u64) -> ByteSize {
        ByteSize(kib * KIB)
    }

    /// Constructs a size from a count of mebibytes.
    pub const fn from_mib(mib: u64) -> ByteSize {
        ByteSize(mib * MIB)
    }

    /// Constructs a size from a count of gibibytes.
    pub const fn from_gib(gib: u64) -> ByteSize {
        ByteSize(gib * GIB)
    }

    /// The quantity in bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// The quantity in mebibytes, as a float (for table output).
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// The quantity in kibibytes, as a float (for table output).
    pub fn as_kib_f64(self) -> f64 {
        self.0 as f64 / KIB as f64
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> ByteSize {
        ByteSize(bytes)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [(u64, &str); 5] = [
            (TIB * 1024, "PB"),
            (TIB, "TB"),
            (GIB, "GB"),
            (MIB, "MB"),
            (KIB, "KB"),
        ];
        for (unit, suffix) in UNITS {
            if self.0 >= unit {
                return if self.0 % unit == 0 {
                    write!(f, "{}{}", self.0 / unit, suffix)
                } else {
                    write!(f, "{:.2}{}", self.0 as f64 / unit as f64, suffix)
                };
            }
        }
        write!(f, "{}B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_units_print_without_decimals() {
        assert_eq!(ByteSize(8 * KIB).to_string(), "8KB");
        assert_eq!(ByteSize(MIB).to_string(), "1MB");
        assert_eq!(ByteSize(3 * GIB).to_string(), "3GB");
        assert_eq!(ByteSize(6 * TIB).to_string(), "6TB");
        assert_eq!(ByteSize(3 * 1024 * TIB).to_string(), "3PB");
    }

    #[test]
    fn inexact_units_print_two_decimals() {
        assert_eq!(ByteSize(1536).to_string(), "1.50KB");
        assert_eq!(ByteSize(MIB + MIB / 2).to_string(), "1.50MB");
    }

    #[test]
    fn tiny_sizes_print_bytes() {
        assert_eq!(ByteSize(0).to_string(), "0B");
        assert_eq!(ByteSize(512).to_string(), "512B");
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(ByteSize::from_kib(8), ByteSize(8192));
        assert_eq!(ByteSize::from_mib(1), ByteSize(MIB));
        assert_eq!(ByteSize::from_gib(2), ByteSize(2 * GIB));
    }

    #[test]
    fn float_views() {
        assert_eq!(ByteSize(MIB).as_mib_f64(), 1.0);
        assert_eq!(ByteSize(512).as_kib_f64(), 0.5);
    }
}
