//! Common vocabulary types shared by every crate in the ME-HPT workspace.
//!
//! This crate defines the small, dependency-free foundation used throughout
//! the reproduction of *Memory-Efficient Hashed Page Tables* (HPCA 2023):
//!
//! * [`VirtAddr`], [`PhysAddr`], [`Vpn`], [`Ppn`] — newtypes for the two
//!   address spaces and their page numbers ([C-NEWTYPE]).
//! * [`PageSize`] — the three translation granularities supported by the
//!   modeled architecture (4KB, 2MB, 1GB).
//! * [`rng`] — a small deterministic pseudo-random number generator so that
//!   every simulation in the workspace is exactly reproducible from a seed.
//! * [`proptest_lite`] — a dependency-free property-testing harness (the
//!   workspace builds offline, with no crates-io dependencies).
//! * [`ByteSize`] — human-readable formatting of byte quantities, used by the
//!   benchmark harness when printing the paper's tables.
//!
//! # Examples
//!
//! ```
//! use mehpt_types::{PageSize, VirtAddr};
//!
//! let va = VirtAddr::new(0x7f00_1234_5678);
//! assert_eq!(va.vpn(PageSize::Base4K).0, 0x7f00_1234_5678 >> 12);
//! assert_eq!(va.page_offset(PageSize::Base4K), 0x678);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod page;
pub mod proptest_lite;
pub mod rng;
mod size;

pub use addr::{PhysAddr, Ppn, VirtAddr, Vpn};
pub use page::{PageSize, PAGE_SIZES};
pub use size::{ByteSize, GIB, KIB, MIB, TIB};
