//! A small deterministic pseudo-random number generator.
//!
//! Every stochastic decision in the workspace — workload address streams, the
//! random way choice of cuckoo insertion, the fragmenter's allocation pattern —
//! draws from [`Xoshiro256`] seeded explicitly, so that a simulation run is a
//! pure function of its configuration. This is what lets the benchmark
//! harness regenerate the paper's figures bit-identically across runs.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded via splitmix64,
//! which is the standard, well-tested construction for non-cryptographic
//! simulation RNGs.
//!
//! # Examples
//!
//! ```
//! use mehpt_types::rng::Xoshiro256;
//!
//! let mut a = Xoshiro256::seed_from_u64(42);
//! let mut b = Xoshiro256::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// Advances a splitmix64 state and returns the next output.
///
/// Used to expand a single `u64` seed into the 256-bit xoshiro state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A xoshiro256++ pseudo-random number generator.
///
/// Deterministic, fast (sub-nanosecond per draw), and with 256 bits of state —
/// far more than the simulation needs. Not cryptographically secure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed, expanding it with splitmix64.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Splits off an independent generator for a sub-component.
    ///
    /// Deriving child generators keeps component streams decoupled: adding a
    /// draw in one component does not perturb another component's stream.
    pub fn split(&mut self, label: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64() ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.next_below(8) as usize] += 1;
        }
        for c in counts {
            // Each bucket expects 10_000; allow 5% slack.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bool_matches_probability() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.next_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = Xoshiro256::seed_from_u64(9);
        let mut a = root.split(1);
        let mut b = root.split(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from_u64(0).next_below(0);
    }
}
