use core::fmt;
use core::ops::{Add, Sub};

use crate::PageSize;

/// A virtual address in the simulated process address space.
///
/// The modeled architecture is x86-64-like with a 48-bit canonical virtual
/// address space (the paper's Figure 1 shows the 4-level translation of
/// `VA[47:0]`).
///
/// # Examples
///
/// ```
/// use mehpt_types::{PageSize, VirtAddr};
///
/// let va = VirtAddr::new(0x1234_5678);
/// assert_eq!(va.vpn(PageSize::Base4K).0, 0x12345);
/// assert_eq!(va.page_offset(PageSize::Base4K), 0x678);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

/// A physical address in the simulated machine memory.
///
/// Physical addresses are 46 bits wide, matching Section V-B of the paper
/// ("With a physical address of 46 bits, the base address of an 8KB chunk is
/// 33 bits followed by 13 zeros").
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

/// A virtual page number: a [`VirtAddr`] shifted right by the page-size shift.
///
/// A `Vpn` is only meaningful together with the [`PageSize`] it was derived
/// from; APIs in this workspace always pass the two together or fix the page
/// size by construction.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u64);

/// A physical page number (frame number) for a given [`PageSize`].
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ppn(pub u64);

impl VirtAddr {
    /// The number of implemented virtual-address bits.
    pub const BITS: u32 = 48;

    /// Creates a virtual address, truncating to the implemented 48 bits.
    #[inline]
    pub const fn new(raw: u64) -> VirtAddr {
        VirtAddr(raw & ((1 << Self::BITS) - 1))
    }

    /// The virtual page number of the page (of size `ps`) containing this
    /// address.
    #[inline]
    pub const fn vpn(self, ps: PageSize) -> Vpn {
        Vpn(self.0 >> ps.shift())
    }

    /// The offset of this address within its page of size `ps`.
    #[inline]
    pub const fn page_offset(self, ps: PageSize) -> u64 {
        self.0 & ps.offset_mask()
    }

    /// Rounds this address down to the containing page boundary.
    #[inline]
    pub const fn page_base(self, ps: PageSize) -> VirtAddr {
        VirtAddr(self.0 & !ps.offset_mask())
    }

    /// Whether the address is aligned to a page of size `ps`.
    #[inline]
    pub const fn is_page_aligned(self, ps: PageSize) -> bool {
        self.0 & ps.offset_mask() == 0
    }
}

impl PhysAddr {
    /// The number of implemented physical-address bits (Section V-B).
    pub const BITS: u32 = 46;

    /// Creates a physical address, truncating to the implemented 46 bits.
    #[inline]
    pub const fn new(raw: u64) -> PhysAddr {
        PhysAddr(raw & ((1 << Self::BITS) - 1))
    }

    /// The 64-byte cache line number containing this address.
    #[inline]
    pub const fn line(self) -> u64 {
        self.0 >> 6
    }

    /// The frame number of the 4KB frame containing this address.
    #[inline]
    pub const fn frame_4k(self) -> u64 {
        self.0 >> 12
    }
}

impl Vpn {
    /// Reconstructs the base virtual address of this page.
    #[inline]
    pub const fn base_addr(self, ps: PageSize) -> VirtAddr {
        VirtAddr(self.0 << ps.shift())
    }

    /// The VPN of the containing page of a *larger* page size.
    ///
    /// For example the 2MB-page VPN containing a 4KB-page VPN.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `to` is smaller than `from`.
    #[inline]
    pub fn containing(self, from: PageSize, to: PageSize) -> Vpn {
        debug_assert!(to >= from, "containing() requires a larger page size");
        Vpn(self.0 >> (to.shift() - from.shift()))
    }
}

impl Ppn {
    /// Reconstructs the base physical address of this frame.
    #[inline]
    pub const fn base_addr(self, ps: PageSize) -> PhysAddr {
        PhysAddr(self.0 << ps.shift())
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> VirtAddr {
        VirtAddr::new(raw)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> PhysAddr {
        PhysAddr::new(raw)
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;

    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr::new(self.0.wrapping_add(rhs))
    }
}

impl Sub<VirtAddr> for VirtAddr {
    type Output = u64;

    fn sub(self, rhs: VirtAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl Add<u64> for PhysAddr {
    type Output = PhysAddr;

    fn add(self, rhs: u64) -> PhysAddr {
        PhysAddr::new(self.0.wrapping_add(rhs))
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vpn({:#x})", self.0)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ppn({:#x})", self.0)
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_truncates_to_48_bits() {
        let va = VirtAddr::new(u64::MAX);
        assert_eq!(va.0, (1 << 48) - 1);
    }

    #[test]
    fn phys_addr_truncates_to_46_bits() {
        let pa = PhysAddr::new(u64::MAX);
        assert_eq!(pa.0, (1 << 46) - 1);
    }

    #[test]
    fn vpn_and_offset_partition_the_address() {
        let va = VirtAddr::new(0xdead_beef_cafe);
        for ps in crate::PAGE_SIZES {
            let rebuilt = va.vpn(ps).base_addr(ps).0 + va.page_offset(ps);
            assert_eq!(rebuilt, va.0);
        }
    }

    #[test]
    fn page_base_is_aligned() {
        let va = VirtAddr::new(0x1_2345_6789);
        for ps in crate::PAGE_SIZES {
            assert!(va.page_base(ps).is_page_aligned(ps));
            assert!(va.page_base(ps).0 <= va.0);
        }
    }

    #[test]
    fn containing_vpn_crosses_page_sizes() {
        let va = VirtAddr::new(0x4020_1000);
        let small = va.vpn(PageSize::Base4K);
        let huge = va.vpn(PageSize::Huge2M);
        assert_eq!(small.containing(PageSize::Base4K, PageSize::Huge2M), huge);
    }

    #[test]
    fn arithmetic_round_trips() {
        let a = VirtAddr::new(0x1000);
        assert_eq!((a + 0x234).0, 0x1234);
        assert_eq!((a + 0x234) - a, 0x234);
    }

    #[test]
    fn line_and_frame_helpers() {
        let pa = PhysAddr::new(0x1040);
        assert_eq!(pa.line(), 0x41);
        assert_eq!(pa.frame_4k(), 1);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", VirtAddr::default()).is_empty());
        assert!(!format!("{:?}", Ppn::default()).is_empty());
    }
}
