use mehpt_tlb::{MemoryModel, SetAssocCache};
use mehpt_types::{PageSize, Ppn, VirtAddr};

use crate::table::Step;
use crate::RadixPageTable;

/// The outcome of one timed page walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkResult {
    /// The translation found, or `None` on a page fault.
    pub translation: Option<(Ppn, PageSize)>,
    /// Total walk latency in cycles (PWC probe + memory accesses).
    pub cycles: u64,
    /// Memory accesses performed (the paper's "up to four memory accesses
    /// in sequence").
    pub memory_accesses: u32,
}

/// The hardware radix page walker with page-walk caches.
///
/// Models Table III's PWC: "3 levels, 32 entries/level, 4 cycles RT, fully
/// associative". `pwc[0]` caches PGD entries (keyed by `VA[47:39]`),
/// `pwc[1]` PUD entries (`VA[47:30]`), `pwc[2]` PMD entries (`VA[47:21]`).
/// A hit in the deepest level skips all upper-level memory accesses, so a
/// warm 4KB walk is a single PTE access; a cold walk takes four dependent
/// accesses — the radix scalability problem the paper opens with.
///
/// # Examples
///
/// ```
/// use mehpt_mem::PhysMem;
/// use mehpt_radix::{RadixPageTable, RadixWalker};
/// use mehpt_tlb::MemoryModel;
/// use mehpt_types::{PageSize, Ppn, VirtAddr, MIB};
///
/// let mut mem = PhysMem::new(64 * MIB);
/// let mut pt = RadixPageTable::new(&mut mem)?;
/// let va = VirtAddr::new(0x5000_1000);
/// pt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(1), &mut mem)?;
///
/// let mut walker = RadixWalker::paper_default();
/// let mut dram = MemoryModel::paper_default();
/// let cold = walker.walk(&pt, va, &mut dram);
/// assert_eq!(cold.memory_accesses, 4);
/// let warm = walker.walk(&pt, va, &mut dram);
/// assert_eq!(warm.memory_accesses, 1); // PWC skips to the PTE level
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct RadixWalker {
    /// One cache per non-leaf tree level (up to 4 for a 5-level tree).
    pwc: Vec<SetAssocCache>,
    pwc_latency: u64,
    walks: u64,
    total_cycles: u64,
    total_accesses: u64,
    pwc_hits: [u64; 4],
}

impl RadixWalker {
    /// Builds a walker with Table III's PWC geometry.
    pub fn paper_default() -> RadixWalker {
        RadixWalker::new(32, 4)
    }

    /// Builds a walker with `entries_per_level` fully associative PWC
    /// entries per level and the given PWC latency in cycles.
    pub fn new(entries_per_level: usize, pwc_latency: u64) -> RadixWalker {
        RadixWalker {
            pwc: (0..4)
                .map(|_| SetAssocCache::fully_associative(entries_per_level))
                .collect(),
            pwc_latency,
            walks: 0,
            total_cycles: 0,
            total_accesses: 0,
            pwc_hits: [0; 4],
        }
    }

    /// The VA prefix an entry at `level` of an `levels`-deep tree covers.
    fn pwc_key(va: VirtAddr, level: usize, levels: usize) -> u64 {
        va.0 >> (12 + 9 * (levels - 1 - level))
    }

    /// Performs one timed page walk for `va`.
    ///
    /// Memory accesses for the levels not covered by a PWC hit are charged
    /// through `mem`; traversed node entries are installed in the PWC.
    pub fn walk(&mut self, pt: &RadixPageTable, va: VirtAddr, mem: &mut MemoryModel) -> WalkResult {
        self.walks += 1;
        let levels = pt.levels();
        let path = pt.walk_path(va);
        // Probe the PWCs deepest-first (they are searched in parallel in
        // hardware; one latency charge).
        let mut cycles = self.pwc_latency;
        let mut start_level = 0;
        for level in (0..levels - 1).rev() {
            // A PWC entry is only usable if the walk actually traverses a
            // node entry at that level (i.e. the path is long enough).
            if path.len() > level + 1 && self.pwc[level].contains(Self::pwc_key(va, level, levels))
            {
                self.pwc_hits[level] += 1;
                start_level = level + 1;
                break;
            }
        }
        let mut accesses = 0;
        for (addr, _) in path.iter().skip(start_level) {
            cycles += mem.access(*addr);
            accesses += 1;
        }
        // Install traversed node entries.
        for (level, (_, step)) in path.iter().enumerate() {
            if *step == Step::Node && level < levels - 1 {
                self.pwc[level].fill(Self::pwc_key(va, level, levels));
            }
        }
        let translation = match path.last() {
            Some((_, Step::Leaf(ppn, ps))) => Some((*ppn, *ps)),
            _ => None,
        };
        self.total_cycles += cycles;
        self.total_accesses += accesses as u64;
        WalkResult {
            translation,
            cycles,
            memory_accesses: accesses,
        }
    }

    /// Flushes the page-walk caches (context switch).
    pub fn flush(&mut self) {
        for c in &mut self.pwc {
            c.flush();
        }
    }

    /// Walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Mean memory accesses per walk.
    pub fn mean_accesses(&self) -> f64 {
        if self.walks == 0 {
            return 0.0;
        }
        self.total_accesses as f64 / self.walks as f64
    }

    /// Mean walk latency in cycles.
    pub fn mean_cycles(&self) -> f64 {
        if self.walks == 0 {
            return 0.0;
        }
        self.total_cycles as f64 / self.walks as f64
    }

    /// PWC hits per level, root-most first.
    pub fn pwc_hit_counts(&self) -> [u64; 4] {
        self.pwc_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mehpt_mem::{AllocCostModel, PhysMem};
    use mehpt_types::{Vpn, GIB};

    fn setup() -> (PhysMem, RadixPageTable, RadixWalker, MemoryModel) {
        let mut mem = PhysMem::with_cost_model(GIB, AllocCostModel::zero_cost());
        let pt = RadixPageTable::new(&mut mem).unwrap();
        (
            mem,
            pt,
            RadixWalker::paper_default(),
            MemoryModel::paper_default(),
        )
    }

    #[test]
    fn cold_walk_is_four_dependent_accesses() {
        let (mut mem, mut pt, mut walker, mut dram) = setup();
        let va = VirtAddr::new(0x7000_0000_1000);
        pt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(5), &mut mem)
            .unwrap();
        let r = walker.walk(&pt, va, &mut dram);
        assert_eq!(r.memory_accesses, 4);
        assert_eq!(r.translation, Some((Ppn(5), PageSize::Base4K)));
        // 4 cold memory accesses at 200 cycles + 4-cycle PWC probe.
        assert_eq!(r.cycles, 4 + 4 * 200);
    }

    #[test]
    fn pwc_skips_upper_levels() {
        let (mut mem, mut pt, mut walker, mut dram) = setup();
        let a = VirtAddr::new(0x1000);
        let b = VirtAddr::new(0x2000); // same PTE node as `a`
        pt.map(a.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(1), &mut mem)
            .unwrap();
        pt.map(b.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(2), &mut mem)
            .unwrap();
        walker.walk(&pt, a, &mut dram);
        let r = walker.walk(&pt, b, &mut dram);
        assert_eq!(r.memory_accesses, 1, "PMD-level PWC hit leaves one access");
        assert_eq!(r.translation, Some((Ppn(2), PageSize::Base4K)));
    }

    #[test]
    fn pwc_partial_hit_uses_intermediate_level() {
        let (mut mem, mut pt, mut walker, mut dram) = setup();
        let a = VirtAddr::new(0);
        // Same PUD, different PMD: after walking `a`, `b` hits pwc[1].
        let b = VirtAddr::new(2 * (1 << 21));
        pt.map(a.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(1), &mut mem)
            .unwrap();
        pt.map(b.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(2), &mut mem)
            .unwrap();
        walker.walk(&pt, a, &mut dram);
        let r = walker.walk(&pt, b, &mut dram);
        assert_eq!(
            r.memory_accesses, 2,
            "PUD-level hit leaves PMD+PTE accesses"
        );
    }

    #[test]
    fn huge_page_walks_are_shorter() {
        let (mut mem, mut pt, mut walker, mut dram) = setup();
        let va = VirtAddr::new(0x8000_0000);
        pt.map(va.vpn(PageSize::Huge2M), PageSize::Huge2M, Ppn(9), &mut mem)
            .unwrap();
        let r = walker.walk(&pt, va, &mut dram);
        assert_eq!(r.memory_accesses, 3, "2MB leaf sits at the PMD level");
        assert_eq!(r.translation, Some((Ppn(9), PageSize::Huge2M)));
    }

    #[test]
    fn fault_walk_reports_no_translation() {
        let (_mem, pt, mut walker, mut dram) = setup();
        let r = walker.walk(&pt, VirtAddr::new(0xdead_0000), &mut dram);
        assert_eq!(r.translation, None);
        assert_eq!(r.memory_accesses, 1, "the empty PGD entry is still read");
    }

    #[test]
    fn flush_forgets_cached_levels() {
        let (mut mem, mut pt, mut walker, mut dram) = setup();
        let va = VirtAddr::new(0x1000);
        pt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(1), &mut mem)
            .unwrap();
        walker.walk(&pt, va, &mut dram);
        walker.flush();
        let r = walker.walk(&pt, va, &mut dram);
        assert_eq!(r.memory_accesses, 4);
    }

    #[test]
    fn stats_accumulate() {
        let (mut mem, mut pt, mut walker, mut dram) = setup();
        for i in 0..64u64 {
            pt.map(Vpn(i), PageSize::Base4K, Ppn(i), &mut mem).unwrap();
        }
        for i in 0..64u64 {
            walker.walk(&pt, Vpn(i).base_addr(PageSize::Base4K), &mut dram);
        }
        assert_eq!(walker.walks(), 64);
        assert!(walker.mean_accesses() < 2.0, "dense pages should PWC-hit");
        assert!(walker.mean_cycles() > 0.0);
        assert!(walker.pwc_hit_counts()[2] > 0);
    }

    #[test]
    fn five_level_walks_are_one_access_deeper() {
        let mut mem = PhysMem::with_cost_model(GIB, AllocCostModel::zero_cost());
        let mut pt4 = RadixPageTable::new(&mut mem).unwrap();
        let mut pt5 = RadixPageTable::with_levels(5, &mut mem).unwrap();
        let va = VirtAddr::new(0x7654_3000);
        let vpn = va.vpn(PageSize::Base4K);
        pt4.map(vpn, PageSize::Base4K, Ppn(1), &mut mem).unwrap();
        pt5.map(vpn, PageSize::Base4K, Ppn(1), &mut mem).unwrap();
        assert_eq!(pt5.translate(va), Some((Ppn(1), PageSize::Base4K)));
        let mut w4 = RadixWalker::paper_default();
        let mut w5 = RadixWalker::paper_default();
        let mut d4 = MemoryModel::paper_default();
        let mut d5 = MemoryModel::paper_default();
        let cold4 = w4.walk(&pt4, va, &mut d4);
        let cold5 = w5.walk(&pt5, va, &mut d5);
        assert_eq!(cold4.memory_accesses, 4);
        assert_eq!(cold5.memory_accesses, 5, "la57 adds a dependent access");
        assert!(cold5.cycles > cold4.cycles);
        // Warm walks converge: the PWC hides the extra level.
        let warm5 = w5.walk(&pt5, va, &mut d5);
        assert_eq!(warm5.memory_accesses, 1);
    }
}
