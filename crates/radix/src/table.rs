use core::fmt;

use mehpt_mem::{AllocError, AllocTag, Chunk, PhysMem};
use mehpt_types::{PageSize, PhysAddr, Ppn, VirtAddr, Vpn};

/// Entries per radix node (512 × 8B = one 4KB frame).
pub(crate) const FANOUT: usize = 512;

const TAG_NODE: u64 = 1 << 63;
const TAG_LEAF: u64 = 1 << 62;
const PAYLOAD_MASK: u64 = (1 << 62) - 1;

/// One step of a page walk, as seen by the hardware walker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Step {
    /// The entry points at a next-level node.
    Node,
    /// The entry is a leaf translation.
    Leaf(Ppn, PageSize),
    /// The entry is empty: page fault.
    Empty,
}

/// An x86-64 radix page table: 4 levels (PGD → PUD → PMD → PTE, 48-bit VA)
/// or 5 levels (la57-style, as in Intel Sunny Cove — the scalability trend
/// the paper's introduction warns about: each extra level is another
/// dependent memory access on a cold walk).
///
/// Functionally complete: maps and unmaps 4KB, 2MB and 1GB pages (huge
/// pages terminate the tree early at the PMD or PUD level), allocates nodes
/// one 4KB frame at a time, and frees nodes that become empty. The timed
/// walk — with page-walk caches — lives in
/// [`RadixWalker`](crate::RadixWalker).
#[derive(Debug)]
pub struct RadixPageTable {
    /// Slot-allocated nodes; `None` marks freed slots for reuse.
    nodes: Vec<Option<Node>>,
    free_ids: Vec<usize>,
    root: usize,
    mapped_pages: u64,
    levels: usize,
}

#[derive(Debug)]
struct Node {
    entries: Box<[u64]>,
    chunk: Chunk,
    used: u16,
}

/// Failure to map a page.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MapError {
    /// A page-table node could not be allocated.
    Alloc(AllocError),
    /// The mapping collides with an existing one (e.g. a 4KB page inside an
    /// established 1GB mapping, or an already-mapped VPN).
    Conflict {
        /// The VPN that could not be mapped.
        vpn: Vpn,
        /// The page size of the attempted mapping.
        page_size: PageSize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MapError::Alloc(e) => write!(f, "page-table node allocation failed: {e}"),
            MapError::Conflict { vpn, page_size } => {
                write!(f, "mapping conflict at vpn {vpn} ({page_size})")
            }
        }
    }
}

impl std::error::Error for MapError {}

impl From<AllocError> for MapError {
    fn from(e: AllocError) -> MapError {
        MapError::Alloc(e)
    }
}

impl RadixPageTable {
    /// Creates an empty 4-level table, allocating the root (PGD) node.
    ///
    /// # Errors
    ///
    /// Returns the allocation error if no 4KB frame is available.
    pub fn new(mem: &mut PhysMem) -> Result<RadixPageTable, AllocError> {
        RadixPageTable::with_levels(4, mem)
    }

    /// Creates an empty table with 4 or 5 levels. Five levels models
    /// la57-style extended paging: one more dependent access per cold walk.
    ///
    /// # Errors
    ///
    /// Returns the allocation error if no 4KB frame is available.
    ///
    /// # Panics
    ///
    /// Panics unless `levels` is 4 or 5.
    pub fn with_levels(levels: usize, mem: &mut PhysMem) -> Result<RadixPageTable, AllocError> {
        assert!(levels == 4 || levels == 5, "radix trees have 4 or 5 levels");
        let mut table = RadixPageTable {
            nodes: Vec::new(),
            free_ids: Vec::new(),
            root: 0,
            mapped_pages: 0,
            levels,
        };
        table.root = table.alloc_node(mem)?;
        Ok(table)
    }

    /// The number of tree levels (4 or 5).
    pub fn levels(&self) -> usize {
        self.levels
    }

    fn alloc_node(&mut self, mem: &mut PhysMem) -> Result<usize, AllocError> {
        let chunk = mem.alloc(4096, AllocTag::PageTable)?;
        let node = Node {
            entries: vec![0u64; FANOUT].into_boxed_slice(),
            chunk,
            used: 0,
        };
        match self.free_ids.pop() {
            Some(id) => {
                self.nodes[id] = Some(node);
                Ok(id)
            }
            None => {
                self.nodes.push(Some(node));
                Ok(self.nodes.len() - 1)
            }
        }
    }

    fn free_node(&mut self, id: usize, mem: &mut PhysMem) {
        let node = self.nodes[id].take().expect("freeing a live node");
        debug_assert_eq!(node.used, 0, "freeing a non-empty node");
        mem.free(node.chunk);
        self.free_ids.push(id);
    }

    fn node(&self, id: usize) -> &Node {
        self.nodes[id].as_ref().expect("dangling node id")
    }

    fn node_mut(&mut self, id: usize) -> &mut Node {
        self.nodes[id].as_mut().expect("dangling node id")
    }

    /// The tree level a leaf of the given page size sits at (counted from
    /// the root: the PTE level is the deepest).
    fn leaf_level(&self, ps: PageSize) -> usize {
        self.levels
            - match ps {
                PageSize::Base4K => 1,
                PageSize::Huge2M => 2,
                PageSize::Giant1G => 3,
            }
    }

    /// The node index selected by `va` at tree `level`.
    fn index(&self, va: VirtAddr, level: usize) -> usize {
        let shift = 12 + 9 * (self.levels - 1 - level);
        ((va.0 >> shift) & 0x1ff) as usize
    }

    /// Maps `vpn` (of size `ps`) to `ppn`, allocating intermediate nodes on
    /// demand.
    ///
    /// # Errors
    ///
    /// [`MapError::Conflict`] if the slot is occupied (already mapped, or
    /// covered by a larger page, or an intermediate node sits where a huge
    /// leaf must go); [`MapError::Alloc`] if a node allocation fails.
    pub fn map(
        &mut self,
        vpn: Vpn,
        ps: PageSize,
        ppn: Ppn,
        mem: &mut PhysMem,
    ) -> Result<(), MapError> {
        let va = vpn.base_addr(ps);
        let leaf_level = self.leaf_level(ps);
        let mut node_id = self.root;
        for level in 0..leaf_level {
            let idx = self.index(va, level);
            let entry = self.node(node_id).entries[idx];
            node_id = if entry == 0 {
                let child = self.alloc_node(mem)?;
                let node = self.node_mut(node_id);
                node.entries[idx] = TAG_NODE | child as u64;
                node.used += 1;
                child
            } else if entry & TAG_NODE != 0 {
                (entry & PAYLOAD_MASK) as usize
            } else {
                // A (huge) leaf already covers this range.
                return Err(MapError::Conflict { vpn, page_size: ps });
            };
        }
        let idx = self.index(va, leaf_level);
        let node = self.node_mut(node_id);
        if node.entries[idx] != 0 {
            return Err(MapError::Conflict { vpn, page_size: ps });
        }
        node.entries[idx] = TAG_LEAF | ppn.0;
        node.used += 1;
        self.mapped_pages += 1;
        Ok(())
    }

    /// Unmaps `vpn` (of size `ps`); returns the previous translation, if
    /// any. Nodes that become empty are freed back to physical memory.
    pub fn unmap(&mut self, vpn: Vpn, ps: PageSize, mem: &mut PhysMem) -> Option<Ppn> {
        let va = vpn.base_addr(ps);
        let leaf_level = self.leaf_level(ps);
        // Record the path for post-removal pruning.
        let mut path = Vec::with_capacity(4);
        let mut node_id = self.root;
        for level in 0..leaf_level {
            let idx = self.index(va, level);
            let entry = self.node(node_id).entries[idx];
            if entry & TAG_NODE == 0 {
                return None;
            }
            path.push((node_id, idx));
            node_id = (entry & PAYLOAD_MASK) as usize;
        }
        let idx = self.index(va, leaf_level);
        let node = self.node_mut(node_id);
        let entry = node.entries[idx];
        if entry & TAG_LEAF == 0 {
            return None;
        }
        node.entries[idx] = 0;
        node.used -= 1;
        self.mapped_pages -= 1;
        let ppn = Ppn(entry & PAYLOAD_MASK);
        // Prune now-empty nodes bottom-up (never the root).
        let mut child = node_id;
        for &(parent, pidx) in path.iter().rev() {
            if self.node(child).used != 0 || child == self.root {
                break;
            }
            self.free_node(child, mem);
            let pnode = self.node_mut(parent);
            pnode.entries[pidx] = 0;
            pnode.used -= 1;
            child = parent;
        }
        Some(ppn)
    }

    /// Rewrites the physical page of an existing mapping (page migration
    /// during compaction). Returns `false` if `vpn` is not mapped at `ps`.
    pub fn remap(&mut self, vpn: Vpn, ps: PageSize, ppn: Ppn) -> bool {
        let va = vpn.base_addr(ps);
        let leaf_level = self.leaf_level(ps);
        let mut node_id = self.root;
        for level in 0..leaf_level {
            let idx = self.index(va, level);
            let entry = self.node(node_id).entries[idx];
            if entry & TAG_NODE == 0 {
                return false;
            }
            node_id = (entry & PAYLOAD_MASK) as usize;
        }
        let idx = self.index(va, leaf_level);
        let node = self.node_mut(node_id);
        if node.entries[idx] & TAG_LEAF == 0 {
            return false;
        }
        node.entries[idx] = TAG_LEAF | ppn.0;
        true
    }

    /// Translates a virtual address functionally (no timing).
    pub fn translate(&self, va: VirtAddr) -> Option<(Ppn, PageSize)> {
        let mut node_id = self.root;
        for level in 0..self.levels {
            let idx = self.index(va, level);
            let entry = self.node(node_id).entries[idx];
            if entry == 0 {
                return None;
            }
            if entry & TAG_LEAF != 0 {
                let ps = match self.levels - level {
                    3 => PageSize::Giant1G,
                    2 => PageSize::Huge2M,
                    1 => PageSize::Base4K,
                    _ => return None, // no leaves above the 1GB level
                };
                return Some((Ppn(entry & PAYLOAD_MASK), ps));
            }
            node_id = (entry & PAYLOAD_MASK) as usize;
        }
        None
    }

    /// The page-walk path for `va`: the physical address of the entry read
    /// at each level, and what the walker finds there. Used by
    /// [`RadixWalker`](crate::RadixWalker) to charge memory-access latency.
    pub(crate) fn walk_path(&self, va: VirtAddr) -> Vec<(PhysAddr, Step)> {
        let mut steps = Vec::with_capacity(self.levels);
        let mut node_id = self.root;
        for level in 0..self.levels {
            let idx = self.index(va, level);
            let node = self.node(node_id);
            let addr = node.chunk.addr(idx as u64 * 8);
            let entry = node.entries[idx];
            if entry == 0 {
                steps.push((addr, Step::Empty));
                return steps;
            }
            if entry & TAG_LEAF != 0 {
                let ps = match self.levels - level {
                    3 => PageSize::Giant1G,
                    2 => PageSize::Huge2M,
                    _ => PageSize::Base4K,
                };
                steps.push((addr, Step::Leaf(Ppn(entry & PAYLOAD_MASK), ps)));
                return steps;
            }
            steps.push((addr, Step::Node));
            node_id = (entry & PAYLOAD_MASK) as usize;
        }
        steps
    }

    /// The number of mapped pages (all sizes).
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// The number of live page-table nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Total page-table memory in bytes (4KB per node) — Table I's
    /// "Page Table Total Memory, Tree" column.
    pub fn memory_bytes(&self) -> u64 {
        self.node_count() as u64 * 4096
    }

    /// Releases every node back to physical memory.
    pub fn destroy(mut self, mem: &mut PhysMem) {
        for node in self.nodes.iter_mut() {
            if let Some(n) = node.take() {
                mem.free(n.chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mehpt_mem::AllocCostModel;
    use mehpt_types::{GIB, MIB};

    fn mem() -> PhysMem {
        PhysMem::with_cost_model(GIB, AllocCostModel::zero_cost())
    }

    #[test]
    fn map_translate_4k() {
        let mut m = mem();
        let mut pt = RadixPageTable::new(&mut m).unwrap();
        let va = VirtAddr::new(0x7fff_1234_5678);
        pt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(7), &mut m)
            .unwrap();
        assert_eq!(pt.translate(va), Some((Ppn(7), PageSize::Base4K)));
        assert_eq!(pt.translate(VirtAddr::new(0x1000)), None);
        // Root + PUD + PMD + PTE nodes.
        assert_eq!(pt.node_count(), 4);
    }

    #[test]
    fn huge_pages_terminate_early() {
        let mut m = mem();
        let mut pt = RadixPageTable::new(&mut m).unwrap();
        let va2m = VirtAddr::new(2 * MIB as u64 * 9);
        pt.map(va2m.vpn(PageSize::Huge2M), PageSize::Huge2M, Ppn(3), &mut m)
            .unwrap();
        assert_eq!(pt.translate(va2m + 4096), Some((Ppn(3), PageSize::Huge2M)));
        // Root + PUD + PMD: no PTE level for a 2MB leaf.
        assert_eq!(pt.node_count(), 3);
        let va1g = VirtAddr::new(5 * GIB);
        pt.map(
            va1g.vpn(PageSize::Giant1G),
            PageSize::Giant1G,
            Ppn(8),
            &mut m,
        )
        .unwrap();
        assert_eq!(
            pt.translate(va1g + 123 * MIB),
            Some((Ppn(8), PageSize::Giant1G))
        );
    }

    #[test]
    fn conflicts_are_rejected() {
        let mut m = mem();
        let mut pt = RadixPageTable::new(&mut m).unwrap();
        let va = VirtAddr::new(0x4000_0000);
        pt.map(va.vpn(PageSize::Huge2M), PageSize::Huge2M, Ppn(1), &mut m)
            .unwrap();
        // Same VPN again.
        let err = pt
            .map(va.vpn(PageSize::Huge2M), PageSize::Huge2M, Ppn(2), &mut m)
            .unwrap_err();
        assert!(matches!(err, MapError::Conflict { .. }));
        // A 4KB page underneath the 2MB leaf.
        let err = pt
            .map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(3), &mut m)
            .unwrap_err();
        assert!(matches!(err, MapError::Conflict { .. }));
    }

    #[test]
    fn unmap_restores_and_prunes() {
        let mut m = mem();
        let used0 = m.stats().tag(AllocTag::PageTable).current_bytes;
        let mut pt = RadixPageTable::new(&mut m).unwrap();
        let va = VirtAddr::new(0x1234_5000);
        pt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(9), &mut m)
            .unwrap();
        assert_eq!(
            pt.unmap(va.vpn(PageSize::Base4K), PageSize::Base4K, &mut m),
            Some(Ppn(9))
        );
        assert_eq!(pt.translate(va), None);
        assert_eq!(pt.node_count(), 1, "interior nodes must be pruned");
        assert_eq!(pt.mapped_pages(), 0);
        // Unmapping again is a no-op.
        assert_eq!(
            pt.unmap(va.vpn(PageSize::Base4K), PageSize::Base4K, &mut m),
            None
        );
        pt.destroy(&mut m);
        assert_eq!(m.stats().tag(AllocTag::PageTable).current_bytes, used0);
    }

    #[test]
    fn contiguous_allocation_is_one_frame() {
        let mut m = mem();
        let mut pt = RadixPageTable::new(&mut m).unwrap();
        for i in 0..10_000u64 {
            let va = VirtAddr::new(i * 4096 * 513); // scatter across PMDs
            pt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(i), &mut m)
                .unwrap();
        }
        assert_eq!(
            m.stats().tag(AllocTag::PageTable).max_contiguous_bytes,
            4096
        );
        assert!(pt.memory_bytes() > 10_000 * 8);
    }

    #[test]
    fn dense_mappings_share_nodes() {
        let mut m = mem();
        let mut pt = RadixPageTable::new(&mut m).unwrap();
        for i in 0..512u64 {
            pt.map(Vpn(i), PageSize::Base4K, Ppn(i), &mut m).unwrap();
        }
        // 512 dense pages fit one PTE node: root + PUD + PMD + 1 PTE.
        assert_eq!(pt.node_count(), 4);
        assert_eq!(pt.mapped_pages(), 512);
    }

    #[test]
    fn remap_updates_existing_leaves_only() {
        let mut m = mem();
        let mut pt = RadixPageTable::new(&mut m).unwrap();
        let va = VirtAddr::new(0x7000);
        let vpn = va.vpn(PageSize::Base4K);
        assert!(!pt.remap(vpn, PageSize::Base4K, Ppn(5)));
        pt.map(vpn, PageSize::Base4K, Ppn(5), &mut m).unwrap();
        assert!(pt.remap(vpn, PageSize::Base4K, Ppn(6)));
        assert_eq!(pt.translate(va), Some((Ppn(6), PageSize::Base4K)));
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn walk_path_depth_matches_page_size() {
        let mut m = mem();
        let mut pt = RadixPageTable::new(&mut m).unwrap();
        let va4k = VirtAddr::new(0x1000);
        let va2m = VirtAddr::new(0x4000_0000);
        pt.map(va4k.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(1), &mut m)
            .unwrap();
        pt.map(va2m.vpn(PageSize::Huge2M), PageSize::Huge2M, Ppn(2), &mut m)
            .unwrap();
        assert_eq!(pt.walk_path(va4k).len(), 4);
        assert_eq!(pt.walk_path(va2m).len(), 3);
        let missing = pt.walk_path(VirtAddr::new(0x8000_0000_0000 - 4096));
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].1, Step::Empty);
    }
}
