//! The radix-tree page-table baseline (x86-64 4-level).
//!
//! The paper's "Radix" comparison point (Sections II-A and VII-B): a
//! PGD → PUD → PMD → PTE tree walked level by level on a TLB miss, with
//! 2MB (PMD) and 1GB (PUD) leaf entries for huge pages, page-walk caches
//! ([`RadixWalker`]) that skip the upper levels when they hit, and node
//! allocation one 4KB frame at a time from
//! [`PhysMem`](mehpt_mem::PhysMem) — which is why radix tables never need
//! large contiguous allocations (Table I's "4KB" contiguity column).
//!
//! # Examples
//!
//! ```
//! use mehpt_mem::PhysMem;
//! use mehpt_radix::RadixPageTable;
//! use mehpt_types::{PageSize, Ppn, VirtAddr, MIB};
//!
//! let mut mem = PhysMem::new(64 * MIB);
//! let mut pt = RadixPageTable::new(&mut mem)?;
//! let va = VirtAddr::new(0x7f12_3456_7000);
//! pt.map(va.vpn(PageSize::Base4K), PageSize::Base4K, Ppn(42), &mut mem)?;
//! assert_eq!(pt.translate(va), Some((Ppn(42), PageSize::Base4K)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod table;
mod walker;

pub use table::{MapError, RadixPageTable};
pub use walker::{RadixWalker, WalkResult};
