//! Property tests: the radix table (4- and 5-level) must agree with a
//! `HashMap` model under arbitrary map/unmap/translate sequences, and must
//! return every page-table frame when destroyed.

use std::collections::HashMap;

use mehpt_mem::{AllocCostModel, AllocTag, PhysMem};
use mehpt_radix::RadixPageTable;
use mehpt_types::proptest_lite::{check, Gen};
use mehpt_types::{PageSize, Ppn, Vpn, GIB};

#[derive(Clone, Debug)]
enum Op {
    Map(u32, u32),
    Unmap(u32),
    Translate(u32),
    Remap(u32, u32),
}

fn gen_ops(g: &mut Gen) -> Vec<Op> {
    g.vec_of(600, |g| match g.weighted(&[4, 2, 2, 1]) {
        0 => Op::Map(g.u32() % 100_000, g.u32()),
        1 => Op::Unmap(g.u32() % 100_000),
        2 => Op::Translate(g.u32() % 100_000),
        _ => Op::Remap(g.u32() % 100_000, g.u32()),
    })
}

fn run_model(levels: usize, ops: Vec<Op>) {
    let mut mem = PhysMem::with_cost_model(GIB, AllocCostModel::zero_cost());
    let before = mem.stats().tag(AllocTag::PageTable).current_bytes;
    let mut pt = RadixPageTable::with_levels(levels, &mut mem).unwrap();
    let mut model: HashMap<u32, u32> = HashMap::new();
    for op in ops {
        match op {
            Op::Map(k, v) => {
                let vpn = Vpn(k as u64);
                let res = pt.map(vpn, PageSize::Base4K, Ppn(v as u64), &mut mem);
                if model.contains_key(&k) {
                    assert!(res.is_err(), "double map must conflict");
                } else {
                    res.unwrap();
                    model.insert(k, v);
                }
            }
            Op::Unmap(k) => {
                let got = pt.unmap(Vpn(k as u64), PageSize::Base4K, &mut mem);
                assert_eq!(got, model.remove(&k).map(|v| Ppn(v as u64)));
            }
            Op::Translate(k) => {
                let got = pt
                    .translate(Vpn(k as u64).base_addr(PageSize::Base4K))
                    .map(|(p, _)| p);
                assert_eq!(got, model.get(&k).map(|&v| Ppn(v as u64)));
            }
            Op::Remap(k, v) => {
                let ok = pt.remap(Vpn(k as u64), PageSize::Base4K, Ppn(v as u64));
                assert_eq!(ok, model.contains_key(&k));
                if ok {
                    model.insert(k, v);
                }
            }
        }
        assert_eq!(pt.mapped_pages(), model.len() as u64);
    }
    for (&k, &v) in &model {
        let got = pt
            .translate(Vpn(k as u64).base_addr(PageSize::Base4K))
            .map(|(p, _)| p);
        assert_eq!(got, Some(Ppn(v as u64)));
    }
    pt.destroy(&mut mem);
    assert_eq!(
        mem.stats().tag(AllocTag::PageTable).current_bytes,
        before,
        "destroy must return every node frame"
    );
}

#[test]
fn four_level_matches_hashmap() {
    check("four_level_matches_hashmap", 32, |g| {
        run_model(4, gen_ops(g));
    });
}

#[test]
fn five_level_matches_hashmap() {
    check("five_level_matches_hashmap", 32, |g| {
        run_model(5, gen_ops(g));
    });
}
