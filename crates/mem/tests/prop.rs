//! Property tests of the physical-memory substrate: buddy invariants under
//! arbitrary allocation/free interleavings, FMFI monotonicity, and
//! compaction safety.

use mehpt_mem::{AllocCostModel, AllocTag, BuddyAllocator, Chunk, PhysMem};
use mehpt_types::proptest_lite::{check, Gen};
use mehpt_types::MIB;

#[derive(Clone, Debug)]
enum Op {
    Alloc(u8),
    FreeNth(usize),
}

fn gen_ops(g: &mut Gen) -> Vec<Op> {
    g.vec_of(400, |g| match g.weighted(&[3, 2]) {
        0 => Op::Alloc(g.below(6) as u8),
        _ => Op::FreeNth(g.u64() as usize),
    })
}

/// Frame accounting never drifts and free blocks stay aligned,
/// whatever the alloc/free interleaving.
#[test]
fn buddy_invariants_hold() {
    check("buddy_invariants_hold", 64, |g| {
        let ops = gen_ops(g);
        let mut buddy = BuddyAllocator::new(4096);
        let mut live: Vec<(u64, u8)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(order) => {
                    if let Some(frame) = buddy.alloc(order) {
                        assert_eq!(frame % (1 << order), 0, "misaligned block");
                        live.push((frame, order));
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (frame, order) = live.swap_remove(n % live.len());
                        buddy.free(frame, order);
                    }
                }
            }
            buddy.check_invariants();
        }
        // Free everything: memory must fully coalesce.
        for (frame, order) in live {
            buddy.free(frame, order);
        }
        buddy.check_invariants();
        assert_eq!(buddy.free_frames(), 4096);
        assert_eq!(buddy.fmfi(9), 0.0, "full coalescing expected");
    });
}

/// Live allocations never overlap.
#[test]
fn buddy_blocks_never_overlap() {
    check("buddy_blocks_never_overlap", 64, |g| {
        let ops = gen_ops(g);
        let mut buddy = BuddyAllocator::new(1024);
        let mut live: Vec<(u64, u8)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(order) => {
                    if let Some(frame) = buddy.alloc(order) {
                        let (start, end) = (frame, frame + (1u64 << order));
                        for &(f, o) in &live {
                            let (s2, e2) = (f, f + (1u64 << o));
                            assert!(
                                end <= s2 || e2 <= start,
                                "overlap: [{start},{end}) vs [{s2},{e2})"
                            );
                        }
                        live.push((frame, order));
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (frame, order) = live.swap_remove(n % live.len());
                        buddy.free(frame, order);
                    }
                }
            }
        }
    });
}

/// PhysMem: stats stay consistent and chunks are aligned and disjoint
/// under arbitrary tagged workloads, including compaction.
#[test]
fn phys_mem_accounting_consistent() {
    check("phys_mem_accounting_consistent", 64, |g| {
        let ops = gen_ops(g);
        let mut mem = PhysMem::with_cost_model(64 * MIB, AllocCostModel::zero_cost());
        let mut live: Vec<Chunk> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(order) => {
                    let bytes = 4096u64 << order.min(10);
                    let tag = if order % 2 == 0 {
                        AllocTag::Data
                    } else {
                        AllocTag::PageTable
                    };
                    if let Ok(chunk) = mem.alloc(bytes, tag) {
                        assert_eq!(chunk.base().0 % bytes, 0);
                        live.push(chunk);
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let chunk = live.swap_remove(n % live.len());
                        // A compaction may have moved Data chunks; only free
                        // chunks that were never subject to relocation.
                        if chunk.tag() == AllocTag::PageTable {
                            mem.free(chunk);
                        } else {
                            live.push(chunk); // keep data chunks forever
                        }
                    }
                }
            }
            let live_pt: u64 = live
                .iter()
                .filter(|c| c.tag() == AllocTag::PageTable)
                .map(|c| c.bytes())
                .sum();
            assert_eq!(mem.stats().tag(AllocTag::PageTable).current_bytes, live_pt);
        }
    });
}
