//! Property tests of the physical-memory substrate: buddy invariants under
//! arbitrary allocation/free interleavings, FMFI monotonicity, and
//! compaction safety.

use mehpt_mem::{AllocCostModel, AllocTag, BuddyAllocator, Chunk, PhysMem};
use mehpt_types::MIB;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Alloc(u8),
    FreeNth(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u8..6).prop_map(Op::Alloc),
            2 => any::<usize>().prop_map(Op::FreeNth),
        ],
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Frame accounting never drifts and free blocks stay aligned,
    /// whatever the alloc/free interleaving.
    #[test]
    fn buddy_invariants_hold(ops in ops()) {
        let mut buddy = BuddyAllocator::new(4096);
        let mut live: Vec<(u64, u8)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(order) => {
                    if let Some(frame) = buddy.alloc(order) {
                        prop_assert_eq!(frame % (1 << order), 0, "misaligned block");
                        live.push((frame, order));
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (frame, order) = live.swap_remove(n % live.len());
                        buddy.free(frame, order);
                    }
                }
            }
            buddy.check_invariants();
        }
        // Free everything: memory must fully coalesce.
        for (frame, order) in live {
            buddy.free(frame, order);
        }
        buddy.check_invariants();
        prop_assert_eq!(buddy.free_frames(), 4096);
        prop_assert_eq!(buddy.fmfi(9), 0.0, "full coalescing expected");
    }

    /// Live allocations never overlap.
    #[test]
    fn buddy_blocks_never_overlap(ops in ops()) {
        let mut buddy = BuddyAllocator::new(1024);
        let mut live: Vec<(u64, u8)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(order) => {
                    if let Some(frame) = buddy.alloc(order) {
                        let (start, end) = (frame, frame + (1u64 << order));
                        for &(f, o) in &live {
                            let (s2, e2) = (f, f + (1u64 << o));
                            prop_assert!(end <= s2 || e2 <= start,
                                "overlap: [{},{}) vs [{},{})", start, end, s2, e2);
                        }
                        live.push((frame, order));
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (frame, order) = live.swap_remove(n % live.len());
                        buddy.free(frame, order);
                    }
                }
            }
        }
    }

    /// PhysMem: stats stay consistent and chunks are aligned and disjoint
    /// under arbitrary tagged workloads, including compaction.
    #[test]
    fn phys_mem_accounting_consistent(ops in ops()) {
        let mut mem = PhysMem::with_cost_model(64 * MIB, AllocCostModel::zero_cost());
        let mut live: Vec<Chunk> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(order) => {
                    let bytes = 4096u64 << order.min(10);
                    let tag = if order % 2 == 0 { AllocTag::Data } else { AllocTag::PageTable };
                    if let Ok(chunk) = mem.alloc(bytes, tag) {
                        prop_assert_eq!(chunk.base().0 % bytes, 0);
                        live.push(chunk);
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let chunk = live.swap_remove(n % live.len());
                        // A compaction may have moved Data chunks; only free
                        // chunks that were never subject to relocation.
                        if chunk.tag() == AllocTag::PageTable {
                            mem.free(chunk);
                        } else {
                            live.push(chunk); // keep data chunks forever
                        }
                    }
                }
            }
            let live_pt: u64 = live
                .iter()
                .filter(|c| c.tag() == AllocTag::PageTable)
                .map(|c| c.bytes())
                .sum();
            prop_assert_eq!(
                mem.stats().tag(AllocTag::PageTable).current_bytes,
                live_pt
            );
        }
    }
}
