use std::collections::{BTreeMap, BTreeSet};

use crate::{bytes_of_order, FRAME_BYTES};

/// The largest block order the allocator manages (order 16 = 256MB).
///
/// Large enough for the biggest allocation the paper ever performs (a 64MB
/// ECPT way, order 14) with headroom for ablation experiments.
pub const MAX_ORDER: u8 = 16;

/// A binary buddy allocator over 4KB frames.
///
/// This is the ground-truth model of physical-memory contiguity: a contiguous
/// allocation of order *k* (2ᵏ frames) succeeds only if a free, naturally
/// aligned block of that order exists. Splitting and coalescing follow the
/// classic buddy rules, so fragmentation behaves like a real kernel's page
/// allocator.
///
/// Frames are identified by their 4KB frame number starting at 0.
/// Deterministic: allocation always returns the lowest-addressed suitable
/// block, so identical call sequences yield identical layouts.
///
/// # Examples
///
/// ```
/// use mehpt_mem::BuddyAllocator;
///
/// let mut buddy = BuddyAllocator::new(1024); // 4MB of frames
/// let a = buddy.alloc(0).expect("one frame");
/// let b = buddy.alloc(0).expect("another frame");
/// assert_ne!(a, b);
/// buddy.free(a, 0);
/// buddy.free(b, 0);
/// assert_eq!(buddy.free_frames(), 1024);
/// ```
#[derive(Clone, Debug)]
pub struct BuddyAllocator {
    /// `free[order]` holds the start frame of every free block of that order.
    free: Vec<BTreeSet<u64>>,
    /// Allocated block start → order, used to validate frees.
    allocated: BTreeMap<u64, u8>,
    total_frames: u64,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing `total_frames` 4KB frames.
    ///
    /// The frame count need not be a power of two; memory is seeded with the
    /// largest aligned blocks that fit.
    ///
    /// # Panics
    ///
    /// Panics if `total_frames` is zero.
    pub fn new(total_frames: u64) -> BuddyAllocator {
        assert!(total_frames > 0, "buddy allocator needs at least one frame");
        let mut buddy = BuddyAllocator {
            free: (0..=MAX_ORDER).map(|_| BTreeSet::new()).collect(),
            allocated: BTreeMap::new(),
            total_frames,
            free_frames: total_frames,
        };
        // Seed free lists greedily with maximal aligned blocks.
        let mut frame = 0;
        while frame < total_frames {
            let align_order = if frame == 0 {
                MAX_ORDER
            } else {
                (frame.trailing_zeros() as u8).min(MAX_ORDER)
            };
            let mut order = align_order;
            while frame + (1 << order) > total_frames {
                order -= 1;
            }
            buddy.free[order as usize].insert(frame);
            frame += 1 << order;
        }
        buddy
    }

    /// The number of frames managed in total.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// The number of currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Allocates a block of `order` (2^order frames), lowest address first.
    ///
    /// Returns the start frame of the block, or `None` if no contiguous block
    /// of that order (or larger, to split) exists — i.e. memory is too
    /// fragmented or too full.
    pub fn alloc(&mut self, order: u8) -> Option<u64> {
        let mut have = order;
        while (have as usize) < self.free.len() && self.free[have as usize].is_empty() {
            have += 1;
        }
        if have as usize >= self.free.len() {
            return None;
        }
        let frame = *self.free[have as usize].iter().next()?;
        self.free[have as usize].remove(&frame);
        // Split down to the requested order, returning upper halves to the
        // free lists.
        while have > order {
            have -= 1;
            self.free[have as usize].insert(frame + (1 << have));
        }
        self.allocated.insert(frame, order);
        self.free_frames -= 1 << order;
        Some(frame)
    }

    /// Allocates the specific block starting at `frame` of `order`, if free.
    ///
    /// Used by compaction to claim a window it has just evacuated.
    pub fn alloc_at(&mut self, frame: u64, order: u8) -> Option<u64> {
        if self.free[order as usize].remove(&frame) {
            self.allocated.insert(frame, order);
            self.free_frames -= 1 << order;
            return Some(frame);
        }
        // The block may exist as part of a larger free block: split it out.
        for have in order + 1..=MAX_ORDER {
            let start = frame & !((1u64 << have) - 1);
            if self.free[have as usize].remove(&start) {
                // Split down, keeping the half that contains `frame`.
                let mut cur_order = have;
                let mut cur_start = start;
                while cur_order > order {
                    cur_order -= 1;
                    let upper = cur_start + (1 << cur_order);
                    if frame >= upper {
                        self.free[cur_order as usize].insert(cur_start);
                        cur_start = upper;
                    } else {
                        self.free[cur_order as usize].insert(upper);
                    }
                }
                debug_assert_eq!(cur_start, frame);
                self.allocated.insert(frame, order);
                self.free_frames -= 1 << order;
                return Some(frame);
            }
        }
        None
    }

    /// Frees a block previously returned by [`BuddyAllocator::alloc`],
    /// coalescing with free buddies.
    ///
    /// # Panics
    ///
    /// Panics if `(frame, order)` does not match an outstanding allocation —
    /// double frees and size mismatches are bugs.
    pub fn free(&mut self, frame: u64, order: u8) {
        match self.allocated.remove(&frame) {
            Some(found) if found == order => {}
            Some(found) => panic!("free of frame {frame} with order {order}, allocated as {found}"),
            None => panic!("free of frame {frame} which is not allocated"),
        }
        self.free_frames += 1 << order;
        let mut frame = frame;
        let mut order = order;
        while order < MAX_ORDER {
            let buddy = frame ^ (1u64 << order);
            // Only merge if the buddy block lies fully inside memory and is free.
            if buddy + (1 << order) > self.total_frames || !self.free[order as usize].remove(&buddy)
            {
                break;
            }
            frame = frame.min(buddy);
            order += 1;
        }
        self.free[order as usize].insert(frame);
    }

    /// The order of the largest currently free block.
    pub fn largest_free_order(&self) -> Option<u8> {
        (0..=MAX_ORDER)
            .rev()
            .find(|&o| !self.free[o as usize].is_empty())
    }

    /// Free memory (in frames) held in blocks of at least `order`.
    ///
    /// This is the "usable free space" of the FMFI fragmentation metric.
    pub fn usable_free_frames(&self, order: u8) -> u64 {
        (order..=MAX_ORDER)
            .map(|o| self.free[o as usize].len() as u64 * (1u64 << o))
            .sum()
    }

    /// The free-memory fragmentation index w.r.t. allocations of `order`.
    ///
    /// `FMFI(order) = 1 − usable_free(order) / total_free`: the fraction of
    /// free memory that is *unusable* for a contiguous allocation of the given
    /// order (Gorman & Whitcroft). 0 means perfectly defragmented; 1 means no
    /// block of that order exists at all.
    pub fn fmfi(&self, order: u8) -> f64 {
        if self.free_frames == 0 {
            return 1.0;
        }
        1.0 - self.usable_free_frames(order) as f64 / self.free_frames as f64
    }

    /// Whether the block starting at `frame` of `order` is currently allocated.
    pub fn is_allocated(&self, frame: u64, order: u8) -> bool {
        self.allocated.get(&frame) == Some(&order)
    }

    /// Iterates over the allocated blocks `(start_frame, order)` intersecting
    /// the frame range `[start, end)`.
    pub fn allocated_in(&self, start: u64, end: u64) -> impl Iterator<Item = (u64, u8)> + '_ {
        // A block beginning before `start` can still intersect; the largest
        // block is MAX_ORDER frames long, so step back that far.
        let scan_from = start.saturating_sub(1 << MAX_ORDER);
        self.allocated
            .range(scan_from..end)
            .map(|(&f, &o)| (f, o))
            .filter(move |&(f, o)| f + (1u64 << o) > start)
    }

    /// Checks internal invariants; used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let free: u64 = (0..=MAX_ORDER)
            .map(|o| self.free[o as usize].len() as u64 * (1u64 << o))
            .sum();
        let allocated: u64 = self.allocated.values().map(|&o| 1u64 << o).sum();
        assert_eq!(free, self.free_frames, "free frame accounting drifted");
        assert_eq!(
            free + allocated,
            self.total_frames,
            "frames leaked or duplicated"
        );
        for (o, set) in self.free.iter().enumerate() {
            for &f in set {
                assert_eq!(f % (1 << o), 0, "free block {f} misaligned for order {o}");
            }
        }
    }
}

/// Formats a block order as a byte size for diagnostics.
pub(crate) fn order_bytes_label(order: u8) -> String {
    mehpt_types::ByteSize(bytes_of_order(order)).to_string()
}

#[allow(dead_code)]
fn _unused(_: &str) {
    let _ = order_bytes_label(0);
    let _ = FRAME_BYTES;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_is_one_big_block() {
        let buddy = BuddyAllocator::new(1 << MAX_ORDER);
        assert_eq!(buddy.largest_free_order(), Some(MAX_ORDER));
        assert_eq!(buddy.fmfi(MAX_ORDER), 0.0);
    }

    #[test]
    fn alloc_free_restores_state() {
        let mut buddy = BuddyAllocator::new(1024);
        let frames: Vec<u64> = (0..10).map(|_| buddy.alloc(2).unwrap()).collect();
        buddy.check_invariants();
        for f in frames {
            buddy.free(f, 2);
        }
        buddy.check_invariants();
        assert_eq!(buddy.free_frames(), 1024);
        assert_eq!(buddy.largest_free_order(), Some(10)); // fully coalesced
    }

    #[test]
    fn split_and_coalesce() {
        let mut buddy = BuddyAllocator::new(16);
        let a = buddy.alloc(0).unwrap();
        assert_eq!(a, 0);
        // Splitting a 16-frame block leaves 1+2+4+8 free.
        assert_eq!(buddy.free_frames(), 15);
        buddy.free(a, 0);
        assert_eq!(buddy.largest_free_order(), Some(4));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut buddy = BuddyAllocator::new(4);
        assert!(buddy.alloc(2).is_some());
        assert!(buddy.alloc(0).is_none());
    }

    #[test]
    fn fragmentation_blocks_large_allocs() {
        let mut buddy = BuddyAllocator::new(32);
        // Allocate every other pair of frames: kills all order-2 blocks.
        let mut held = Vec::new();
        for i in 0..16 {
            let f = buddy.alloc(1).unwrap();
            if i % 2 == 0 {
                held.push(f);
            } else {
                // keep
            }
        }
        // Free the even-indexed ones: memory is half free but chopped up.
        for f in held {
            buddy.free(f, 1);
        }
        assert!(buddy.fmfi(2) > 0.9);
        assert!(buddy.alloc(3).is_none());
        assert!(buddy.alloc(1).is_some());
    }

    #[test]
    fn alloc_at_claims_specific_block() {
        let mut buddy = BuddyAllocator::new(64);
        assert_eq!(buddy.alloc_at(16, 2), Some(16));
        assert!(buddy.is_allocated(16, 2));
        // Same block cannot be claimed twice.
        assert_eq!(buddy.alloc_at(16, 2), None);
        buddy.free(16, 2);
        buddy.check_invariants();
        assert_eq!(buddy.free_frames(), 64);
    }

    #[test]
    fn allocated_in_finds_intersecting_blocks() {
        let mut buddy = BuddyAllocator::new(64);
        let a = buddy.alloc_at(8, 2).unwrap(); // frames 8..12
        let found: Vec<_> = buddy.allocated_in(10, 20).collect();
        assert_eq!(found, vec![(a, 2)]);
        let missed: Vec<_> = buddy.allocated_in(12, 20).collect();
        assert!(missed.is_empty());
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn double_free_panics() {
        let mut buddy = BuddyAllocator::new(16);
        let f = buddy.alloc(0).unwrap();
        buddy.free(f, 0);
        buddy.free(f, 0);
    }

    #[test]
    fn non_power_of_two_memory() {
        let mut buddy = BuddyAllocator::new(100);
        buddy.check_invariants();
        assert_eq!(buddy.free_frames(), 100);
        let mut n = 0;
        while buddy.alloc(0).is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn fmfi_monotone_in_order() {
        let mut buddy = BuddyAllocator::new(256);
        for _ in 0..32 {
            buddy.alloc(0).unwrap();
        }
        let f: Vec<f64> = (0..8).map(|o| buddy.fmfi(o)).collect();
        for w in f.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "fmfi must be monotone: {f:?}");
        }
    }
}
