use std::collections::BTreeMap;

use mehpt_types::PhysAddr;

use crate::buddy::MAX_ORDER;
use crate::{order_of, AllocCostModel, AllocError, BuddyAllocator, MemStats, FRAME_BYTES};

/// The buddy order the scalar FMFI metric is measured at (order 9 = 2MB).
///
/// This matches how the fragmentation literature (and Linux's extfrag index)
/// report "the" fragmentation of a machine: with respect to huge-page-sized
/// allocations. The paper's "0.7 FMFI" setting is interpreted at this order.
pub const FMFI_REF_ORDER: u8 = 9;

/// Why an allocation was made; used for statistics and compaction decisions.
///
/// Compaction may relocate `PinnedMovable` ballast and `Data` pages (like
/// Linux's movable migrate type); relocated data pages are reported through
/// [`PhysMem::take_relocations`] so the owning OS can rewrite translations.
/// Page tables and unmovable pins are never moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AllocTag {
    /// Page-table structures (radix nodes, HPT ways, ME-HPT chunks).
    PageTable,
    /// Application data pages mapped by the simulated OS.
    Data,
    /// Fragmenter ballast that the OS could migrate during compaction.
    PinnedMovable,
    /// Fragmenter ballast that is pinned for good (e.g. DMA buffers).
    PinnedUnmovable,
}

impl AllocTag {
    /// Number of distinct tags.
    pub const COUNT: usize = 4;

    /// Dense index for per-tag arrays.
    pub fn index(self) -> usize {
        match self {
            AllocTag::PageTable => 0,
            AllocTag::Data => 1,
            AllocTag::PinnedMovable => 2,
            AllocTag::PinnedUnmovable => 3,
        }
    }

    fn is_movable(self) -> bool {
        // Data pages are movable like Linux's MIGRATE_MOVABLE allocations:
        // compaction may relocate them, and the owner (the simulated OS)
        // must then rewrite the affected translations — see
        // [`PhysMem::take_relocations`].
        matches!(self, AllocTag::PinnedMovable | AllocTag::Data)
    }
}

/// A contiguous physical-memory allocation.
///
/// Returned by [`PhysMem::alloc`]; pass it back to [`PhysMem::free`] to
/// release it. The base address is always aligned to the chunk size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Chunk {
    base: PhysAddr,
    bytes: u64,
    tag: AllocTag,
}

impl Chunk {
    /// The base physical address (aligned to [`Chunk::bytes`]).
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// The size in bytes (a power of two ≥ 4KB).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The tag the chunk was allocated under.
    pub fn tag(&self) -> AllocTag {
        self.tag
    }

    /// The physical address `offset` bytes into the chunk.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset` is out of bounds.
    pub fn addr(&self, offset: u64) -> PhysAddr {
        debug_assert!(offset < self.bytes, "offset {offset} out of chunk bounds");
        self.base + offset
    }
}

/// The machine's physical memory: a buddy allocator plus cost accounting,
/// compaction, and fragmentation measurement.
///
/// All sizes are powers of two between 4KB and 256MB. Allocation charges
/// cycles according to the [`AllocCostModel`] at the current fragmentation
/// level; the accumulated cycles (readable through [`PhysMem::stats`]) are
/// what the simulator bills to the OS.
///
/// # Examples
///
/// ```
/// use mehpt_mem::{AllocTag, PhysMem};
/// use mehpt_types::MIB;
///
/// let mut mem = PhysMem::new(256 * MIB);
/// let way = mem.alloc(8 * MIB, AllocTag::PageTable)?;
/// assert!(way.base().0 % (8 * MIB) == 0);
/// assert_eq!(mem.stats().tag(AllocTag::PageTable).max_contiguous_bytes, 8 * MIB);
/// # Ok::<(), mehpt_mem::AllocError>(())
/// ```
#[derive(Clone, Debug)]
pub struct PhysMem {
    buddy: BuddyAllocator,
    /// Start frame of every live chunk → its tag.
    tags: BTreeMap<u64, AllocTag>,
    cost: AllocCostModel,
    stats: MemStats,
    /// Rotating start window for compaction scans, so repeated compactions
    /// do not rescan the same prefix.
    compact_cursor: u64,
    /// Frames moved by compaction since the last
    /// [`PhysMem::take_relocations`] call: `(old_frame, new_frame, tag)`.
    relocations: Vec<(u64, u64, AllocTag)>,
}

impl PhysMem {
    /// Creates `total_bytes` of physical memory with the paper-calibrated
    /// allocation cost model.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is smaller than one 4KB frame.
    pub fn new(total_bytes: u64) -> PhysMem {
        PhysMem::with_cost_model(total_bytes, AllocCostModel::paper_calibrated())
    }

    /// Creates physical memory with a custom cost model (e.g.
    /// [`AllocCostModel::zero_cost`] for functional tests).
    pub fn with_cost_model(total_bytes: u64, cost: AllocCostModel) -> PhysMem {
        PhysMem {
            buddy: BuddyAllocator::new(total_bytes / FRAME_BYTES),
            tags: BTreeMap::new(),
            cost,
            stats: MemStats::default(),
            compact_cursor: 0,
            relocations: Vec::new(),
        }
    }

    /// The total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.buddy.total_frames() * FRAME_BYTES
    }

    /// Currently free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.buddy.free_frames() * FRAME_BYTES
    }

    /// The FMFI fragmentation index for allocations of `bytes`.
    ///
    /// See [`BuddyAllocator::fmfi`]; 0 = perfectly defragmented, 1 = no
    /// block of that size exists.
    pub fn fmfi_for(&self, bytes: u64) -> f64 {
        self.buddy.fmfi(order_of(bytes))
    }

    /// The machine's scalar FMFI, measured at the 2MB reference order.
    pub fn fmfi(&self) -> f64 {
        self.buddy.fmfi(FMFI_REF_ORDER)
    }

    /// Allocation statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Read-only access to the underlying buddy allocator.
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    /// Allocates and zeroes `bytes` of contiguous physical memory.
    ///
    /// On fragmentation, first tries the buddy allocator directly, then
    /// attempts compaction (relocating movable pinned pages out of a
    /// suitable window). The cycle cost — from the calibrated model at the
    /// current fragmentation level — is added to [`PhysMem::stats`].
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] if fewer than `bytes` are free in total;
    /// [`AllocError::TooFragmented`] if memory is sufficient but no
    /// contiguous block can be found or created.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a power of two in `[4KB, 256MB]`.
    pub fn alloc(&mut self, bytes: u64, tag: AllocTag) -> Result<Chunk, AllocError> {
        let order = order_of(bytes);
        assert!(
            order <= MAX_ORDER,
            "allocation of {bytes} bytes exceeds max order"
        );
        let fmfi_now = self.fmfi();
        let frame = match self.buddy.alloc(order) {
            Some(f) => Some(f),
            None => self.compact_for(order),
        };
        let Some(frame) = frame else {
            self.stats.failed_allocs += 1;
            return Err(if self.buddy.free_frames() < (1 << order) {
                AllocError::OutOfMemory { requested: bytes }
            } else {
                AllocError::TooFragmented {
                    requested: bytes,
                    fmfi: self.buddy.fmfi(order),
                }
            });
        };
        // Page-table chunks pay the paper's fragmentation-calibrated cost;
        // data pages (and fragmenter ballast) pay only entry + zeroing.
        let cycles = match tag {
            AllocTag::PageTable => self.cost.cycles(bytes, fmfi_now),
            AllocTag::Data => self.cost.data_cycles(bytes),
            AllocTag::PinnedMovable | AllocTag::PinnedUnmovable => 0,
        };
        self.tags.insert(frame, tag);
        self.stats.record_alloc(tag, bytes, cycles);
        Ok(Chunk {
            base: PhysAddr(frame * FRAME_BYTES),
            bytes,
            tag,
        })
    }

    /// Releases a chunk previously returned by [`PhysMem::alloc`].
    ///
    /// # Panics
    ///
    /// Panics on double free or on a chunk this memory never produced.
    pub fn free(&mut self, chunk: Chunk) {
        let frame = chunk.base.0 / FRAME_BYTES;
        let removed = self.tags.remove(&frame);
        assert!(removed.is_some(), "free of unknown chunk {chunk:?}");
        self.buddy.free(frame, order_of(chunk.bytes));
        self.stats.record_free(chunk.tag, chunk.bytes);
    }

    /// Relocations performed by compaction since the last call, as
    /// `(old_frame, new_frame, tag)` 4KB-frame pairs. The simulated OS must
    /// drain this after any allocation and rewrite the page-table entries
    /// of relocated `Data` frames (plus the matching TLB shootdowns).
    pub fn take_relocations(&mut self) -> Vec<(u64, u64, AllocTag)> {
        std::mem::take(&mut self.relocations)
    }

    /// Tries to evacuate a naturally aligned window of `order` by relocating
    /// movable occupants (pins and data pages), then claims it.
    ///
    /// Returns the start frame of the claimed window on success. Windows
    /// containing page tables or unmovable pins are skipped — the simulator
    /// holds physical pointers into those.
    fn compact_for(&mut self, order: u8) -> Option<u64> {
        let window_frames = 1u64 << order;
        let total = self.buddy.total_frames();
        let n_windows = total / window_frames;
        if n_windows == 0 {
            return None;
        }
        let start_window = self.compact_cursor % n_windows;
        for i in 0..n_windows {
            let w = (start_window + i) % n_windows;
            let start = w * window_frames;
            let end = start + window_frames;
            let occupants: Vec<(u64, u8)> = self.buddy.allocated_in(start, end).collect();
            let evacuable = occupants.iter().all(|&(f, o)| {
                // The block must lie fully inside the window and be movable.
                f >= start
                    && f + (1u64 << o) <= end
                    && self.tags.get(&f).is_some_and(|t| t.is_movable())
            });
            if !evacuable {
                continue;
            }
            // Enough free space outside the window to rehome everything?
            let occupied: u64 = occupants.iter().map(|&(_, o)| 1u64 << o).sum();
            let free_inside = window_frames - occupied;
            if self.buddy.free_frames() - free_inside < occupied {
                continue;
            }
            if let Some(frame) = self.relocate_and_claim(start, order, &occupants) {
                self.compact_cursor = w + 1;
                return Some(frame);
            }
        }
        None
    }

    /// Moves `occupants` (all movable, all inside the window) elsewhere and
    /// claims the window. Returns `None` — leaving the failed occupant in
    /// place — if some occupant cannot be rehomed (e.g. a 2MB data page
    /// with no free 2MB block outside the window).
    fn relocate_and_claim(
        &mut self,
        start: u64,
        order: u8,
        occupants: &[(u64, u8)],
    ) -> Option<u64> {
        let end = start + (1u64 << order);
        let mut moved_bytes = 0;
        for &(frame, o) in occupants {
            let tag = self.tags.remove(&frame).expect("occupant must be tagged");
            // Find a new home outside the window. The buddy allocator may
            // hand back blocks inside the window (parts of it can be free);
            // park those and retry.
            let mut parked = Vec::new();
            let new_frame = loop {
                match self.buddy.alloc(o) {
                    Some(f) if f >= start && f < end => parked.push(f),
                    other => break other,
                }
            };
            for p in parked {
                self.buddy.free(p, o);
            }
            match new_frame {
                Some(nf) => {
                    self.buddy.free(frame, o);
                    self.tags.insert(nf, tag);
                    moved_bytes += (1u64 << o) * FRAME_BYTES;
                    self.relocations.push((frame, nf, tag));
                }
                None => {
                    // No home for this occupant (fragmentation at its own
                    // order): put its tag back and give up on this window.
                    // Earlier occupants stay at their new homes — they were
                    // movable anyway.
                    self.tags.insert(frame, tag);
                    self.stats.compaction_moved_bytes += moved_bytes;
                    return None;
                }
            }
        }
        self.stats.compactions += 1;
        self.stats.compaction_moved_bytes += moved_bytes;
        let claimed = self.buddy.alloc_at(start, order);
        debug_assert_eq!(claimed, Some(start), "evacuated window must be claimable");
        claimed
    }

    /// Allocates one specific 4KB frame (used by the fragmenter to pin a
    /// frame at a chosen location).
    pub(crate) fn alloc_frame_at(&mut self, frame: u64, tag: AllocTag) -> Option<Chunk> {
        self.buddy.alloc_at(frame, 0)?;
        self.tags.insert(frame, tag);
        // Pinning ballast is free: the fragmenter models pre-existing memory
        // state, not work done by the workload under measurement.
        self.stats.record_alloc(tag, FRAME_BYTES, 0);
        Some(Chunk {
            base: PhysAddr(frame * FRAME_BYTES),
            bytes: FRAME_BYTES,
            tag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mehpt_types::{KIB, MIB};

    fn mem(mib: u64) -> PhysMem {
        PhysMem::with_cost_model(mib * MIB, AllocCostModel::zero_cost())
    }

    #[test]
    fn alloc_is_aligned_to_its_size() {
        let mut m = mem(64);
        for bytes in [4 * KIB, 8 * KIB, MIB, 8 * MIB] {
            let c = m.alloc(bytes, AllocTag::PageTable).unwrap();
            assert_eq!(c.base().0 % bytes, 0, "chunk {c:?} misaligned");
        }
    }

    #[test]
    fn out_of_memory_reported() {
        let mut m = mem(1);
        let err = m.alloc(2 * MIB, AllocTag::Data).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
    }

    #[test]
    fn free_returns_memory() {
        let mut m = mem(16);
        let c = m.alloc(8 * MIB, AllocTag::PageTable).unwrap();
        let free_before = m.free_bytes();
        m.free(c);
        assert_eq!(m.free_bytes(), free_before + 8 * MIB);
        assert_eq!(m.stats().tag(AllocTag::PageTable).current_bytes, 0);
    }

    #[test]
    fn max_contiguous_tracks_page_table_allocations() {
        let mut m = mem(64);
        m.alloc(MIB, AllocTag::PageTable).unwrap();
        m.alloc(8 * MIB, AllocTag::PageTable).unwrap();
        m.alloc(16 * MIB, AllocTag::Data).unwrap();
        assert_eq!(
            m.stats().tag(AllocTag::PageTable).max_contiguous_bytes,
            8 * MIB
        );
    }

    #[test]
    fn compaction_relocates_movable_pins() {
        let mut m = mem(4);
        // Pin one movable frame inside every 1MB window.
        for w in 0..4u64 {
            m.alloc_frame_at(w * 256 + 17, AllocTag::PinnedMovable)
                .unwrap();
        }
        assert!(m.buddy().largest_free_order() < Some(8));
        // Direct allocation of 1MB must fail inside the buddy, but alloc()
        // compacts and succeeds.
        let c = m.alloc(MIB, AllocTag::PageTable).unwrap();
        assert_eq!(c.bytes(), MIB);
        assert!(m.stats().compactions >= 1);
        assert!(m.stats().compaction_moved_bytes >= 4 * KIB);
    }

    #[test]
    fn unmovable_pins_block_compaction() {
        let mut m = mem(4);
        for w in 0..4u64 {
            m.alloc_frame_at(w * 256 + 17, AllocTag::PinnedUnmovable)
                .unwrap();
        }
        let err = m.alloc(MIB, AllocTag::PageTable).unwrap_err();
        assert!(matches!(err, AllocError::TooFragmented { .. }), "{err}");
        assert_eq!(m.stats().failed_allocs, 1);
    }

    #[test]
    fn data_pages_are_relocated_and_reported() {
        let mut m = mem(4);
        // A data page in every 1MB window: direct allocation fails, but
        // compaction migrates the data and reports the moves.
        for w in 0..4u64 {
            m.alloc_frame_at(w * 256 + 3, AllocTag::Data).unwrap();
        }
        let c = m.alloc(MIB, AllocTag::PageTable).unwrap();
        assert_eq!(c.bytes(), MIB);
        let moves = m.take_relocations();
        assert!(!moves.is_empty());
        assert!(moves.iter().all(|&(_, _, t)| t == AllocTag::Data));
        // Old and new frames differ and the list drains.
        assert!(moves.iter().all(|&(old, new, _)| old != new));
        assert!(m.take_relocations().is_empty());
    }

    #[test]
    fn cycles_charged_per_cost_model() {
        let mut m = PhysMem::new(64 * MIB);
        m.alloc(MIB, AllocTag::PageTable).unwrap();
        let cycles = m.stats().tag(AllocTag::PageTable).alloc_cycles;
        // Unfragmented memory: cost is roughly the zeroing cost.
        assert!(cycles >= MIB / 16 && cycles < MIB, "cycles = {cycles}");
    }

    #[test]
    fn fmfi_rises_as_memory_fragments() {
        let mut m = mem(16);
        let before = m.fmfi();
        for w in 0..8u64 {
            m.alloc_frame_at(w * 512 + 100, AllocTag::PinnedUnmovable)
                .unwrap();
        }
        assert!(m.fmfi() > before);
        assert!(m.fmfi() > 0.9, "every 2MB region is broken: {}", m.fmfi());
    }

    #[test]
    #[should_panic(expected = "unknown chunk")]
    fn double_free_panics() {
        let mut m = mem(16);
        let c = m.alloc(MIB, AllocTag::Data).unwrap();
        m.free(c);
        m.free(c);
    }
}
