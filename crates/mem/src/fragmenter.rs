//! Deterministic memory fragmentation: driving a [`PhysMem`] to a target
//! FMFI (free memory fragmentation index) the way the paper's open-source
//! fragmentation tool drives a real server.
//!
//! The paper evaluates everything at one pinned fragmentation level
//! (0.7 FMFI) and sweeps the 0.0→0.9 range for its fragmentation curves.
//! [`Fragmenter::SWEEP_FMFI`] is the canonical form of that sweep; the
//! `mehpt-lab` experiment grids build their fragmentation axis from it so
//! every layer of the stack agrees on the exact FMFI points.

use mehpt_types::rng::Xoshiro256;

use crate::phys::{AllocTag, Chunk, PhysMem, FMFI_REF_ORDER};

/// Drives physical memory to a target fragmentation level.
///
/// Reproduces the paper's methodology (Section III / VI): "We conduct
/// experiments on a Linux-based server with different fragmentation levels
/// using an open-source fragmentation tool" at 0.7 FMFI. The fragmenter pins
/// single 4KB frames scattered across memory — one inside a fraction of the
/// 2MB-aligned regions — which is exactly what breaks huge contiguous
/// allocations on real machines while consuming almost no memory itself.
///
/// Pins are *movable* (the OS can migrate them during compaction, at a cost)
/// up to 0.7 FMFI. Beyond 0.7, a growing fraction of pins is unmovable, so
/// 64MB allocations start failing outright — matching the paper's
/// observation that above 0.7 FMFI the ECPT runs cannot finish.
///
/// # Examples
///
/// ```
/// use mehpt_mem::{Fragmenter, PhysMem};
/// use mehpt_types::rng::Xoshiro256;
/// use mehpt_types::GIB;
///
/// let mut mem = PhysMem::new(GIB);
/// let mut rng = Xoshiro256::seed_from_u64(1);
/// let _frag = Fragmenter::fragment(&mut mem, 0.7, &mut rng);
/// assert!((mem.fmfi() - 0.7).abs() < 0.05);
/// ```
#[derive(Debug)]
pub struct Fragmenter {
    pins: Vec<Chunk>,
}

impl Fragmenter {
    /// The FMFI level up to which all pinned ballast remains movable.
    pub const MOVABLE_LIMIT: f64 = 0.7;

    /// The paper's fragmentation sweep (its Fig. 7-style curves): FMFI
    /// 0.0 → 0.9 in 0.1 steps. 0.7 is the pinned evaluation point; above
    /// it, a growing share of the ballast is unmovable and 64MB
    /// contiguous allocations start failing outright.
    pub const SWEEP_FMFI: [f64; 10] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

    /// Fragments `mem` until its scalar FMFI is within ~0.01 of
    /// `target_fmfi` (clamped to `[0, 0.99]`).
    ///
    /// Deterministic for a given `rng` state. Returns the fragmenter, which
    /// owns the pinned ballast; dropping it *leaks* the pins into the
    /// simulation (intended — the machine stays fragmented), while
    /// [`Fragmenter::release`] undoes the fragmentation.
    pub fn fragment(mem: &mut PhysMem, target_fmfi: f64, rng: &mut Xoshiro256) -> Fragmenter {
        let target = target_fmfi.clamp(0.0, 0.99);
        let region_frames = 1u64 << FMFI_REF_ORDER;
        let regions = mem.total_bytes() / crate::FRAME_BYTES / region_frames;
        let unmovable_p =
            ((target - Self::MOVABLE_LIMIT) / (1.0 - Self::MOVABLE_LIMIT)).clamp(0.0, 1.0);
        let mut pins = Vec::new();
        // First pass: pin one random frame in each region with probability
        // `target` — this lands the FMFI close to the target.
        for region in 0..regions {
            if rng.next_bool(target) {
                Self::pin_in_region(mem, region, region_frames, unmovable_p, rng, &mut pins);
            }
        }
        // Refinement: nudge toward the target.
        for _ in 0..(4 * regions).max(16) {
            let fmfi = mem.fmfi();
            if (fmfi - target).abs() <= 0.01 {
                break;
            }
            if fmfi < target {
                let region = rng.next_below(regions.max(1));
                Self::pin_in_region(mem, region, region_frames, unmovable_p, rng, &mut pins);
            } else if let Some(chunk) = pins.pop() {
                mem.free(chunk);
            } else {
                break;
            }
        }
        Fragmenter { pins }
    }

    fn pin_in_region(
        mem: &mut PhysMem,
        region: u64,
        region_frames: u64,
        unmovable_p: f64,
        rng: &mut Xoshiro256,
        pins: &mut Vec<Chunk>,
    ) {
        let tag = if rng.next_bool(unmovable_p) {
            AllocTag::PinnedUnmovable
        } else {
            AllocTag::PinnedMovable
        };
        // Try a few random frames within the region; occupied ones are skipped.
        for _ in 0..8 {
            let frame = region * region_frames + rng.next_below(region_frames);
            if let Some(chunk) = mem.alloc_frame_at(frame, tag) {
                pins.push(chunk);
                return;
            }
        }
    }

    /// The number of pinned frames currently held.
    pub fn pin_count(&self) -> usize {
        self.pins.len()
    }

    /// Releases all ballast, defragmenting the memory again.
    pub fn release(self, mem: &mut PhysMem) {
        for chunk in self.pins {
            // Compaction may have migrated a movable pin; its chunk handle
            // is stale then. Look the current location up by scanning is
            // overkill — movable pins that migrated were re-tagged under the
            // same tag, so `free` by handle only works for never-moved pins.
            // The fragmenter is only released in tests on un-compacted
            // memories; tolerate stale handles by skipping them.
            if mem
                .buddy()
                .is_allocated(chunk.base().0 / crate::FRAME_BYTES, 0)
            {
                mem.free(chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocCostModel;
    use mehpt_types::{GIB, MIB};

    fn mem(bytes: u64) -> PhysMem {
        PhysMem::with_cost_model(bytes, AllocCostModel::zero_cost())
    }

    #[test]
    fn hits_target_fmfi() {
        for target in [0.0, 0.3, 0.5, 0.7, 0.9] {
            let mut m = mem(GIB);
            let mut rng = Xoshiro256::seed_from_u64(42);
            Fragmenter::fragment(&mut m, target, &mut rng);
            assert!(
                (m.fmfi() - target).abs() < 0.05,
                "target {target}, got {}",
                m.fmfi()
            );
        }
    }

    #[test]
    fn ballast_memory_is_tiny() {
        let mut m = mem(GIB);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let frag = Fragmenter::fragment(&mut m, 0.7, &mut rng);
        // One 4KB pin per 2MB region at most a few times over.
        assert!(frag.pin_count() < 2 * 512);
        assert!(m.free_bytes() > m.total_bytes() * 9 / 10);
    }

    #[test]
    fn at_0_7_large_allocations_succeed_via_compaction() {
        let mut m = mem(GIB);
        let mut rng = Xoshiro256::seed_from_u64(7);
        Fragmenter::fragment(&mut m, 0.7, &mut rng);
        let chunk = m.alloc(64 * MIB, AllocTag::PageTable);
        assert!(chunk.is_ok(), "64MB at 0.7 FMFI must succeed: {chunk:?}");
        assert!(m.stats().compactions >= 1);
    }

    #[test]
    fn beyond_0_7_large_allocations_fail() {
        // The paper: "when we increase the memory fragmentation over 0.7 ...
        // the system is unable to allocate 64MB of contiguous memory".
        let mut m = mem(GIB);
        let mut rng = Xoshiro256::seed_from_u64(7);
        Fragmenter::fragment(&mut m, 0.9, &mut rng);
        let res = m.alloc(64 * MIB, AllocTag::PageTable);
        assert!(res.is_err(), "64MB at 0.9 FMFI must fail");
    }

    #[test]
    fn small_allocations_always_succeed() {
        let mut m = mem(GIB);
        let mut rng = Xoshiro256::seed_from_u64(3);
        Fragmenter::fragment(&mut m, 0.9, &mut rng);
        for _ in 0..100 {
            assert!(m.alloc(8 * 1024, AllocTag::PageTable).is_ok());
        }
    }

    #[test]
    fn release_restores_memory() {
        let mut m = mem(64 * MIB);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let before = m.free_bytes();
        let frag = Fragmenter::fragment(&mut m, 0.5, &mut rng);
        assert!(m.free_bytes() < before);
        frag.release(&mut m);
        assert_eq!(m.free_bytes(), before);
    }

    #[test]
    fn sweep_is_sorted_and_brackets_the_movable_limit() {
        let s = Fragmenter::SWEEP_FMFI;
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.contains(&Fragmenter::MOVABLE_LIMIT));
        assert!(s.iter().all(|f| (0.0..1.0).contains(f)));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut m = mem(GIB);
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let f = Fragmenter::fragment(&mut m, 0.6, &mut rng);
            (f.pin_count(), m.fmfi())
        };
        assert_eq!(run(11), run(11));
    }
}
