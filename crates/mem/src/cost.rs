/// The cycle cost of allocating and zeroing a contiguous chunk.
///
/// Section III of the paper measures, on a real Linux server at 2GHz with
/// memory fragmented to 0.7 FMFI, that allocating and zeroing a 4KB, 8KB,
/// 1MB, 8MB and 64MB chunk takes 4K, 5K, 750K, 13M and 120M cycles
/// respectively — "as the chunk size increases, the overhead increases
/// faster". This model reproduces those measurements and interpolates
/// between them:
///
/// * a *zeroing* component proportional to the chunk size (charged always),
/// * a *reclaim/compaction* component calibrated so that the total at
///   0.7 FMFI matches the paper's five measured points, interpolated
///   log-log between points and scaled by fragmentation as `(fmfi/0.7)³`
///   (finding or creating contiguity gets superlinearly harder as memory
///   fragments).
///
/// # Examples
///
/// ```
/// use mehpt_mem::AllocCostModel;
///
/// let model = AllocCostModel::paper_calibrated();
/// assert!(model.cycles(64 * 1024 * 1024, 0.7).abs_diff(120_000_000) <= 1);
/// assert!(model.cycles(4096, 0.0) < model.cycles(4096, 0.7));
/// ```
#[derive(Clone, Debug)]
pub struct AllocCostModel {
    /// `(bytes, total cycles at the reference FMFI)`, sorted by size.
    points: Vec<(u64, u64)>,
    /// Fragmentation level the points were measured at.
    ref_fmfi: f64,
    /// Cycles per byte for zeroing freshly allocated memory.
    zero_cycles_per_byte: f64,
    /// Floor cost of entering the allocator at all.
    base_cycles: u64,
}

impl AllocCostModel {
    /// The model calibrated to the paper's Section III measurements
    /// (2GHz, FMFI 0.7).
    pub fn paper_calibrated() -> AllocCostModel {
        AllocCostModel {
            points: vec![
                (4 << 10, 4_000),
                (8 << 10, 5_000),
                (1 << 20, 750_000),
                (8 << 20, 13_000_000),
                (64 << 20, 120_000_000),
            ],
            ref_fmfi: 0.7,
            zero_cycles_per_byte: 0.0625,
            base_cycles: 600,
        }
    }

    /// A free allocator, useful for unit tests that only care about
    /// functional behaviour.
    pub fn zero_cost() -> AllocCostModel {
        AllocCostModel {
            points: Vec::new(),
            ref_fmfi: 0.7,
            zero_cycles_per_byte: 0.0,
            base_cycles: 0,
        }
    }

    /// The cost of allocating and zeroing `bytes` when contiguity is *not*
    /// a concern (data pages served from per-CPU free lists): entry
    /// overhead plus zeroing, no reclaim penalty.
    ///
    /// The paper's fragmentation-calibrated costs describe page-table chunk
    /// allocation ("for the allocation overheads, we use real system
    /// measurements", Section VI, in the context of HPT overheads); demand
    /// paging of application data is charged this cheaper path.
    pub fn data_cycles(&self, bytes: u64) -> u64 {
        self.base_cycles + (bytes as f64 * self.zero_cycles_per_byte) as u64
    }

    /// The cycles needed to allocate and zero `bytes` of contiguous memory
    /// at fragmentation level `fmfi` (clamped to `[0, 1]`).
    pub fn cycles(&self, bytes: u64, fmfi: f64) -> u64 {
        let fmfi = fmfi.clamp(0.0, 1.0);
        let zero = (bytes as f64 * self.zero_cycles_per_byte) as u64;
        let penalty_at_ref = self.penalty_at_ref(bytes);
        let frag_scale = (fmfi / self.ref_fmfi).powi(3);
        self.base_cycles + zero + (penalty_at_ref * frag_scale) as u64
    }

    /// The reclaim/search penalty at the reference FMFI, log-log interpolated
    /// between the calibrated points (beyond the last point, extrapolated
    /// with the last segment's slope).
    fn penalty_at_ref(&self, bytes: u64) -> f64 {
        if self.points.is_empty() || bytes == 0 {
            return 0.0;
        }
        let penalty = |&(b, total): &(u64, u64)| {
            let zero = b as f64 * self.zero_cycles_per_byte;
            ((total as f64) - zero - self.base_cycles as f64).max(1.0)
        };
        let first = &self.points[0];
        if bytes <= first.0 {
            // Below the smallest measured chunk: scale linearly with size.
            return penalty(first) * bytes as f64 / first.0 as f64;
        }
        for pair in self.points.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            if bytes <= hi.0 {
                return log_log_interp(bytes, (lo.0, penalty(lo)), (hi.0, penalty(hi)));
            }
        }
        let n = self.points.len();
        let (lo, hi) = (&self.points[n - 2], &self.points[n - 1]);
        log_log_interp(bytes, (lo.0, penalty(lo)), (hi.0, penalty(hi)))
    }
}

/// Interpolates (or extrapolates) `y(x)` on a log-log scale through two points.
fn log_log_interp(x: u64, (x0, y0): (u64, f64), (x1, y1): (u64, f64)) -> f64 {
    let (lx, lx0, lx1) = ((x as f64).ln(), (x0 as f64).ln(), (x1 as f64).ln());
    let t = (lx - lx0) / (lx1 - lx0);
    (y0.ln() + t * (y1.ln() - y0.ln())).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mehpt_types::{KIB, MIB};

    #[test]
    fn matches_paper_measurements_at_reference_fmfi() {
        let m = AllocCostModel::paper_calibrated();
        // Exact at the calibration points (integer truncation ≤ 1 cycle).
        for (bytes, cycles) in [
            (4 * KIB, 4_000u64),
            (8 * KIB, 5_000),
            (MIB, 750_000),
            (8 * MIB, 13_000_000),
            (64 * MIB, 120_000_000),
        ] {
            let got = m.cycles(bytes, 0.7);
            assert!(
                got.abs_diff(cycles) <= 1,
                "cost({bytes}) = {got}, paper says {cycles}"
            );
        }
    }

    #[test]
    fn cost_grows_with_size() {
        let m = AllocCostModel::paper_calibrated();
        let sizes = [4 * KIB, 8 * KIB, 64 * KIB, MIB, 4 * MIB, 8 * MIB, 64 * MIB];
        for fmfi in [0.0, 0.3, 0.7, 0.9] {
            let costs: Vec<u64> = sizes.iter().map(|&s| m.cycles(s, fmfi)).collect();
            for w in costs.windows(2) {
                assert!(w[0] < w[1], "cost must grow with size: {costs:?}");
            }
        }
    }

    #[test]
    fn cost_grows_with_fragmentation() {
        let m = AllocCostModel::paper_calibrated();
        for size in [4 * KIB, MIB, 64 * MIB] {
            let costs: Vec<u64> = [0.0, 0.2, 0.5, 0.7, 0.9]
                .iter()
                .map(|&f| m.cycles(size, f))
                .collect();
            for w in costs.windows(2) {
                assert!(w[0] < w[1], "cost must grow with fmfi: {costs:?}");
            }
        }
    }

    #[test]
    fn overhead_grows_faster_than_size() {
        // "As the chunk size increases, the overhead increases faster."
        let m = AllocCostModel::paper_calibrated();
        let per_byte_small = m.cycles(MIB, 0.7) as f64 / MIB as f64;
        let per_byte_large = m.cycles(64 * MIB, 0.7) as f64 / (64 * MIB) as f64;
        assert!(per_byte_large > per_byte_small);
    }

    #[test]
    fn unfragmented_cost_is_mostly_zeroing() {
        let m = AllocCostModel::paper_calibrated();
        let c = m.cycles(64 * MIB, 0.0);
        let zeroing = (64 * MIB) / 16;
        assert!(c >= zeroing && c < zeroing + 10_000, "cost {c}");
    }

    #[test]
    fn data_path_is_cheap_and_size_proportional() {
        let m = AllocCostModel::paper_calibrated();
        assert!(m.data_cycles(4096) < 1000);
        assert!(m.data_cycles(2 << 20) < m.cycles(2 << 20, 0.7) / 5);
        assert!(m.data_cycles(2 << 20) > m.data_cycles(4096));
    }

    #[test]
    fn zero_cost_model_is_free() {
        let m = AllocCostModel::zero_cost();
        assert_eq!(m.cycles(64 * MIB, 0.9), 0);
    }

    #[test]
    fn interpolation_is_sane_between_points() {
        let m = AllocCostModel::paper_calibrated();
        let mid = m.cycles(256 * KIB, 0.7);
        assert!(mid > m.cycles(8 * KIB, 0.7));
        assert!(mid < m.cycles(MIB, 0.7));
    }
}
