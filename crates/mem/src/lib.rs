//! Simulated physical memory for the ME-HPT reproduction.
//!
//! The paper's central problem statement (Section III) is about *physical
//! memory contiguity*: an ECPT way can require a 64MB contiguous allocation,
//! which on a fragmented server is slow (120M cycles at 0.7 FMFI) or
//! impossible (above 0.7 FMFI). This crate builds that substrate from
//! scratch:
//!
//! * [`BuddyAllocator`] — a classic binary buddy allocator over 4KB frames,
//!   the ground truth for what contiguous memory exists.
//! * [`PhysMem`] — the machine's physical memory: allocation with tags
//!   (page-table vs. data vs. fragmenter), compaction of movable pages,
//!   cycle-cost accounting, and statistics such as the *maximum contiguous
//!   allocation* that Figure 8 and Table I report.
//! * [`Fragmenter`] — reproduces the paper's use of an open-source
//!   fragmentation tool: drives memory to a target [FMFI] and decides which
//!   pinned pages are movable (compactable) vs. unmovable.
//! * [`AllocCostModel`] — the measured allocate-and-zero costs from
//!   Section III (4K/5K/750K/13M/120M cycles for 4KB/8KB/1MB/8MB/64MB at
//!   0.7 FMFI and 2GHz), interpolated over size and fragmentation level.
//!
//! [FMFI]: PhysMem::fmfi
//!
//! # Examples
//!
//! ```
//! use mehpt_mem::{AllocTag, PhysMem};
//! use mehpt_types::MIB;
//!
//! let mut mem = PhysMem::new(64 * MIB);
//! let chunk = mem.alloc(MIB, AllocTag::PageTable)?;
//! assert_eq!(chunk.bytes(), MIB);
//! mem.free(chunk);
//! # Ok::<(), mehpt_mem::AllocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buddy;
mod cost;
mod error;
mod fragmenter;
mod phys;
mod stats;

pub use buddy::BuddyAllocator;
pub use cost::AllocCostModel;
pub use error::AllocError;
pub use fragmenter::Fragmenter;
pub use phys::{AllocTag, Chunk, PhysMem};
pub use stats::{MemStats, TagStats};

/// The frame size all allocations are made of (4KB).
pub const FRAME_BYTES: u64 = 4096;

/// Converts a byte count (power of two, ≥ 4KB) to a buddy order.
///
/// # Panics
///
/// Panics if `bytes` is not a power of two or is smaller than one frame.
pub fn order_of(bytes: u64) -> u8 {
    assert!(
        bytes.is_power_of_two() && bytes >= FRAME_BYTES,
        "allocation size must be a power of two of at least 4KB, got {bytes}"
    );
    (bytes.trailing_zeros() - FRAME_BYTES.trailing_zeros()) as u8
}

/// Converts a buddy order back to a byte count.
pub fn bytes_of_order(order: u8) -> u64 {
    FRAME_BYTES << order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_round_trips() {
        for order in 0..20u8 {
            assert_eq!(order_of(bytes_of_order(order)), order);
        }
    }

    #[test]
    fn known_orders() {
        assert_eq!(order_of(4096), 0);
        assert_eq!(order_of(8192), 1);
        assert_eq!(order_of(1024 * 1024), 8);
        assert_eq!(order_of(64 * 1024 * 1024), 14);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        order_of(12288);
    }
}
