use core::fmt;

use mehpt_types::ByteSize;

/// Failure to allocate contiguous physical memory.
///
/// Reproduces the paper's observation that "when we increase the memory
/// fragmentation over 0.7 in the FMFI metric, the system is unable to
/// allocate 64MB of contiguous memory and returns an error. Consequently,
/// the ECPT runs are unable to finish."
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AllocError {
    /// Not enough free memory remains at all.
    OutOfMemory {
        /// The size of the failed request in bytes.
        requested: u64,
    },
    /// Enough memory is free, but no contiguous block of the requested size
    /// exists and compaction could not create one (unmovable pages in the
    /// way).
    TooFragmented {
        /// The size of the failed request in bytes.
        requested: u64,
        /// The FMFI at the requested order when the allocation failed.
        fmfi: f64,
    },
}

impl AllocError {
    /// The size of the failed request in bytes.
    pub fn requested(&self) -> u64 {
        match *self {
            AllocError::OutOfMemory { requested } | AllocError::TooFragmented { requested, .. } => {
                requested
            }
        }
    }
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "out of memory allocating {}", ByteSize(requested))
            }
            AllocError::TooFragmented { requested, fmfi } => write!(
                f,
                "no contiguous {} block available at FMFI {:.2} and compaction failed",
                ByteSize(requested),
                fmfi
            ),
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AllocError::OutOfMemory { requested: 4096 };
        assert_eq!(e.to_string(), "out of memory allocating 4KB");
        let e = AllocError::TooFragmented {
            requested: 64 << 20,
            fmfi: 0.75,
        };
        assert!(e.to_string().contains("64MB"));
        assert!(e.to_string().contains("0.75"));
    }

    #[test]
    fn requested_accessor() {
        assert_eq!(AllocError::OutOfMemory { requested: 7 }.requested(), 7);
    }

    #[test]
    fn is_error_and_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<AllocError>();
    }
}
