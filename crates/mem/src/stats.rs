use crate::phys::AllocTag;

/// Per-tag allocation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagStats {
    /// Bytes currently allocated under this tag.
    pub current_bytes: u64,
    /// High-water mark of `current_bytes`.
    pub peak_bytes: u64,
    /// The largest single contiguous allocation ever made under this tag.
    ///
    /// For the `PageTable` tag this is exactly the paper's "maximum size of
    /// the contiguous memory allocated" metric (Table I columns 3–4,
    /// Figure 8).
    pub max_contiguous_bytes: u64,
    /// Number of successful allocations.
    pub alloc_count: u64,
    /// Number of frees.
    pub free_count: u64,
    /// Total cycles spent allocating and zeroing under this tag.
    pub alloc_cycles: u64,
}

/// Statistics maintained by [`PhysMem`](crate::PhysMem).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    per_tag: [TagStats; AllocTag::COUNT],
    /// Number of times the allocator had to compact memory to satisfy a
    /// contiguous request.
    pub compactions: u64,
    /// Bytes relocated by compaction.
    pub compaction_moved_bytes: u64,
    /// Number of allocation requests that failed even after compaction.
    pub failed_allocs: u64,
}

impl MemStats {
    /// The statistics for one allocation tag.
    pub fn tag(&self, tag: AllocTag) -> &TagStats {
        &self.per_tag[tag.index()]
    }

    pub(crate) fn tag_mut(&mut self, tag: AllocTag) -> &mut TagStats {
        &mut self.per_tag[tag.index()]
    }

    /// Total bytes currently allocated across all tags.
    pub fn current_bytes(&self) -> u64 {
        self.per_tag.iter().map(|t| t.current_bytes).sum()
    }

    /// Total cycles spent in the allocator across all tags.
    pub fn total_alloc_cycles(&self) -> u64 {
        self.per_tag.iter().map(|t| t.alloc_cycles).sum()
    }

    pub(crate) fn record_alloc(&mut self, tag: AllocTag, bytes: u64, cycles: u64) {
        let t = self.tag_mut(tag);
        t.current_bytes += bytes;
        t.peak_bytes = t.peak_bytes.max(t.current_bytes);
        t.max_contiguous_bytes = t.max_contiguous_bytes.max(bytes);
        t.alloc_count += 1;
        t.alloc_cycles += cycles;
    }

    pub(crate) fn record_free(&mut self, tag: AllocTag, bytes: u64) {
        let t = self.tag_mut(tag);
        t.current_bytes -= bytes;
        t.free_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let mut s = MemStats::default();
        s.record_alloc(AllocTag::PageTable, 4096, 100);
        s.record_alloc(AllocTag::PageTable, 8192, 200);
        s.record_free(AllocTag::PageTable, 4096);
        let t = s.tag(AllocTag::PageTable);
        assert_eq!(t.current_bytes, 8192);
        assert_eq!(t.peak_bytes, 12288);
        assert_eq!(t.max_contiguous_bytes, 8192);
        assert_eq!(t.alloc_count, 2);
        assert_eq!(t.free_count, 1);
        assert_eq!(t.alloc_cycles, 300);
    }

    #[test]
    fn tags_are_independent() {
        let mut s = MemStats::default();
        s.record_alloc(AllocTag::Data, 4096, 1);
        assert_eq!(s.tag(AllocTag::PageTable).current_bytes, 0);
        assert_eq!(s.tag(AllocTag::Data).current_bytes, 4096);
        assert_eq!(s.current_bytes(), 4096);
    }
}
