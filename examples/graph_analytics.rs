//! A scaled-down version of the paper's evaluation on one workload: run the
//! BFS graph-analytics trace under all three page-table organizations and
//! compare cycles, walk behaviour and page-table memory.
//!
//! Run with: `cargo run --release --example graph_analytics`
//! (pass a scale factor as the first argument; default 0.05)

use mehpt::sim::{PtKind, SimConfig, Simulator};
use mehpt::types::ByteSize;
use mehpt::workloads::{App, WorkloadCfg};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("BFS trace at scale {scale} (1.0 = the paper-calibrated footprint)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "config", "cycles(M)", "walks(K)", "walk cyc", "PT peak", "PT contig", "speedup"
    );
    println!("{}", "-".repeat(78));
    let mut baseline_cpa = None;
    for kind in [PtKind::Radix, PtKind::Ecpt, PtKind::MeHpt] {
        let wl = App::Bfs.build(&WorkloadCfg {
            scale,
            ..WorkloadCfg::default()
        });
        let r = Simulator::run(wl, SimConfig::paper(kind, false));
        let cpa = r.total_cycles as f64 / r.accesses as f64;
        let speedup = baseline_cpa.get_or_insert(cpa).to_owned() / cpa;
        println!(
            "{:<8} {:>10.0} {:>10.0} {:>10.0} {:>12} {:>12} {:>9.2}x",
            kind.label(),
            r.total_cycles as f64 / 1e6,
            r.walks as f64 / 1e3,
            r.mean_walk_cycles,
            ByteSize(r.pt_peak_bytes).to_string(),
            ByteSize(r.pt_max_contiguous).to_string(),
            speedup
        );
        if let Some(msg) = r.aborted {
            println!("         aborted: {msg}");
        }
    }
    println!();
    println!("Radix walks chain up to four dependent memory accesses; the HPTs");
    println!("probe their ways in parallel. ME-HPT additionally caps contiguous");
    println!("allocations at one chunk and resizes in place.");
}
