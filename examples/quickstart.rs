//! Quickstart: build an ME-HPT, map pages, translate addresses, and watch
//! the four techniques at work (chunked growth, a chunk-size switch,
//! in-place resizing, per-way balancing).
//!
//! Run with: `cargo run --release --example quickstart`

use mehpt::core::MeHpt;
use mehpt::ecpt::EcptWalker;
use mehpt::mem::{AllocTag, PhysMem};
use mehpt::tlb::MemoryModel;
use mehpt::types::{ByteSize, PageSize, Ppn, VirtAddr, Vpn, GIB};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine with 4GB of physical memory.
    let mut mem = PhysMem::new(4 * GIB);
    let mut pt = MeHpt::new(&mut mem)?;

    println!("== mapping half a million pages ==");
    for i in 0..500_000u64 {
        pt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut mem)?;
    }
    let table = pt.table(PageSize::Base4K).expect("4KB table exists");
    println!("pages mapped:        {}", pt.pages());
    println!(
        "way sizes:           {}",
        table
            .way_sizes()
            .iter()
            .map(|&b| ByteSize(b).to_string())
            .collect::<Vec<_>>()
            .join(" / ")
    );
    println!(
        "chunk size per way:  {}",
        table
            .way_chunk_bytes()
            .iter()
            .map(|&b| ByteSize(b).to_string())
            .collect::<Vec<_>>()
            .join(" / ")
    );
    println!(
        "chunk switches:      {} (8KB → 1MB, once per way)",
        table.stats().chunk_switches
    );
    println!(
        "L2P entries in use:  {} of {}",
        pt.l2p_entries_used(),
        pt.l2p().total_entries()
    );
    println!("page-table memory:   {}", ByteSize(pt.memory_bytes()));
    println!(
        "max contiguous alloc:{}  <-- the paper's headline metric",
        ByteSize(mem.stats().tag(AllocTag::PageTable).max_contiguous_bytes)
    );

    println!("\n== translating ==");
    let va = VirtAddr::new(8 * 4096 * 1234);
    println!("translate({va}) = {:?}", pt.translate(va));

    println!("\n== a timed hardware walk ==");
    let mut walker = EcptWalker::paper_default();
    let mut dram = MemoryModel::paper_default();
    let cold = walker.walk(&pt, va, &mut dram);
    let warm = walker.walk(&pt, va, &mut dram);
    println!(
        "cold walk: {} cycles, {} parallel memory accesses",
        cold.cycles, cold.memory_accesses
    );
    println!(
        "warm walk: {} cycles, {} parallel memory accesses",
        warm.cycles, warm.memory_accesses
    );

    println!("\n== in-place resizing: how many entries actually moved? ==");
    let moved: u64 = table.stats().resizes.iter().map(|e| e.moved).sum();
    let kept: u64 = table.stats().resizes.iter().map(|e| e.kept).sum();
    println!(
        "entries moved {} / kept in place {} ({:.0}% stayed)",
        moved,
        kept,
        100.0 * kept as f64 / (moved + kept) as f64
    );
    Ok(())
}
