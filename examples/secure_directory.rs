//! Section VIII, "Scalable Secure Directories": SecDir-style per-core
//! private cache-coherence directories built on cuckoo hashing benefit
//! directly from the paper's in-place and per-way resizing. This example
//! models a directory that tracks sharer sets for cache lines, resizing
//! elastically as a core's working set grows and shrinks.
//!
//! Run with: `cargo run --release --example secure_directory`

use mehpt::hash::{Config, ElasticCuckooTable, ResizeMode, WaySizing};
use mehpt::types::rng::Xoshiro256;
use mehpt::types::ByteSize;

/// A directory entry: which of up to 64 cores share a line, and its owner.
#[derive(Clone, Copy, Debug, Default)]
struct DirEntry {
    sharers: u64,
    #[allow(dead_code)] // read by the (unmodeled) coherence controller
    owner: u8,
}

/// A per-core private directory, as in SecDir: a cuckoo hash table keyed by
/// cache-line address, sized elastically to the core's footprint.
struct PrivateDirectory {
    entries: ElasticCuckooTable<u64, DirEntry>,
}

impl PrivateDirectory {
    fn new(core: u8) -> PrivateDirectory {
        PrivateDirectory {
            entries: ElasticCuckooTable::new(Config {
                resize_mode: ResizeMode::InPlace,
                sizing: WaySizing::PerWay,
                seed: 0xd1_u64 + core as u64,
                ..Config::default()
            }),
        }
    }

    fn record_access(&mut self, line: u64, core: u8) {
        match self.entries.get_mut(&line) {
            Some(e) => e.sharers |= 1 << core,
            None => {
                self.entries.insert(
                    line,
                    DirEntry {
                        sharers: 1 << core,
                        owner: core,
                    },
                );
            }
        }
    }

    fn evict(&mut self, line: u64) -> Option<DirEntry> {
        self.entries.remove(&line)
    }
}

fn main() {
    let mut dir = PrivateDirectory::new(0);
    let mut rng = Xoshiro256::seed_from_u64(7);

    println!("== phase 1: working set grows (directory upsizes elastically) ==");
    let mut lines: Vec<u64> = Vec::new();
    for _ in 0..300_000 {
        let line = rng.next_below(1 << 30) << 6;
        dir.record_access(line, (rng.next_below(8)) as u8);
        lines.push(line);
    }
    report(&dir);

    println!("\n== phase 2: working set shrinks (directory downsizes) ==");
    for &line in &lines {
        dir.evict(line);
    }
    // Churn keeps the gradual downsizes moving, like ongoing traffic.
    for i in 0..400_000u64 {
        let line = (i % 512) << 6;
        dir.record_access(line, 1);
        dir.evict(line);
    }
    report(&dir);

    let stats = dir.entries.stats();
    let ups = stats
        .resizes
        .iter()
        .filter(|e| e.kind == mehpt::hash::ResizeKind::Upsize)
        .count();
    let downs = stats.resizes.len() - ups;
    println!("\nresizes: {ups} upsizes, {downs} downsizes");
    println!(
        "peak directory memory: {} (old and new tables never coexist)",
        ByteSize(stats.peak_bytes)
    );
    println!(
        "entries kept in place across upsizes: {:.0}%",
        (1.0 - stats.mean_upsize_moved_fraction()) * 100.0
    );
    println!();
    println!("The paper: 'SecDir proposes per-core private directories using");
    println!("cuckoo hashing... Our in-place resizing and per-way resizing");
    println!("techniques can be directly applied to directory designs.'");
}

fn report(dir: &PrivateDirectory) {
    println!(
        "tracked lines: {:>8}   capacity: {:>8}   memory: {:>10}   ways: {:?}",
        dir.entries.len(),
        dir.entries.capacity(),
        ByteSize(dir.entries.memory_bytes()).to_string(),
        dir.entries.way_capacities(),
    );
}
