//! The paper's headline demo: on a fragmented machine, the ECPT baseline's
//! contiguous way allocations get slow and eventually fail, while ME-HPT
//! keeps running on its small chunks.
//!
//! Run with: `cargo run --release --example fragmentation_study`

use mehpt::core::MeHpt;
use mehpt::ecpt::Ecpt;
use mehpt::mem::{AllocTag, Fragmenter, PhysMem};
use mehpt::types::rng::Xoshiro256;
use mehpt::types::{ByteSize, PageSize, Ppn, Vpn, GIB};

const PAGES: u64 = 250_000;

fn main() {
    println!("machine: 2GB physical memory, sweeping fragmentation levels");
    println!(
        "{:<6} | {:>22} | {:>22}",
        "FMFI", "ECPT (contiguous ways)", "ME-HPT (1MB chunks)"
    );
    println!("{}", "-".repeat(58));
    for target in [0.0, 0.5, 0.7, 0.9, 0.99] {
        let ecpt = run_ecpt(target);
        let mehpt = run_mehpt(target);
        println!("{target:<6} | {ecpt:>22} | {mehpt:>22}");
    }
    println!();
    println!("The paper: above 0.7 FMFI 'the system is unable to allocate 64MB");
    println!("of contiguous memory and returns an error. Consequently, the ECPT");
    println!("runs are unable to finish.' ME-HPT reduces the requirement to one");
    println!("chunk and survives.");
}

/// Maps pages under ECPT; reports how far it got and the alloc bill.
fn run_ecpt(fmfi: f64) -> String {
    let mut mem = PhysMem::new(2 * GIB);
    let mut rng = Xoshiro256::seed_from_u64(11);
    Fragmenter::fragment(&mut mem, fmfi, &mut rng);
    let mut pt = match Ecpt::new(&mut mem) {
        Ok(pt) => pt,
        Err(e) => return format!("FAILED at start: {e}"),
    };
    for i in 0..PAGES {
        if let Err(e) = pt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut mem) {
            let _ = e;
            return format!("DIED at {} pages", i);
        }
    }
    format!(
        "ok, {} Mcycles alloc",
        mem.stats().tag(AllocTag::PageTable).alloc_cycles / 1_000_000
    )
}

fn run_mehpt(fmfi: f64) -> String {
    let mut mem = PhysMem::new(2 * GIB);
    let mut rng = Xoshiro256::seed_from_u64(11);
    Fragmenter::fragment(&mut mem, fmfi, &mut rng);
    let mut pt = match MeHpt::new(&mut mem) {
        Ok(pt) => pt,
        Err(e) => return format!("FAILED at start: {e}"),
    };
    for i in 0..PAGES {
        if let Err(e) = pt.map(Vpn(i * 8), PageSize::Base4K, Ppn(i), &mut mem) {
            let _ = e;
            return format!("DIED at {} pages", i);
        }
    }
    format!(
        "ok, {} Mcycles, max {}",
        mem.stats().tag(AllocTag::PageTable).alloc_cycles / 1_000_000,
        ByteSize(pt.max_chunk_bytes())
    )
}
