//! Section VIII of the paper: the ME-HPT hashing techniques applied beyond
//! page tables — here as the index of a small key-value store. In-place +
//! per-way resizing give the same "memory equals max(old,new), ways stay
//! balanced" behaviour that the page tables enjoy.
//!
//! Run with: `cargo run --release --example kv_store`

use mehpt::hash::{Config, ElasticCuckooTable, LevelHashTable, ResizeMode, WaySizing};
use mehpt::types::ByteSize;

/// A toy KV store with the ME-HPT hashing core as its index.
struct KvStore {
    index: ElasticCuckooTable<String, String>,
}

impl KvStore {
    fn new() -> KvStore {
        KvStore {
            index: ElasticCuckooTable::new(Config {
                resize_mode: ResizeMode::InPlace,
                sizing: WaySizing::PerWay,
                ..Config::default()
            }),
        }
    }

    fn put(&mut self, key: &str, value: &str) {
        self.index.insert(key.to_string(), value.to_string());
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.index.get(&key.to_string()).map(String::as_str)
    }

    fn delete(&mut self, key: &str) -> Option<String> {
        self.index.remove(&key.to_string())
    }
}

fn main() {
    let mut store = KvStore::new();
    println!("== basic operations ==");
    store.put("paper", "Memory-Efficient Hashed Page Tables");
    store.put("venue", "HPCA 2023");
    println!("get(paper) = {:?}", store.get("paper"));
    println!("get(venue) = {:?}", store.get("venue"));
    println!("delete(venue) = {:?}", store.delete("venue"));
    println!("get(venue) = {:?}", store.get("venue"));

    println!("\n== a write-heavy phase: watch the resizing behaviour ==");
    for i in 0..200_000 {
        store.put(&format!("user:{i}"), &format!("payload-{i}"));
    }
    let stats = store.index.stats();
    println!("entries:            {}", store.index.len());
    println!("load factor:        {:.2}", store.index.load_factor());
    println!("resizes completed:  {}", stats.resizes.len());
    println!(
        "peak index memory:  {} (out-of-place resizing would have needed ~1.5x)",
        ByteSize(stats.peak_bytes)
    );
    println!(
        "entries moved/kept per in-place upsize: {:.0}% moved",
        stats.mean_upsize_moved_fraction() * 100.0
    );
    println!(
        "way capacities:     {:?} (per-way resizing keeps them within 2x)",
        store.index.way_capacities()
    );

    println!("\n== the same load on Level Hashing (the paper's Section IX foil) ==");
    let mut level: LevelHashTable<String, String> = LevelHashTable::new(64, 3);
    for i in 0..200_000 {
        level.insert(format!("user:{i}"), format!("payload-{i}"));
    }
    for i in (0..200_000).step_by(37) {
        assert!(level.get(&format!("user:{i}")).is_some());
    }
    println!(
        "level hashing: {} entries, {:.2} probes/lookup, {:.0}% moved per resize",
        level.len(),
        level.stats().probes_per_lookup(),
        level.stats().moved_fraction() * 100.0
    );
    println!("in-place cuckoo keeps lookups at 3 parallel probes instead.");
}
